//! Engine observability: sharded metrics, per-agent profiles, and span
//! tracing with Chrome `trace_event` export.
//!
//! The paper's evaluation is built entirely on measurement — percentile
//! latencies (Fig 7, Table III), bandwidth over time (Fig 6), simulation
//! rate vs. scale (Figs 8-9) — so the engine needs a metrics pipeline that
//! is (a) trustworthy enough to validate against analytically known ground
//! truth and (b) cheap enough that enabling it does not perturb the very
//! numbers it reports.
//!
//! Three pieces:
//!
//! * [`MetricsRegistry`] — counters and histograms registered by name.
//!   Workers never touch the registry on the hot path; each owns a
//!   [`MetricsShard`] of plain `u64`s/`Vec`s and folds it into the registry
//!   with [`MetricsRegistry::absorb`] at chunk barriers, where a lock is
//!   already unavoidable. When metrics are disabled the engine holds no
//!   registry at all and the hot path pays nothing.
//! * [`AgentProfile`] — per-agent token accounting (windows and tokens in
//!   and out, target cycles, host nanoseconds). Owned by the agent's slot,
//!   so updating it needs no synchronization whatsoever.
//! * [`SpanTracer`] — timed spans (agent steps, barrier waits, supervisor
//!   bursts) buffered per worker in a [`SpanBuffer`] and flushed at run
//!   end. [`SpanTracer::export_chrome_trace`] serializes the result as
//!   Chrome `trace_event` JSON, loadable in Perfetto or `chrome://tracing`.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use crate::error::{SimError, SimResult};
use crate::stats::Histogram;

/// Handle to a registered counter; a plain index into each shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered histogram; a plain index into each shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

#[derive(Debug, Default)]
struct RegistryInner {
    counter_names: Vec<String>,
    counters: Vec<u64>,
    histogram_names: Vec<String>,
    histograms: Vec<Histogram>,
}

/// A registry of named counters and histograms, aggregated from per-worker
/// shards.
///
/// Registration (`counter`/`histogram`) takes a lock and is meant for
/// set-up time. Hot-path recording goes through a [`MetricsShard`] — plain
/// unsynchronized adds — and the shard is folded back with [`absorb`] at a
/// chunk barrier. Because absorption is a sum of per-worker sums, the final
/// aggregate of deterministic quantities (e.g. agent steps) is independent
/// of worker count and scheduling.
///
/// [`absorb`]: MetricsRegistry::absorb
///
/// # Examples
///
/// ```
/// use firesim_core::metrics::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// let steps = reg.counter("engine/agent_steps");
/// let mut shard = reg.shard();
/// shard.add(steps, 7);
/// reg.absorb(&mut shard);
/// assert_eq!(reg.counter_value("engine/agent_steps"), Some(7));
/// ```
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers (or looks up) a counter by name.
    pub fn counter(&self, name: &str) -> CounterId {
        let mut inner = self.inner.lock();
        if let Some(i) = inner.counter_names.iter().position(|n| n == name) {
            return CounterId(i);
        }
        inner.counter_names.push(name.to_owned());
        inner.counters.push(0);
        CounterId(inner.counter_names.len() - 1)
    }

    /// Registers (or looks up) a histogram by name.
    pub fn histogram(&self, name: &str) -> HistogramId {
        let mut inner = self.inner.lock();
        if let Some(i) = inner.histogram_names.iter().position(|n| n == name) {
            return HistogramId(i);
        }
        let name = name.to_owned();
        inner.histograms.push(Histogram::new(name.clone()));
        inner.histogram_names.push(name);
        HistogramId(inner.histogram_names.len() - 1)
    }

    /// Creates a worker-local shard sized for the current registrations.
    pub fn shard(&self) -> MetricsShard {
        let inner = self.inner.lock();
        MetricsShard {
            counters: vec![0; inner.counters.len()],
            histograms: vec![Vec::new(); inner.histograms.len()],
        }
    }

    /// Folds a shard's values into the aggregate and clears the shard
    /// (keeping its allocations), so it can be reused for the next chunk.
    pub fn absorb(&self, shard: &mut MetricsShard) {
        let mut inner = self.inner.lock();
        for (i, v) in shard.counters.iter_mut().enumerate() {
            if *v != 0 && i < inner.counters.len() {
                inner.counters[i] += *v;
            }
            *v = 0;
        }
        for (i, samples) in shard.histograms.iter_mut().enumerate() {
            if i < inner.histograms.len() {
                for &s in samples.iter() {
                    inner.histograms[i].record(s);
                }
            }
            samples.clear();
        }
    }

    /// The aggregated value of a counter, or `None` if never registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        let inner = self.inner.lock();
        let i = inner.counter_names.iter().position(|n| n == name)?;
        Some(inner.counters[i])
    }

    /// A point-in-time copy of every aggregated counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            counters: inner
                .counter_names
                .iter()
                .cloned()
                .zip(inner.counters.iter().copied())
                .collect(),
            histograms: inner
                .histogram_names
                .iter()
                .cloned()
                .zip(inner.histograms.iter().cloned())
                .collect(),
        }
    }
}

/// A worker-private slice of the metrics space: plain adds, no atomics, no
/// locks. Fold back with [`MetricsRegistry::absorb`].
#[derive(Debug, Default)]
pub struct MetricsShard {
    counters: Vec<u64>,
    histograms: Vec<Vec<u64>>,
}

impl MetricsShard {
    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        if id.0 >= self.counters.len() {
            self.counters.resize(id.0 + 1, 0);
        }
        self.counters[id.0] += n;
    }

    /// Adds one to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Records one histogram sample.
    #[inline]
    pub fn record(&mut self, id: HistogramId, sample: u64) {
        if id.0 >= self.histograms.len() {
            self.histograms.resize(id.0 + 1, Vec::new());
        }
        self.histograms[id.0].push(sample);
    }
}

/// A point-in-time copy of aggregated metrics, detached from the registry.
#[derive(Debug, Default, Clone)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every registered counter, in registration order.
    pub counters: Vec<(String, u64)>,
    /// `(name, histogram)` for every registered histogram, in registration
    /// order.
    pub histograms: Vec<(String, Histogram)>,
}

/// Per-agent token and host-time accounting.
///
/// Lives in the agent's engine slot: the worker stepping the agent already
/// owns the slot exclusively, so the profile is updated with plain stores.
/// All fields except `host_ns` are functions of the deterministic
/// simulation alone and therefore identical across host thread counts.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct AgentProfile {
    /// Windows the agent has been stepped through.
    pub rounds: u64,
    /// Target cycles simulated (`rounds * window`).
    pub target_cycles: u64,
    /// Input windows consumed (one per connected input port per round).
    pub windows_in: u64,
    /// Output windows produced (one per connected output port per round).
    pub windows_out: u64,
    /// Valid (non-empty) tokens consumed across all input ports.
    pub tokens_in: u64,
    /// Valid (non-empty) tokens produced across all output ports.
    pub tokens_out: u64,
    /// Host nanoseconds spent inside this agent's `advance`, including its
    /// port I/O. Host-dependent: excluded from determinism comparisons.
    pub host_ns: u64,
}

/// One completed span: a named interval on a virtual thread ("track").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name, e.g. the agent name or `"barrier"`.
    pub name: String,
    /// Category string (`"agent"`, `"sync"`, `"sched"`, `"supervisor"`).
    pub cat: &'static str,
    /// Track the span is drawn on (worker index, or a reserved id).
    pub tid: u32,
    /// Start, nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Extra key/value annotations shown in the trace viewer.
    pub args: Vec<(&'static str, u64)>,
}

/// Collects [`TraceEvent`]s from many workers and serializes them as Chrome
/// `trace_event` JSON.
///
/// Workers buffer spans in a private [`SpanBuffer`] and [`flush`] once at
/// the end of a run, so tracing adds no synchronization to the hot path
/// beyond the `Instant` reads themselves. Low-rate callers (the supervisor)
/// may [`record`] directly.
///
/// [`flush`]: SpanTracer::flush
/// [`record`]: SpanTracer::record
#[derive(Debug)]
pub struct SpanTracer {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
    thread_names: Mutex<BTreeMap<u32, String>>,
}

impl Default for SpanTracer {
    fn default() -> Self {
        SpanTracer {
            epoch: Instant::now(),
            events: Mutex::new(Vec::new()),
            thread_names: Mutex::new(BTreeMap::new()),
        }
    }
}

impl SpanTracer {
    /// Creates a tracer whose timestamps are relative to "now".
    pub fn new() -> Self {
        SpanTracer::default()
    }

    /// Nanoseconds since the tracer's epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Converts an already-taken [`Instant`] to tracer-epoch nanoseconds,
    /// so one clock read can serve both profiling and span timestamps.
    #[inline]
    pub fn ns_of(&self, t: Instant) -> u64 {
        t.checked_duration_since(self.epoch)
            .map_or(0, |d| d.as_nanos() as u64)
    }

    /// Creates a worker-local span buffer for track `tid`.
    pub fn buffer(&self, tid: u32) -> SpanBuffer {
        SpanBuffer {
            tid,
            events: Vec::new(),
        }
    }

    /// Names a track (shown as a thread name in the trace viewer).
    pub fn name_thread(&self, tid: u32, name: impl Into<String>) {
        self.thread_names.lock().insert(tid, name.into());
    }

    /// Appends one event directly. Takes a lock; fine for low-rate spans
    /// (supervisor bursts), wrong for per-agent steps — use a
    /// [`SpanBuffer`] there.
    pub fn record(&self, event: TraceEvent) {
        self.events.lock().push(event);
    }

    /// Drains a worker's buffered spans into the tracer.
    pub fn flush(&self, buf: &mut SpanBuffer) {
        if buf.events.is_empty() {
            return;
        }
        self.events.lock().append(&mut buf.events);
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when no events have been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes every collected span as Chrome `trace_event` JSON
    /// (the "JSON object format": `{"traceEvents": [...]}`), loadable in
    /// Perfetto or `chrome://tracing`. Timestamps are microseconds with
    /// nanosecond precision retained in the fraction.
    pub fn export_chrome_trace(&self) -> String {
        let events = self.events.lock();
        let names = self.thread_names.lock();
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        for (tid, name) in names.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"ph\":\"M\",\"pid\":1,\"tid\":");
            push_u64(&mut out, u64::from(*tid));
            out.push_str(",\"name\":\"thread_name\",\"args\":{\"name\":\"");
            push_escaped(&mut out, name);
            out.push_str("\"}}");
        }
        for ev in events.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"ph\":\"X\",\"pid\":1,\"tid\":");
            push_u64(&mut out, u64::from(ev.tid));
            out.push_str(",\"name\":\"");
            push_escaped(&mut out, &ev.name);
            out.push_str("\",\"cat\":\"");
            push_escaped(&mut out, ev.cat);
            out.push_str("\",\"ts\":");
            push_micros(&mut out, ev.start_ns);
            out.push_str(",\"dur\":");
            push_micros(&mut out, ev.dur_ns.max(1));
            if !ev.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in ev.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    push_escaped(&mut out, k);
                    out.push_str("\":");
                    push_u64(&mut out, *v);
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Writes [`export_chrome_trace`](Self::export_chrome_trace) to a file.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Io`] when the file cannot be written.
    pub fn write_chrome_trace(&self, path: &std::path::Path) -> SimResult<()> {
        std::fs::write(path, self.export_chrome_trace())
            .map_err(|e| SimError::io(format!("writing trace to {}", path.display()), &e))
    }
}

/// A worker-private buffer of spans on one track. No locks until
/// [`SpanTracer::flush`].
#[derive(Debug)]
pub struct SpanBuffer {
    tid: u32,
    events: Vec<TraceEvent>,
}

impl SpanBuffer {
    /// Records a completed span from `start_ns` to `end_ns` (tracer-epoch
    /// nanoseconds).
    #[inline]
    pub fn span(&mut self, name: impl Into<String>, cat: &'static str, start_ns: u64, end_ns: u64) {
        self.span_args(name, cat, start_ns, end_ns, Vec::new());
    }

    /// Records a completed span with key/value annotations.
    #[inline]
    pub fn span_args(
        &mut self,
        name: impl Into<String>,
        cat: &'static str,
        start_ns: u64,
        end_ns: u64,
        args: Vec<(&'static str, u64)>,
    ) {
        self.events.push(TraceEvent {
            name: name.into(),
            cat,
            tid: self.tid,
            start_ns,
            dur_ns: end_ns.saturating_sub(start_ns),
            args,
        });
    }

    /// Number of buffered spans.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Shared handle type for an engine-owned tracer.
pub type SharedTracer = Arc<SpanTracer>;

/// Shared handle type for an engine-owned metrics registry.
pub type SharedMetrics = Arc<MetricsRegistry>;

fn push_u64(out: &mut String, v: u64) {
    use std::fmt::Write as _;
    let _ = write!(out, "{v}");
}

/// Chrome traces use microsecond `ts`/`dur`; emit with three decimals so
/// nanosecond resolution survives.
fn push_micros(out: &mut String, ns: u64) {
    use std::fmt::Write as _;
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// One agent's activity during a sampling interval, as a delta between
/// two quiescent points (see [`IntervalProbe`]).
///
/// Every field except `host_ns` is target-deterministic: identical for
/// the same topology, horizon, and interval schedule regardless of host
/// thread count. `host_ns` is host wall time and is normalized out of
/// golden-stream comparisons (DESIGN §17).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AgentIntervalSample {
    /// Agent name, in engine registration order.
    pub name: String,
    /// Target cycles this agent was stepped through during the interval.
    pub d_cycles: u64,
    /// Valid tokens consumed during the interval.
    pub d_tokens_in: u64,
    /// Valid tokens produced during the interval.
    pub d_tokens_out: u64,
    /// Instructions retired during the interval, read from the agent's
    /// `retired` app counter; 0 for agents that don't publish one
    /// (switches, NIC-only endpoints).
    pub d_retired: u64,
    /// Host nanoseconds spent inside the agent's `advance` during the
    /// interval. Host-dependent: excluded from determinism comparisons.
    pub host_ns: u64,
    /// Decode-cache hit rate over the interval in permille (from the
    /// agent's `host_icache_hits`/`host_icache_misses` counter deltas);
    /// 0 for agents without those counters or with no accesses this
    /// interval. Deterministic for a fixed configuration, but depends on
    /// host-speed knobs (`decode_cache`), hence excluded from
    /// `deterministic_aggregates` at the report layer.
    pub icache_hit_permille: u64,
    /// Host-side MIPS over the interval (`d_retired` per host
    /// microsecond). Host-dependent: normalized out of golden streams.
    pub host_mips: u64,
    /// Sampled-mode IPC estimate in permille (current value of the
    /// agent's `sampling_ipc_est_permille` counter); 0 when the agent is
    /// not running sampled.
    pub ipc_est_permille: u64,
    /// Sampled-mode 95% confidence interval bounds in permille; 0 when
    /// not sampling.
    pub ci_lo_permille: u64,
    /// See `ci_lo_permille`.
    pub ci_hi_permille: u64,
}

/// A deterministic delta of the whole engine between two quiescent
/// points, produced by [`IntervalProbe::sample`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IntervalSnapshot {
    /// Target cycle at the end of the interval.
    pub cycle: u64,
    /// Target cycles elapsed since the previous sample (or since the
    /// probe was primed).
    pub d_cycles: u64,
    /// Per-agent deltas, in engine registration order.
    pub agents: Vec<AgentIntervalSample>,
}

/// Snapshot-diff probe turning the engine's cumulative per-agent
/// [`AgentProfile`]s (and `retired` app counters) into per-interval
/// deltas.
///
/// The probe never touches the hot path: it reads the profile
/// aggregation that already exists at chunk barriers, so holding one
/// costs nothing while the simulation runs. Call
/// [`Engine::sample_interval`](crate::engine::Engine::sample_interval)
/// between `run_for` legs; the first call primes the baseline (useful
/// after a checkpoint restore) and subsequent calls return deltas.
#[derive(Debug, Default)]
pub struct IntervalProbe {
    primed: bool,
    prev_cycle: u64,
    prev_profiles: Vec<AgentProfile>,
    prev_counters: Vec<CounterBase>,
}

/// The app-counter values an [`IntervalProbe`] diffs per agent.
#[derive(Debug, Clone, Copy, Default)]
struct CounterBase {
    retired: u64,
    icache_hits: u64,
    icache_misses: u64,
}

impl CounterBase {
    fn from_counters(counters: &[(String, u64)]) -> Self {
        let find = |name: &str| {
            counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or(0)
        };
        CounterBase {
            retired: find("retired"),
            icache_hits: find("host_icache_hits"),
            icache_misses: find("host_icache_misses"),
        }
    }
}

impl IntervalProbe {
    /// A fresh, unprimed probe. The first [`sample`](Self::sample)
    /// establishes the baseline and returns an all-zero snapshot.
    pub fn new() -> Self {
        IntervalProbe::default()
    }

    /// Diffs the cumulative per-agent state against the previous call,
    /// returning the interval delta and advancing the baseline.
    ///
    /// `profiles` and `counters` must be in a stable order (the engine's
    /// registration order) and the same length on every call. Counter
    /// lists are the agents' full `app_counters` output: the probe diffs
    /// `retired` and the `host_icache_*` pair, and reads the sampled-mode
    /// `sampling_*_permille` values as levels.
    pub fn sample(
        &mut self,
        cycle: u64,
        profiles: &[(String, AgentProfile)],
        counters: &[Vec<(String, u64)>],
    ) -> IntervalSnapshot {
        debug_assert_eq!(profiles.len(), counters.len());
        let primed = std::mem::replace(&mut self.primed, true);
        let agents = profiles
            .iter()
            .zip(counters)
            .enumerate()
            .map(|(i, ((name, p), c))| {
                let base = CounterBase::from_counters(c);
                let (prev_p, prev_c) = if primed {
                    (
                        self.prev_profiles.get(i).copied().unwrap_or_default(),
                        self.prev_counters.get(i).copied().unwrap_or_default(),
                    )
                } else {
                    // Unprimed: the baseline is the current state, so the
                    // first snapshot is all zeros.
                    (*p, base)
                };
                let level = |name: &str| {
                    c.iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, v)| *v)
                        .unwrap_or(0)
                };
                let d_retired = base.retired.saturating_sub(prev_c.retired);
                let host_ns = p.host_ns.saturating_sub(prev_p.host_ns);
                let d_ich = base.icache_hits.saturating_sub(prev_c.icache_hits);
                let d_icm = base.icache_misses.saturating_sub(prev_c.icache_misses);
                AgentIntervalSample {
                    name: name.clone(),
                    d_cycles: p.target_cycles.saturating_sub(prev_p.target_cycles),
                    d_tokens_in: p.tokens_in.saturating_sub(prev_p.tokens_in),
                    d_tokens_out: p.tokens_out.saturating_sub(prev_p.tokens_out),
                    d_retired,
                    host_ns,
                    icache_hit_permille: (d_ich * 1000).checked_div(d_ich + d_icm).unwrap_or(0),
                    host_mips: d_retired
                        .saturating_mul(1000)
                        .checked_div(host_ns)
                        .unwrap_or(0),
                    ipc_est_permille: level("sampling_ipc_est_permille"),
                    ci_lo_permille: level("sampling_ci_lo_permille"),
                    ci_hi_permille: level("sampling_ci_hi_permille"),
                }
            })
            .collect();
        let d_cycles = if primed {
            cycle.saturating_sub(self.prev_cycle)
        } else {
            0
        };
        self.prev_cycle = cycle;
        self.prev_profiles = profiles.iter().map(|(_, p)| *p).collect();
        self.prev_counters = counters
            .iter()
            .map(|c| CounterBase::from_counters(c))
            .collect();
        IntervalSnapshot {
            cycle,
            d_cycles,
            agents,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_absorbs_shards() {
        let reg = MetricsRegistry::new();
        let steps = reg.counter("steps");
        let lat = reg.histogram("latency");
        let mut a = reg.shard();
        let mut b = reg.shard();
        a.add(steps, 3);
        b.add(steps, 4);
        a.record(lat, 10);
        b.record(lat, 30);
        reg.absorb(&mut a);
        reg.absorb(&mut b);
        assert_eq!(reg.counter_value("steps"), Some(7));
        let snap = reg.snapshot();
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count(), 2);
        // Shards are cleared by absorb and reusable.
        a.add(steps, 1);
        reg.absorb(&mut a);
        assert_eq!(reg.counter_value("steps"), Some(8));
    }

    #[test]
    fn registry_lookup_is_idempotent() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        assert_eq!(a, b);
        let h1 = reg.histogram("h");
        let h2 = reg.histogram("h");
        assert_eq!(h1, h2);
    }

    #[test]
    fn shard_grows_for_late_registrations() {
        let reg = MetricsRegistry::new();
        let mut shard = reg.shard(); // sized for zero counters
        let late = reg.counter("late");
        shard.add(late, 5);
        reg.absorb(&mut shard);
        assert_eq!(reg.counter_value("late"), Some(5));
    }

    #[test]
    fn tracer_collects_and_orders_events() {
        let tracer = SpanTracer::new();
        tracer.name_thread(0, "worker0");
        let mut buf = tracer.buffer(0);
        buf.span("step", "agent", 100, 350);
        buf.span_args("barrier", "sync", 400, 500, vec![("chunk", 2)]);
        assert_eq!(buf.len(), 2);
        tracer.flush(&mut buf);
        assert!(buf.is_empty());
        assert_eq!(tracer.len(), 2);
        tracer.record(TraceEvent {
            name: "burst".into(),
            cat: "supervisor",
            tid: 1000,
            start_ns: 0,
            dur_ns: 9,
            args: vec![],
        });
        assert_eq!(tracer.len(), 3);
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let tracer = SpanTracer::new();
        tracer.name_thread(0, "w\"eird\\name");
        let mut buf = tracer.buffer(0);
        buf.span_args("agent\n1", "agent", 1_234, 5_678, vec![("cycle", 64)]);
        tracer.flush(&mut buf);
        let json = tracer.export_chrome_trace();
        let v: serde_json::Value = serde_json::from_str(&json).expect("trace parses as JSON");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        // One metadata event + one span.
        assert_eq!(events.len(), 2);
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .expect("complete event present");
        assert_eq!(span.get("name").and_then(|n| n.as_str()), Some("agent\n1"));
        assert_eq!(span.get("cat").and_then(|c| c.as_str()), Some("agent"));
        // ts in microseconds: 1234 ns -> 1.234 us.
        assert!((span.get("ts").unwrap().as_f64().unwrap() - 1.234).abs() < 1e-9);
        assert!((span.get("dur").unwrap().as_f64().unwrap() - 4.444).abs() < 1e-9);
        assert_eq!(
            span.get("args").unwrap().get("cycle").unwrap().as_u64(),
            Some(64)
        );
    }

    #[test]
    fn empty_trace_still_valid() {
        let tracer = SpanTracer::new();
        assert!(tracer.is_empty());
        let json = tracer.export_chrome_trace();
        let v: serde_json::Value = serde_json::from_str(&json).expect("parses");
        assert_eq!(
            v.get("traceEvents")
                .and_then(|e| e.as_array())
                .map(Vec::len),
            Some(0)
        );
    }

    #[test]
    fn profile_defaults_zero() {
        let p = AgentProfile::default();
        assert_eq!(p.rounds, 0);
        assert_eq!(p.tokens_in + p.tokens_out + p.host_ns, 0);
    }

    #[test]
    fn interval_probe_diffs_cumulative_profiles() {
        let mut probe = IntervalProbe::new();
        let mut p = AgentProfile {
            target_cycles: 1000,
            tokens_in: 10,
            tokens_out: 20,
            host_ns: 5_000,
            ..AgentProfile::default()
        };
        let counters = |retired: u64, ich: u64, icm: u64| {
            vec![
                ("retired".to_owned(), retired),
                ("host_icache_hits".to_owned(), ich),
                ("host_icache_misses".to_owned(), icm),
                ("sampling_ipc_est_permille".to_owned(), 640),
            ]
        };
        // Priming call: baseline established, all-zero snapshot.
        let s0 = probe.sample(1000, &[("a".into(), p)], &[counters(400, 90, 10)]);
        assert_eq!(s0.cycle, 1000);
        assert_eq!(s0.d_cycles, 0);
        assert_eq!(s0.agents.len(), 1);
        assert_eq!(s0.agents[0].d_cycles, 0);
        assert_eq!(s0.agents[0].d_retired, 0);
        assert_eq!(s0.agents[0].icache_hit_permille, 0);
        // Levels (not deltas) report even on the priming call.
        assert_eq!(s0.agents[0].ipc_est_permille, 640);

        p.target_cycles += 500;
        p.tokens_in += 3;
        p.tokens_out += 7;
        p.host_ns += 2_000;
        let s1 = probe.sample(1500, &[("a".into(), p)], &[counters(460, 165, 35)]);
        assert_eq!(s1.cycle, 1500);
        assert_eq!(s1.d_cycles, 500);
        let a = &s1.agents[0];
        assert_eq!(
            (a.d_cycles, a.d_tokens_in, a.d_tokens_out, a.d_retired),
            (500, 3, 7, 60)
        );
        assert_eq!(a.host_ns, 2_000);
        // 75 hits / 25 misses this interval -> 750 permille.
        assert_eq!(a.icache_hit_permille, 750);
        // 60 insts over 2 us -> 30 MIPS.
        assert_eq!(a.host_mips, 30);
        assert_eq!(a.ipc_est_permille, 640);
        assert_eq!((a.ci_lo_permille, a.ci_hi_permille), (0, 0));

        // No progress -> all-zero delta (levels persist).
        let s2 = probe.sample(1500, &[("a".into(), p)], &[counters(460, 165, 35)]);
        assert_eq!(s2.d_cycles, 0);
        assert_eq!(
            s2.agents[0],
            AgentIntervalSample {
                name: "a".into(),
                ipc_est_permille: 640,
                ..AgentIntervalSample::default()
            }
        );
    }
}
