//! Deterministic, seeded fault injection.
//!
//! A multi-hour scale-out simulation meets every failure mode the host can
//! produce — a worker thread dies, a channel tears, a model wedges — and
//! the halt/teardown machinery that handles them is exactly the code that
//! is hardest to exercise. A [`FaultPlan`] makes those failures *schedulable
//! and replayable*: it is built from a seed (or explicit fault entries),
//! handed to [`Engine::set_fault_plan`](crate::Engine::set_fault_plan), and
//! fires the same faults at the same target cycles on every run.
//!
//! Two families of fault exist:
//!
//! * **Host-side** faults model the simulator breaking: an agent panicking
//!   mid-`advance`, a token channel dropping, a worker stalling long enough
//!   to trip a watchdog. These are *one-shot*: each entry carries a shared
//!   `fired` flag that survives engine rebuilds, so a supervisor retrying
//!   from a checkpoint with the same plan observes a **transient** fault —
//!   it fires once and never again. This is how the manager's
//!   retry-from-checkpoint path is tested end to end.
//! * **Target-side** faults model the simulated world breaking: a link goes
//!   down (all tokens in a cycle range become idle), flaky (a seeded
//!   fraction of tokens is dropped), or degraded (a duty-cycle fraction of
//!   each link's bandwidth is shaved off). Tokens still flow one per cycle —
//!   only payloads disappear — so the simulation stays cycle-exact and the
//!   fault is part of the deterministic target behaviour: replaying from a
//!   checkpoint reproduces it bit-for-bit.
//!
//! Plans can additionally **watch** links and accumulate a
//! [`RecoveryTimeline`]: per-interval delivered/dropped/masked token counts
//! on the watched input ports, which is how chaos-scenario runs (see
//! [`scenario`](crate::scenario)) surface their recovery curves in run
//! reports. Every count is a pure function of target state, so timelines
//! agree bit-for-bit across thread counts, transports, and partitionings.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::{SimError, SimResult};
use crate::rng::SimRng;
use crate::token::TokenWindow;

/// Which agent a fault applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultTarget {
    /// The agent at this registration index.
    Index(usize),
    /// The agent with this name (resolved when the run starts).
    Name(String),
}

impl From<usize> for FaultTarget {
    fn from(i: usize) -> Self {
        FaultTarget::Index(i)
    }
}

impl From<&str> for FaultTarget {
    fn from(n: &str) -> Self {
        FaultTarget::Name(n.to_owned())
    }
}

/// What kind of failure to inject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Host fault: the agent panics inside `advance` (one-shot).
    AgentPanic,
    /// Host fault: the agent's input channel `port` is torn down — in-flight
    /// windows are discarded and both endpoints observe closure (one-shot).
    ChannelDrop {
        /// Input port whose link is dropped.
        port: usize,
    },
    /// Host fault: the worker stepping this agent sleeps for `millis`
    /// milliseconds before the step — watchdog food (one-shot).
    WorkerStall {
        /// How long the worker sleeps.
        millis: u64,
    },
    /// Target fault: every token arriving on input `port` in target cycles
    /// `[at, until)` is delivered dead (idle). Replays deterministically.
    LinkDown {
        /// Input port whose link is down.
        port: usize,
        /// First cycle at which the link works again.
        until: u64,
    },
    /// Target fault: each token arriving on input `port` in `[at, until)`
    /// is dropped with probability `drop_percent`/100, decided by a pure
    /// hash of (seed, cycle), so the loss pattern is identical on replay.
    LinkFlaky {
        /// Input port whose link is flaky.
        port: usize,
        /// First cycle at which the link is reliable again.
        until: u64,
        /// Percentage of tokens dropped, 0-100.
        drop_percent: u8,
    },
    /// Target fault: input `port`'s bandwidth is shaped down to
    /// `keep_percent`% for cycles `[at, until)` — a token at absolute cycle
    /// `c` is delivered iff `c % 100 < keep_percent`. The duty cycle is a
    /// pure function of the target cycle (seed-independent), modeling
    /// deterministic bandwidth degradation rather than random loss.
    LinkDegraded {
        /// Input port whose link is degraded.
        port: usize,
        /// First cycle at which full bandwidth returns.
        until: u64,
        /// Percentage of tokens kept, 0-100.
        keep_percent: u8,
    },
}

impl FaultKind {
    fn is_one_shot(&self) -> bool {
        matches!(
            self,
            FaultKind::AgentPanic | FaultKind::ChannelDrop { .. } | FaultKind::WorkerStall { .. }
        )
    }

    /// The input port this kind addresses, when it addresses one.
    fn port(&self) -> Option<usize> {
        match self {
            FaultKind::ChannelDrop { port }
            | FaultKind::LinkDown { port, .. }
            | FaultKind::LinkFlaky { port, .. }
            | FaultKind::LinkDegraded { port, .. } => Some(*port),
            FaultKind::AgentPanic | FaultKind::WorkerStall { .. } => None,
        }
    }
}

/// Provenance of a fault that actually fired, for failure reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Name of the agent the fault hit.
    pub agent: String,
    /// Target cycle (window start) at which it fired.
    pub cycle: u64,
    /// Human-readable description of the fault.
    pub description: String,
}

#[derive(Debug, Clone)]
struct FaultEntry {
    target: FaultTarget,
    at: u64,
    kind: FaultKind,
    /// Seed driving this entry's flaky-link drop decisions. Captured per
    /// entry (from the owning plan at injection time) so merging two plans
    /// with different seeds preserves each entry's loss pattern.
    seed: u64,
    /// Shared across clones of the plan so a one-shot fault stays fired
    /// when a supervisor rebuilds the engine and retries.
    fired: Arc<AtomicBool>,
}

/// A link watch: per-window token accounting on one agent's input port,
/// feeding the plan's [`RecoveryTimeline`].
#[derive(Debug, Clone)]
struct WatchEntry {
    target: FaultTarget,
    port: usize,
    /// High-water mark of window-*end* cycles already accumulated into the
    /// timeline. Shared across plan clones so a supervisor replaying
    /// windows after a retry-from-checkpoint does not double-count them:
    /// only the first execution of each window contributes (and replayed
    /// windows are deterministically identical anyway).
    counted_until: Arc<AtomicU64>,
}

/// Shared accumulator behind a plan's recovery timeline.
#[derive(Debug, Default)]
struct TimelineInner {
    /// Bucket width in target cycles (0 = recording disabled).
    interval: u64,
    /// Bucket start cycle → `[delivered, dropped, masked]` token counts.
    buckets: BTreeMap<u64, [u64; 3]>,
    /// Scenario annotations: `(cycle, label)`.
    events: Vec<(u64, String)>,
}

/// One bucket of a [`RecoveryTimeline`]: token counts on all watched links
/// for target cycles `[start, start + interval)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelinePoint {
    /// First target cycle of the bucket.
    pub start: u64,
    /// Tokens delivered alive on watched ports.
    pub delivered: u64,
    /// Tokens removed by flaky/degraded links (partial loss).
    pub dropped: u64,
    /// Tokens removed by downed links (total loss).
    pub masked: u64,
}

/// A per-interval account of token flow on watched links, around injected
/// events: the "recovery curve" of a chaos run. Collected into run reports
/// by the manager. All counts are target state — bit-identical across
/// thread counts, transports, and partitionings of the same run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryTimeline {
    /// Bucket width in target cycles.
    pub interval: u64,
    /// Buckets in ascending `start` order (buckets nothing flowed through
    /// still appear if any watched window fell inside them).
    pub points: Vec<TimelinePoint>,
    /// Scenario annotations: `(cycle, label)`, e.g. partition begin/heal.
    pub events: Vec<(u64, String)>,
}

/// A schedule of injectable faults, replayable across runs.
///
/// Cloning a plan shares its fired-flags and provenance log, so handing the
/// *same* plan (or a clone) to a rebuilt engine preserves one-shot
/// semantics — the basis of transient-fault recovery testing.
///
/// # Examples
///
/// ```
/// use firesim_core::FaultPlan;
///
/// let mut plan = FaultPlan::new(0xF1BE);
/// plan.panic_at("pinger", 250_000);
/// plan.link_down("echo", 0, 100_000, 200_000);
/// assert_eq!(plan.len(), 2);
///
/// // Clones share fired-state and the provenance log: a supervisor
/// // handing a clone to a rebuilt engine keeps one-shot faults one-shot.
/// let replay = plan.clone();
/// assert_eq!(replay.len(), plan.len());
/// assert!(plan.records().is_empty(), "nothing fired yet");
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<FaultEntry>,
    watches: Vec<WatchEntry>,
    timeline: Option<Arc<Mutex<TimelineInner>>>,
    log: Arc<Mutex<Vec<FaultRecord>>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl FaultPlan {
    /// Creates an empty plan. The seed drives flaky-link token selection.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
            watches: Vec::new(),
            timeline: None,
            log: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// True when the plan does something during a run: schedules at least
    /// one fault or watches at least one link.
    pub fn has_effects(&self) -> bool {
        !self.faults.is_empty() || !self.watches.is_empty()
    }

    /// Schedules `kind` against `target` at target cycle `at`.
    pub fn inject(
        &mut self,
        target: impl Into<FaultTarget>,
        at: u64,
        kind: FaultKind,
    ) -> &mut Self {
        self.faults.push(FaultEntry {
            target: target.into(),
            at,
            kind,
            seed: self.seed,
            fired: Arc::new(AtomicBool::new(false)),
        });
        self
    }

    /// Schedules an agent panic (one-shot host fault).
    pub fn panic_at(&mut self, target: impl Into<FaultTarget>, at: u64) -> &mut Self {
        self.inject(target, at, FaultKind::AgentPanic)
    }

    /// Schedules a channel drop on an input port (one-shot host fault).
    pub fn drop_channel(
        &mut self,
        target: impl Into<FaultTarget>,
        port: usize,
        at: u64,
    ) -> &mut Self {
        self.inject(target, at, FaultKind::ChannelDrop { port })
    }

    /// Schedules a worker stall (one-shot host fault).
    pub fn stall_worker(
        &mut self,
        target: impl Into<FaultTarget>,
        at: u64,
        millis: u64,
    ) -> &mut Self {
        self.inject(target, at, FaultKind::WorkerStall { millis })
    }

    /// Takes an input link down for target cycles `[from, until)`.
    pub fn link_down(
        &mut self,
        target: impl Into<FaultTarget>,
        port: usize,
        from: u64,
        until: u64,
    ) -> &mut Self {
        self.inject(target, from, FaultKind::LinkDown { port, until })
    }

    /// Makes an input link flaky for target cycles `[from, until)`.
    pub fn link_flaky(
        &mut self,
        target: impl Into<FaultTarget>,
        port: usize,
        from: u64,
        until: u64,
        drop_percent: u8,
    ) -> &mut Self {
        self.inject(
            target,
            from,
            FaultKind::LinkFlaky {
                port,
                until,
                drop_percent,
            },
        )
    }

    /// Shapes an input link down to `keep_percent`% of its bandwidth for
    /// target cycles `[from, until)` (deterministic duty cycle; see
    /// [`FaultKind::LinkDegraded`]).
    pub fn link_degraded(
        &mut self,
        target: impl Into<FaultTarget>,
        port: usize,
        from: u64,
        until: u64,
        keep_percent: u8,
    ) -> &mut Self {
        self.inject(
            target,
            from,
            FaultKind::LinkDegraded {
                port,
                until,
                keep_percent,
            },
        )
    }

    /// Watches `target`'s input `port`: every window's delivered and
    /// fault-removed tokens on the port are accumulated into the plan's
    /// recovery timeline (see [`FaultPlan::record_timeline`]).
    pub fn watch_link(&mut self, target: impl Into<FaultTarget>, port: usize) -> &mut Self {
        self.watches.push(WatchEntry {
            target: target.into(),
            port,
            counted_until: Arc::new(AtomicU64::new(0)),
        });
        self
    }

    /// Enables recovery-timeline recording with the given bucket width in
    /// target cycles. A zero interval disables recording. The timeline is
    /// shared across clones of the plan (like the provenance log).
    pub fn record_timeline(&mut self, interval: u64) -> &mut Self {
        lock(self.timeline_inner()).interval = interval;
        self
    }

    /// Adds a `(cycle, label)` annotation to the recovery timeline — used
    /// by the scenario compiler to mark event begin/heal cycles.
    pub fn annotate(&mut self, cycle: u64, label: impl Into<String>) -> &mut Self {
        lock(self.timeline_inner())
            .events
            .push((cycle, label.into()));
        self
    }

    fn timeline_inner(&mut self) -> &Arc<Mutex<TimelineInner>> {
        self.timeline
            .get_or_insert_with(|| Arc::new(Mutex::new(TimelineInner::default())))
    }

    /// A snapshot of the recovery timeline accumulated so far, or `None`
    /// when recording was never enabled.
    pub fn recovery_timeline(&self) -> Option<RecoveryTimeline> {
        let tl = lock(self.timeline.as_ref()?);
        Some(RecoveryTimeline {
            interval: tl.interval,
            points: tl
                .buckets
                .iter()
                .map(|(&start, &[delivered, dropped, masked])| TimelinePoint {
                    start,
                    delivered,
                    dropped,
                    masked,
                })
                .collect(),
            events: tl.events.clone(),
        })
    }

    /// Appends every fault, watch, and timeline of `other` into this plan.
    /// Fault entries keep their own seeds and shared fired-flags, so a
    /// scenario-derived plan merged into a user plan behaves exactly as it
    /// would alone; if this plan has no timeline yet, it adopts (shares)
    /// the other plan's.
    pub fn merge_from(&mut self, other: &FaultPlan) {
        self.faults.extend(other.faults.iter().cloned());
        self.watches.extend(other.watches.iter().cloned());
        if self.timeline.is_none() {
            self.timeline = other.timeline.clone();
        }
    }

    /// Derives a benign smoke-test plan from a seed: one or two *target-side*
    /// link faults against pseudo-random agents in `[0, agents)`, within the
    /// first `horizon` cycles. Host-side faults are deliberately excluded so
    /// a smoke run completes; the point is exercising the fault-delivery
    /// machinery under different seeds.
    pub fn smoke(seed: u64, agents: usize, horizon: u64) -> Self {
        let mut plan = FaultPlan::new(seed);
        if agents == 0 || horizon < 2 {
            return plan;
        }
        let mut rng = SimRng::seed_from(seed);
        let n = 1 + (rng.next_u64() % 2) as usize;
        for _ in 0..n {
            let agent = rng.next_below(agents as u64) as usize;
            let from = rng.next_below(horizon / 2);
            let until = from + 1 + rng.next_below(horizon - from);
            if rng.next_bool(0.5) {
                plan.link_down(agent, 0, from, until);
            } else {
                let pct = 10 + (rng.next_below(90)) as u8;
                plan.link_flaky(agent, 0, from, until, pct);
            }
        }
        plan
    }

    /// Faults that have fired so far, in firing order (provenance for
    /// failure reports). Shared across clones of the plan.
    pub fn records(&self) -> Vec<FaultRecord> {
        lock(&self.log).clone()
    }

    /// Resolves fault and watch targets against the engine's agents — each
    /// given as `(name, input port count)` — grouping entries per agent
    /// index. Called by the engine at run start.
    ///
    /// A target naming an unknown agent, an out-of-range agent index, or an
    /// input port the agent does not have is a typed error here, **not** a
    /// silent no-op: a chaos plan that injects nothing is a broken
    /// experiment, and this is the one choke point every fault passes
    /// through.
    pub(crate) fn resolve(&self, agents: &[(&str, usize)]) -> SimResult<Vec<Option<AgentFaults>>> {
        let target_index = |target: &FaultTarget| -> SimResult<usize> {
            match target {
                FaultTarget::Index(i) => {
                    if *i >= agents.len() {
                        return Err(SimError::topology(format!(
                            "fault plan targets agent index {i}, engine has {} agents",
                            agents.len()
                        )));
                    }
                    Ok(*i)
                }
                FaultTarget::Name(n) => agents.iter().position(|(m, _)| m == n).ok_or_else(|| {
                    SimError::topology(format!("fault plan targets unknown agent {n:?}"))
                }),
            }
        };
        let check_port = |idx: usize, port: usize, what: &str| -> SimResult<()> {
            let (name, n_in) = agents[idx];
            if port >= n_in {
                return Err(SimError::topology(format!(
                    "fault plan {what} input port {port} of agent {name:?}, \
                     which has {n_in} input port(s)"
                )));
            }
            Ok(())
        };

        let mut per_agent: Vec<AgentFaults> = (0..agents.len())
            .map(|_| AgentFaults {
                faults: Vec::new(),
                watches: Vec::new(),
                timeline: self.timeline.clone(),
                log: Arc::clone(&self.log),
            })
            .collect();
        for entry in &self.faults {
            let idx = target_index(&entry.target)?;
            if let Some(port) = entry.kind.port() {
                check_port(idx, port, "injects a fault on")?;
            }
            per_agent[idx].faults.push(ResolvedFault {
                at: entry.at,
                kind: entry.kind.clone(),
                seed: entry.seed,
                fired: Arc::clone(&entry.fired),
            });
        }
        for watch in &self.watches {
            let idx = target_index(&watch.target)?;
            check_port(idx, watch.port, "watches")?;
            per_agent[idx].watches.push(ResolvedWatch {
                port: watch.port,
                counted_until: Arc::clone(&watch.counted_until),
            });
        }
        Ok(per_agent
            .into_iter()
            .map(|af| {
                if af.faults.is_empty() && af.watches.is_empty() {
                    None
                } else {
                    Some(af)
                }
            })
            .collect())
    }
}

#[derive(Debug)]
pub(crate) struct ResolvedFault {
    at: u64,
    kind: FaultKind,
    seed: u64,
    fired: Arc<AtomicBool>,
}

#[derive(Debug)]
struct ResolvedWatch {
    port: usize,
    counted_until: Arc<AtomicU64>,
}

/// Pure hash used for flaky-link drop decisions: depends only on the plan
/// seed and the absolute target cycle, so it replays identically.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// What a host-side fault asks the stepping code to do, in check order.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum HostFaultAction {
    /// Sleep this many milliseconds before the step.
    Stall(u64),
    /// Tear down the input channel at this port.
    DropChannel(usize),
    /// Panic inside `advance` with this message.
    Panic(String),
}

/// The faults resolved against one agent, consulted by `step_agent`.
#[derive(Debug)]
pub(crate) struct AgentFaults {
    faults: Vec<ResolvedFault>,
    watches: Vec<ResolvedWatch>,
    timeline: Option<Arc<Mutex<TimelineInner>>>,
    log: Arc<Mutex<Vec<FaultRecord>>>,
}

impl AgentFaults {
    /// Returns the one-shot host faults due in the window starting at
    /// `now`, marking them fired and logging provenance. A fault whose
    /// cycle has already passed (e.g. after a restore that skipped it)
    /// fires in the first window that reaches it.
    pub(crate) fn due_host_faults(
        &self,
        agent: &str,
        now: u64,
        window: u32,
    ) -> Vec<HostFaultAction> {
        let mut actions = Vec::new();
        for f in &self.faults {
            if !f.kind.is_one_shot() || f.at >= now + u64::from(window) {
                continue;
            }
            if f.fired.swap(true, Ordering::AcqRel) {
                continue;
            }
            let (action, desc) = match &f.kind {
                FaultKind::WorkerStall { millis } => (
                    HostFaultAction::Stall(*millis),
                    format!("injected worker stall ({millis} ms)"),
                ),
                FaultKind::ChannelDrop { port } => (
                    HostFaultAction::DropChannel(*port),
                    format!("injected channel drop on input port {port}"),
                ),
                FaultKind::AgentPanic => {
                    let msg = format!("injected panic (scheduled at cycle {})", f.at);
                    (HostFaultAction::Panic(msg.clone()), msg)
                }
                _ => unreachable!("one-shot kinds only"),
            };
            lock(&self.log).push(FaultRecord {
                agent: agent.to_owned(),
                cycle: now,
                description: desc,
            });
            actions.push(action);
        }
        // Stalls first, then drops, then panics: a stall must delay the
        // step before any teardown makes the step fail.
        actions.sort_by_key(|a| match a {
            HostFaultAction::Stall(_) => 0,
            HostFaultAction::DropChannel(_) => 1,
            HostFaultAction::Panic(_) => 2,
        });
        actions
    }

    /// Applies target-side link faults to the received input windows for
    /// the window starting at `now`, and accumulates watched-link counts
    /// into the recovery timeline. Returns a bitmask of input ports that
    /// had at least one cycle masked (ports ≥ 64 are applied but not
    /// reported in the mask).
    pub(crate) fn mask_inputs<T>(
        &self,
        agent: &str,
        inputs: &mut [TokenWindow<T>],
        now: u64,
        window: u32,
    ) -> u64 {
        let mut mask = 0u64;
        let win_end = now + u64::from(window);
        let watching = self.timeline.is_some() && !self.watches.is_empty();
        // Per-watch removal tallies for this window: [dropped, masked].
        let mut removed = vec![[0u64; 2]; if watching { self.watches.len() } else { 0 }];
        for f in &self.faults {
            // `duty` selects the degraded-link keep rule (pure duty cycle)
            // over the seeded-hash drop rule.
            let (port, until, drop_percent, duty) = match &f.kind {
                FaultKind::LinkDown { port, until } => (*port, *until, 100u8, false),
                FaultKind::LinkFlaky {
                    port,
                    until,
                    drop_percent,
                } => (*port, *until, *drop_percent, false),
                FaultKind::LinkDegraded {
                    port,
                    until,
                    keep_percent,
                } => (*port, *until, 100 - (*keep_percent).min(100), true),
                _ => continue,
            };
            if f.at >= win_end || until <= now || port >= inputs.len() {
                continue;
            }
            let seed = f.seed;
            let from = f.at;
            let mut cut = 0u64;
            inputs[port].retain(|off, _| {
                let cycle = now + u64::from(off);
                if cycle < from || cycle >= until {
                    return true;
                }
                let keep = if duty {
                    cycle % 100 < u64::from(100 - drop_percent)
                } else {
                    u8::try_from(splitmix64(seed ^ cycle) % 100).expect("< 100") >= drop_percent
                };
                if !keep {
                    cut += 1;
                }
                keep
            });
            if port < 64 {
                mask |= 1 << port;
            }
            if cut > 0 && watching {
                // A full link-down is "masked" (total loss); flaky and
                // degraded removals are "dropped" (partial loss).
                let kind = usize::from(drop_percent == 100 && !duty);
                for (w, tally) in self.watches.iter().zip(removed.iter_mut()) {
                    if w.port == port {
                        tally[kind] += cut;
                    }
                }
            }
            // Log the activation window once per fault.
            if f.at >= now && f.at < win_end {
                lock(&self.log).push(FaultRecord {
                    agent: agent.to_owned(),
                    cycle: now,
                    description: if duty {
                        format!(
                            "injected degraded link on input port {port} \
                             (cycles {from}..{until}, {}% kept)",
                            100 - drop_percent
                        )
                    } else if drop_percent == 100 {
                        format!("injected link down on input port {port} (cycles {from}..{until})")
                    } else {
                        format!(
                            "injected flaky link on input port {port} \
                             (cycles {from}..{until}, {drop_percent}% loss)"
                        )
                    },
                });
            }
        }
        if watching {
            let tl = self.timeline.as_ref().expect("watching implies timeline");
            let mut tl = lock(tl);
            if tl.interval > 0 {
                let bucket = now - now % tl.interval;
                for (w, tally) in self.watches.iter().zip(removed.iter()) {
                    // First-execution semantics: a window replayed after a
                    // supervisor restore is already counted (and identical).
                    if now < w.counted_until.load(Ordering::Acquire) {
                        continue;
                    }
                    let delivered = inputs
                        .get(w.port)
                        .map_or(0, |win| win.iter().count() as u64);
                    let b = tl.buckets.entry(bucket).or_insert([0; 3]);
                    b[0] += delivered;
                    b[1] += tally[0];
                    b[2] += tally[1];
                    w.counted_until.fetch_max(win_end, Ordering::AcqRel);
                }
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_fires_once_across_clones() {
        let mut plan = FaultPlan::new(1);
        plan.panic_at(0usize, 100);
        let clone = plan.clone();
        let resolved = plan.resolve(&[("a", 1)]).unwrap();
        let af = resolved[0].as_ref().unwrap();
        let first = af.due_host_faults("a", 96, 8);
        assert_eq!(first.len(), 1);
        assert!(matches!(first[0], HostFaultAction::Panic(_)));
        // Re-resolving the *clone* still sees the fault as fired.
        let resolved2 = clone.resolve(&[("a", 1)]).unwrap();
        let af2 = resolved2[0].as_ref().unwrap();
        assert!(af2.due_host_faults("a", 96, 8).is_empty());
        assert_eq!(plan.records().len(), 1);
        assert_eq!(clone.records().len(), 1);
    }

    #[test]
    fn fault_not_due_does_not_fire() {
        let mut plan = FaultPlan::new(1);
        plan.stall_worker("x", 1000, 5);
        let resolved = plan.resolve(&[("x", 1)]).unwrap();
        let af = resolved[0].as_ref().unwrap();
        assert!(af.due_host_faults("x", 0, 8).is_empty());
        assert_eq!(af.due_host_faults("x", 996, 8).len(), 1);
    }

    #[test]
    fn unknown_name_is_topology_error() {
        let mut plan = FaultPlan::new(1);
        plan.panic_at("ghost", 0);
        assert!(matches!(
            plan.resolve(&[("a", 1), ("b", 1)]),
            Err(SimError::Topology { .. })
        ));
    }

    #[test]
    fn out_of_range_port_is_topology_error() {
        // The satellite fix: `link_down("a", 3, ..)` against a 1-input
        // agent used to inject nothing; now it is a setup error.
        let mut plan = FaultPlan::new(1);
        plan.link_down("a", 3, 0, 100);
        let err = plan.resolve(&[("a", 1)]).unwrap_err();
        assert!(err.to_string().contains("input port 3"), "{err}");
        assert!(err.to_string().contains("1 input port"), "{err}");

        let mut plan = FaultPlan::new(1);
        plan.watch_link("a", 2);
        let err = plan.resolve(&[("a", 2)]).unwrap_err();
        assert!(err.to_string().contains("watches"), "{err}");

        // In-range ports resolve fine.
        let mut plan = FaultPlan::new(1);
        plan.link_flaky("a", 1, 0, 100, 50).drop_channel("a", 0, 5);
        assert!(plan.resolve(&[("a", 2)]).is_ok());
    }

    #[test]
    fn link_down_masks_exact_cycle_range() {
        let mut plan = FaultPlan::new(7);
        plan.link_down(0usize, 0, 10, 14);
        let resolved = plan.resolve(&[("a", 1)]).unwrap();
        let af = resolved[0].as_ref().unwrap();
        // Window covering cycles 8..16 with tokens at every cycle.
        let mut w = TokenWindow::new(8);
        for off in 0..8 {
            w.push(off, u64::from(off)).unwrap();
        }
        let mut inputs = vec![w];
        let mask = af.mask_inputs("a", &mut inputs, 8, 8);
        assert_eq!(mask, 1);
        let alive: Vec<u32> = inputs[0].iter().map(|(o, _)| o).collect();
        // Cycles 10,11,12,13 (offsets 2..6) are dead.
        assert_eq!(alive, vec![0, 1, 6, 7]);
    }

    #[test]
    fn flaky_is_deterministic_per_seed() {
        let drop_pattern = |seed: u64| {
            let mut plan = FaultPlan::new(seed);
            plan.link_flaky(0usize, 0, 0, 64, 50);
            let resolved = plan.resolve(&[("a", 1)]).unwrap();
            let af = resolved[0].as_ref().unwrap();
            let mut w = TokenWindow::new(64);
            for off in 0..64 {
                w.push(off, off).unwrap();
            }
            let mut inputs = vec![w];
            af.mask_inputs("a", &mut inputs, 0, 64);
            inputs[0].iter().map(|(o, _)| o).collect::<Vec<u32>>()
        };
        let a = drop_pattern(42);
        assert_eq!(a, drop_pattern(42), "same seed, same losses");
        assert_ne!(a, drop_pattern(43), "different seed, different losses");
        assert!(!a.is_empty() && a.len() < 64, "50% loss drops some: {a:?}");
    }

    #[test]
    fn degraded_link_is_a_pure_duty_cycle() {
        let mut plan = FaultPlan::new(99);
        plan.link_degraded(0usize, 0, 0, 200, 40);
        let resolved = plan.resolve(&[("a", 1)]).unwrap();
        let af = resolved[0].as_ref().unwrap();
        let mut w = TokenWindow::new(200);
        for off in 0..200 {
            w.push(off, u64::from(off)).unwrap();
        }
        let mut inputs = vec![w];
        af.mask_inputs("a", &mut inputs, 0, 200);
        let alive: Vec<u32> = inputs[0].iter().map(|(o, _)| o).collect();
        // Exactly cycles with c % 100 < 40 survive — seed-independent.
        assert_eq!(alive.len(), 80);
        assert!(alive.iter().all(|&c| c % 100 < 40), "{alive:?}");
    }

    #[test]
    fn merged_plans_keep_per_entry_seeds() {
        let pattern = |plan: &FaultPlan| {
            let resolved = plan.resolve(&[("a", 1)]).unwrap();
            let af = resolved[0].as_ref().unwrap();
            let mut w = TokenWindow::new(64);
            for off in 0..64 {
                w.push(off, u64::from(off)).unwrap();
            }
            let mut inputs = vec![w];
            af.mask_inputs("a", &mut inputs, 0, 64);
            inputs[0].iter().map(|(o, _)| o).collect::<Vec<u32>>()
        };
        let mut scenario_plan = FaultPlan::new(42);
        scenario_plan.link_flaky("a", 0, 0, 64, 50);
        let expect = pattern(&scenario_plan);
        // Merging into a host plan with a different seed must not change
        // the scenario's loss pattern.
        let mut host_plan = FaultPlan::new(7);
        host_plan.merge_from(&scenario_plan);
        assert_eq!(pattern(&host_plan), expect);
    }

    #[test]
    fn timeline_counts_delivered_and_removed_tokens() {
        let mut plan = FaultPlan::new(3);
        plan.link_down(0usize, 0, 8, 16);
        plan.watch_link(0usize, 0);
        plan.record_timeline(16);
        plan.annotate(8, "link down");
        let resolved = plan.resolve(&[("a", 1)]).unwrap();
        let af = resolved[0].as_ref().unwrap();
        for now in (0..32).step_by(8) {
            let mut w = TokenWindow::new(8);
            for off in 0..8 {
                w.push(off, u64::from(off)).unwrap();
            }
            let mut inputs = vec![w];
            af.mask_inputs("a", &mut inputs, now, 8);
        }
        let tl = plan.recovery_timeline().unwrap();
        assert_eq!(tl.interval, 16);
        assert_eq!(tl.events, vec![(8, "link down".to_owned())]);
        // Bucket 0 covers windows at 0 (8 delivered) and 8 (8 masked);
        // bucket 16 covers windows at 16 and 24 (16 delivered).
        assert_eq!(tl.points.len(), 2);
        assert_eq!(tl.points[0].start, 0);
        assert_eq!(tl.points[0].delivered, 8);
        assert_eq!(tl.points[0].masked, 8);
        assert_eq!(tl.points[0].dropped, 0);
        assert_eq!(tl.points[1].start, 16);
        assert_eq!(tl.points[1].delivered, 16);
        assert_eq!(tl.points[1].masked, 0);

        // Replaying an already-counted window (supervisor retry) must not
        // double-count.
        let mut w = TokenWindow::new(8);
        for off in 0..8 {
            w.push(off, u64::from(off)).unwrap();
        }
        let mut inputs = vec![w];
        af.mask_inputs("a", &mut inputs, 16, 8);
        let tl2 = plan.recovery_timeline().unwrap();
        assert_eq!(tl2.points[1].delivered, 16, "replay not double-counted");
    }

    #[test]
    fn smoke_plans_are_benign_and_seed_dependent() {
        for seed in 0..8 {
            let plan = FaultPlan::smoke(seed, 4, 1024);
            assert!(!plan.is_empty());
            for f in &plan.faults {
                assert!(
                    !f.kind.is_one_shot(),
                    "smoke plans must not contain host faults"
                );
            }
        }
    }
}
