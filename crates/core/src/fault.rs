//! Deterministic, seeded fault injection.
//!
//! A multi-hour scale-out simulation meets every failure mode the host can
//! produce — a worker thread dies, a channel tears, a model wedges — and
//! the halt/teardown machinery that handles them is exactly the code that
//! is hardest to exercise. A [`FaultPlan`] makes those failures *schedulable
//! and replayable*: it is built from a seed (or explicit fault entries),
//! handed to [`Engine::set_fault_plan`](crate::Engine::set_fault_plan), and
//! fires the same faults at the same target cycles on every run.
//!
//! Two families of fault exist:
//!
//! * **Host-side** faults model the simulator breaking: an agent panicking
//!   mid-`advance`, a token channel dropping, a worker stalling long enough
//!   to trip a watchdog. These are *one-shot*: each entry carries a shared
//!   `fired` flag that survives engine rebuilds, so a supervisor retrying
//!   from a checkpoint with the same plan observes a **transient** fault —
//!   it fires once and never again. This is how the manager's
//!   retry-from-checkpoint path is tested end to end.
//! * **Target-side** faults model the simulated world breaking: a link goes
//!   down (all tokens in a cycle range become idle) or flaky (a seeded
//!   fraction of tokens is dropped). Tokens still flow one per cycle — only
//!   payloads disappear — so the simulation stays cycle-exact and the fault
//!   is part of the deterministic target behaviour: replaying from a
//!   checkpoint reproduces it bit-for-bit.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::{SimError, SimResult};
use crate::rng::SimRng;
use crate::token::TokenWindow;

/// Which agent a fault applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultTarget {
    /// The agent at this registration index.
    Index(usize),
    /// The agent with this name (resolved when the run starts).
    Name(String),
}

impl From<usize> for FaultTarget {
    fn from(i: usize) -> Self {
        FaultTarget::Index(i)
    }
}

impl From<&str> for FaultTarget {
    fn from(n: &str) -> Self {
        FaultTarget::Name(n.to_owned())
    }
}

/// What kind of failure to inject.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Host fault: the agent panics inside `advance` (one-shot).
    AgentPanic,
    /// Host fault: the agent's input channel `port` is torn down — in-flight
    /// windows are discarded and both endpoints observe closure (one-shot).
    ChannelDrop {
        /// Input port whose link is dropped.
        port: usize,
    },
    /// Host fault: the worker stepping this agent sleeps for `millis`
    /// milliseconds before the step — watchdog food (one-shot).
    WorkerStall {
        /// How long the worker sleeps.
        millis: u64,
    },
    /// Target fault: every token arriving on input `port` in target cycles
    /// `[at, until)` is delivered dead (idle). Replays deterministically.
    LinkDown {
        /// Input port whose link is down.
        port: usize,
        /// First cycle at which the link works again.
        until: u64,
    },
    /// Target fault: each token arriving on input `port` in `[at, until)`
    /// is dropped with probability `drop_percent`/100, decided by a pure
    /// hash of (seed, cycle), so the loss pattern is identical on replay.
    LinkFlaky {
        /// Input port whose link is flaky.
        port: usize,
        /// First cycle at which the link is reliable again.
        until: u64,
        /// Percentage of tokens dropped, 0-100.
        drop_percent: u8,
    },
}

impl FaultKind {
    fn is_one_shot(&self) -> bool {
        matches!(
            self,
            FaultKind::AgentPanic | FaultKind::ChannelDrop { .. } | FaultKind::WorkerStall { .. }
        )
    }
}

/// Provenance of a fault that actually fired, for failure reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRecord {
    /// Name of the agent the fault hit.
    pub agent: String,
    /// Target cycle (window start) at which it fired.
    pub cycle: u64,
    /// Human-readable description of the fault.
    pub description: String,
}

#[derive(Debug, Clone)]
struct FaultEntry {
    target: FaultTarget,
    at: u64,
    kind: FaultKind,
    /// Shared across clones of the plan so a one-shot fault stays fired
    /// when a supervisor rebuilds the engine and retries.
    fired: Arc<AtomicBool>,
}

/// A schedule of injectable faults, replayable across runs.
///
/// Cloning a plan shares its fired-flags and provenance log, so handing the
/// *same* plan (or a clone) to a rebuilt engine preserves one-shot
/// semantics — the basis of transient-fault recovery testing.
///
/// # Examples
///
/// ```
/// use firesim_core::FaultPlan;
///
/// let mut plan = FaultPlan::new(0xF1BE);
/// plan.panic_at("pinger", 250_000);
/// plan.link_down("echo", 0, 100_000, 200_000);
/// assert_eq!(plan.len(), 2);
///
/// // Clones share fired-state and the provenance log: a supervisor
/// // handing a clone to a rebuilt engine keeps one-shot faults one-shot.
/// let replay = plan.clone();
/// assert_eq!(replay.len(), plan.len());
/// assert!(plan.records().is_empty(), "nothing fired yet");
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<FaultEntry>,
    log: Arc<Mutex<Vec<FaultRecord>>>,
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl FaultPlan {
    /// Creates an empty plan. The seed drives flaky-link token selection.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
            log: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Schedules `kind` against `target` at target cycle `at`.
    pub fn inject(
        &mut self,
        target: impl Into<FaultTarget>,
        at: u64,
        kind: FaultKind,
    ) -> &mut Self {
        self.faults.push(FaultEntry {
            target: target.into(),
            at,
            kind,
            fired: Arc::new(AtomicBool::new(false)),
        });
        self
    }

    /// Schedules an agent panic (one-shot host fault).
    pub fn panic_at(&mut self, target: impl Into<FaultTarget>, at: u64) -> &mut Self {
        self.inject(target, at, FaultKind::AgentPanic)
    }

    /// Schedules a channel drop on an input port (one-shot host fault).
    pub fn drop_channel(
        &mut self,
        target: impl Into<FaultTarget>,
        port: usize,
        at: u64,
    ) -> &mut Self {
        self.inject(target, at, FaultKind::ChannelDrop { port })
    }

    /// Schedules a worker stall (one-shot host fault).
    pub fn stall_worker(
        &mut self,
        target: impl Into<FaultTarget>,
        at: u64,
        millis: u64,
    ) -> &mut Self {
        self.inject(target, at, FaultKind::WorkerStall { millis })
    }

    /// Takes an input link down for target cycles `[from, until)`.
    pub fn link_down(
        &mut self,
        target: impl Into<FaultTarget>,
        port: usize,
        from: u64,
        until: u64,
    ) -> &mut Self {
        self.inject(target, from, FaultKind::LinkDown { port, until })
    }

    /// Makes an input link flaky for target cycles `[from, until)`.
    pub fn link_flaky(
        &mut self,
        target: impl Into<FaultTarget>,
        port: usize,
        from: u64,
        until: u64,
        drop_percent: u8,
    ) -> &mut Self {
        self.inject(
            target,
            from,
            FaultKind::LinkFlaky {
                port,
                until,
                drop_percent,
            },
        )
    }

    /// Derives a benign smoke-test plan from a seed: one or two *target-side*
    /// link faults against pseudo-random agents in `[0, agents)`, within the
    /// first `horizon` cycles. Host-side faults are deliberately excluded so
    /// a smoke run completes; the point is exercising the fault-delivery
    /// machinery under different seeds.
    pub fn smoke(seed: u64, agents: usize, horizon: u64) -> Self {
        let mut plan = FaultPlan::new(seed);
        if agents == 0 || horizon < 2 {
            return plan;
        }
        let mut rng = SimRng::seed_from(seed);
        let n = 1 + (rng.next_u64() % 2) as usize;
        for _ in 0..n {
            let agent = rng.next_below(agents as u64) as usize;
            let from = rng.next_below(horizon / 2);
            let until = from + 1 + rng.next_below(horizon - from);
            if rng.next_bool(0.5) {
                plan.link_down(agent, 0, from, until);
            } else {
                let pct = 10 + (rng.next_below(90)) as u8;
                plan.link_flaky(agent, 0, from, until, pct);
            }
        }
        plan
    }

    /// Faults that have fired so far, in firing order (provenance for
    /// failure reports). Shared across clones of the plan.
    pub fn records(&self) -> Vec<FaultRecord> {
        lock(&self.log).clone()
    }

    /// Resolves fault targets against the engine's agent names, grouping
    /// entries per agent index. Called by the engine at run start.
    pub(crate) fn resolve(&self, names: &[&str]) -> SimResult<Vec<Option<AgentFaults>>> {
        let mut per_agent: Vec<Vec<ResolvedFault>> = (0..names.len()).map(|_| Vec::new()).collect();
        for entry in &self.faults {
            let idx = match &entry.target {
                FaultTarget::Index(i) => {
                    if *i >= names.len() {
                        return Err(SimError::topology(format!(
                            "fault plan targets agent index {i}, engine has {} agents",
                            names.len()
                        )));
                    }
                    *i
                }
                FaultTarget::Name(n) => names.iter().position(|m| m == n).ok_or_else(|| {
                    SimError::topology(format!("fault plan targets unknown agent {n:?}"))
                })?,
            };
            per_agent[idx].push(ResolvedFault {
                at: entry.at,
                kind: entry.kind.clone(),
                fired: Arc::clone(&entry.fired),
            });
        }
        Ok(per_agent
            .into_iter()
            .map(|faults| {
                if faults.is_empty() {
                    None
                } else {
                    Some(AgentFaults {
                        faults,
                        seed: self.seed,
                        log: Arc::clone(&self.log),
                    })
                }
            })
            .collect())
    }
}

#[derive(Debug)]
pub(crate) struct ResolvedFault {
    at: u64,
    kind: FaultKind,
    fired: Arc<AtomicBool>,
}

/// Pure hash used for flaky-link drop decisions: depends only on the plan
/// seed and the absolute target cycle, so it replays identically.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// What a host-side fault asks the stepping code to do, in check order.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum HostFaultAction {
    /// Sleep this many milliseconds before the step.
    Stall(u64),
    /// Tear down the input channel at this port.
    DropChannel(usize),
    /// Panic inside `advance` with this message.
    Panic(String),
}

/// The faults resolved against one agent, consulted by `step_agent`.
#[derive(Debug)]
pub(crate) struct AgentFaults {
    faults: Vec<ResolvedFault>,
    seed: u64,
    log: Arc<Mutex<Vec<FaultRecord>>>,
}

impl AgentFaults {
    /// Returns the one-shot host faults due in the window starting at
    /// `now`, marking them fired and logging provenance. A fault whose
    /// cycle has already passed (e.g. after a restore that skipped it)
    /// fires in the first window that reaches it.
    pub(crate) fn due_host_faults(
        &self,
        agent: &str,
        now: u64,
        window: u32,
    ) -> Vec<HostFaultAction> {
        let mut actions = Vec::new();
        for f in &self.faults {
            if !f.kind.is_one_shot() || f.at >= now + u64::from(window) {
                continue;
            }
            if f.fired.swap(true, Ordering::AcqRel) {
                continue;
            }
            let (action, desc) = match &f.kind {
                FaultKind::WorkerStall { millis } => (
                    HostFaultAction::Stall(*millis),
                    format!("injected worker stall ({millis} ms)"),
                ),
                FaultKind::ChannelDrop { port } => (
                    HostFaultAction::DropChannel(*port),
                    format!("injected channel drop on input port {port}"),
                ),
                FaultKind::AgentPanic => {
                    let msg = format!("injected panic (scheduled at cycle {})", f.at);
                    (HostFaultAction::Panic(msg.clone()), msg)
                }
                _ => unreachable!("one-shot kinds only"),
            };
            lock(&self.log).push(FaultRecord {
                agent: agent.to_owned(),
                cycle: now,
                description: desc,
            });
            actions.push(action);
        }
        // Stalls first, then drops, then panics: a stall must delay the
        // step before any teardown makes the step fail.
        actions.sort_by_key(|a| match a {
            HostFaultAction::Stall(_) => 0,
            HostFaultAction::DropChannel(_) => 1,
            HostFaultAction::Panic(_) => 2,
        });
        actions
    }

    /// Applies target-side link faults to the received input windows for
    /// the window starting at `now`. Returns a bitmask of input ports that
    /// had at least one cycle masked (ports ≥ 64 are applied but not
    /// reported in the mask).
    pub(crate) fn mask_inputs<T>(
        &self,
        agent: &str,
        inputs: &mut [TokenWindow<T>],
        now: u64,
        window: u32,
    ) -> u64 {
        let mut mask = 0u64;
        let win_end = now + u64::from(window);
        for f in &self.faults {
            let (port, until, drop_percent) = match &f.kind {
                FaultKind::LinkDown { port, until } => (*port, *until, 100u8),
                FaultKind::LinkFlaky {
                    port,
                    until,
                    drop_percent,
                } => (*port, *until, *drop_percent),
                _ => continue,
            };
            if f.at >= win_end || until <= now || port >= inputs.len() {
                continue;
            }
            let seed = self.seed;
            let from = f.at;
            inputs[port].retain(|off, _| {
                let cycle = now + u64::from(off);
                if cycle < from || cycle >= until {
                    return true;
                }
                u8::try_from(splitmix64(seed ^ cycle) % 100).expect("< 100") >= drop_percent
            });
            if port < 64 {
                mask |= 1 << port;
            }
            // Log the activation window once per fault.
            if f.at >= now && f.at < win_end {
                lock(&self.log).push(FaultRecord {
                    agent: agent.to_owned(),
                    cycle: now,
                    description: if drop_percent == 100 {
                        format!("injected link down on input port {port} (cycles {from}..{until})")
                    } else {
                        format!(
                            "injected flaky link on input port {port} \
                             (cycles {from}..{until}, {drop_percent}% loss)"
                        )
                    },
                });
            }
        }
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shot_fires_once_across_clones() {
        let mut plan = FaultPlan::new(1);
        plan.panic_at(0usize, 100);
        let clone = plan.clone();
        let resolved = plan.resolve(&["a"]).unwrap();
        let af = resolved[0].as_ref().unwrap();
        let first = af.due_host_faults("a", 96, 8);
        assert_eq!(first.len(), 1);
        assert!(matches!(first[0], HostFaultAction::Panic(_)));
        // Re-resolving the *clone* still sees the fault as fired.
        let resolved2 = clone.resolve(&["a"]).unwrap();
        let af2 = resolved2[0].as_ref().unwrap();
        assert!(af2.due_host_faults("a", 96, 8).is_empty());
        assert_eq!(plan.records().len(), 1);
        assert_eq!(clone.records().len(), 1);
    }

    #[test]
    fn fault_not_due_does_not_fire() {
        let mut plan = FaultPlan::new(1);
        plan.stall_worker("x", 1000, 5);
        let resolved = plan.resolve(&["x"]).unwrap();
        let af = resolved[0].as_ref().unwrap();
        assert!(af.due_host_faults("x", 0, 8).is_empty());
        assert_eq!(af.due_host_faults("x", 996, 8).len(), 1);
    }

    #[test]
    fn unknown_name_is_topology_error() {
        let mut plan = FaultPlan::new(1);
        plan.panic_at("ghost", 0);
        assert!(matches!(
            plan.resolve(&["a", "b"]),
            Err(SimError::Topology { .. })
        ));
    }

    #[test]
    fn link_down_masks_exact_cycle_range() {
        let mut plan = FaultPlan::new(7);
        plan.link_down(0usize, 0, 10, 14);
        let resolved = plan.resolve(&["a"]).unwrap();
        let af = resolved[0].as_ref().unwrap();
        // Window covering cycles 8..16 with tokens at every cycle.
        let mut w = TokenWindow::new(8);
        for off in 0..8 {
            w.push(off, u64::from(off)).unwrap();
        }
        let mut inputs = vec![w];
        let mask = af.mask_inputs("a", &mut inputs, 8, 8);
        assert_eq!(mask, 1);
        let alive: Vec<u32> = inputs[0].iter().map(|(o, _)| o).collect();
        // Cycles 10,11,12,13 (offsets 2..6) are dead.
        assert_eq!(alive, vec![0, 1, 6, 7]);
    }

    #[test]
    fn flaky_is_deterministic_per_seed() {
        let drop_pattern = |seed: u64| {
            let mut plan = FaultPlan::new(seed);
            plan.link_flaky(0usize, 0, 0, 64, 50);
            let resolved = plan.resolve(&["a"]).unwrap();
            let af = resolved[0].as_ref().unwrap();
            let mut w = TokenWindow::new(64);
            for off in 0..64 {
                w.push(off, off).unwrap();
            }
            let mut inputs = vec![w];
            af.mask_inputs("a", &mut inputs, 0, 64);
            inputs[0].iter().map(|(o, _)| o).collect::<Vec<u32>>()
        };
        let a = drop_pattern(42);
        assert_eq!(a, drop_pattern(42), "same seed, same losses");
        assert_ne!(a, drop_pattern(43), "different seed, different losses");
        assert!(!a.is_empty() && a.len() < 64, "50% loss drops some: {a:?}");
    }

    #[test]
    fn smoke_plans_are_benign_and_seed_dependent() {
        for seed in 0..8 {
            let plan = FaultPlan::smoke(seed, 4, 1024);
            assert!(!plan.is_empty());
            for f in &plan.faults {
                assert!(
                    !f.kind.is_one_shot(),
                    "smoke plans must not contain host faults"
                );
            }
        }
    }
}
