//! Latency-modeling token channels.
//!
//! A simulated link of latency `L` cycles always has exactly `L` tokens in
//! flight. With windows of `W` cycles (`L % W == 0`), that means `L / W`
//! windows are in flight at any moment. A [`link`] is created pre-seeded
//! with `L / W` *empty* windows, exactly like the paper's description of
//! simulation start-up ("each input token queue initialized with l tokens").
//!
//! The channel is a bounded MPSC queue from crossbeam under the hood, but
//! the token-counting discipline means the *simulation result* never depends
//! on host-side timing: a receiver simply blocks until the window for its
//! next target cycle range arrives.

use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError};

use crate::error::{SimError, SimResult};
use crate::time::Cycle;
use crate::token::TokenWindow;

/// Sending half of a simulation link.
#[derive(Debug, Clone)]
pub struct LinkSender<T> {
    tx: Sender<TokenWindow<T>>,
    window: u32,
    latency: Cycle,
}

/// Receiving half of a simulation link.
#[derive(Debug)]
pub struct LinkReceiver<T> {
    rx: Receiver<TokenWindow<T>>,
    window: u32,
    latency: Cycle,
}

/// Creates a simulation link with the given `latency`, exchanging windows of
/// `window` cycles. The link is seeded with `latency / window` empty windows
/// so both endpoints can begin executing immediately.
///
/// # Errors
///
/// Returns [`SimError::BadLatency`] when `latency` is zero or not a multiple
/// of `window`.
///
/// # Examples
///
/// ```
/// use firesim_core::{link, TokenWindow, Cycle};
///
/// let (tx, rx) = link::<u8>(4, Cycle::new(8)).unwrap();
/// // Two seed windows are already in flight.
/// assert_eq!(rx.try_recv().unwrap().unwrap().len(), 4);
/// assert_eq!(rx.try_recv().unwrap().unwrap().len(), 4);
/// assert!(rx.try_recv().unwrap().is_none());
/// let mut w = TokenWindow::new(4);
/// w.push(1, 0xab).unwrap();
/// tx.send(w).unwrap();
/// assert_eq!(rx.recv().unwrap().get(1), Some(&0xab));
/// ```
pub fn link<T>(window: u32, latency: Cycle) -> SimResult<(LinkSender<T>, LinkReceiver<T>)> {
    if window == 0 || latency == Cycle::ZERO || !latency.is_multiple_of(Cycle::new(window as u64)) {
        return Err(SimError::BadLatency {
            latency: latency.as_u64(),
            window,
        });
    }
    let in_flight = (latency.as_u64() / window as u64) as usize;
    // One extra slot so a producer finishing its round never blocks on a
    // consumer that has not yet started its round.
    let (tx, rx) = bounded(in_flight + 1);
    for _ in 0..in_flight {
        tx.send(TokenWindow::new(window))
            .expect("seeding a freshly created channel cannot fail");
    }
    Ok((
        LinkSender {
            tx,
            window,
            latency,
        },
        LinkReceiver {
            rx,
            window,
            latency,
        },
    ))
}

impl<T> LinkSender<T> {
    /// The window length (cycles) this link exchanges.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// The modeled link latency.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Sends one window of tokens.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WindowMismatch`] if the window length is wrong,
    /// or [`SimError::ChannelClosed`] if the receiver has been dropped.
    pub fn send(&self, w: TokenWindow<T>) -> SimResult<()> {
        if w.len() != self.window {
            return Err(SimError::WindowMismatch {
                expected: self.window,
                actual: w.len(),
            });
        }
        self.tx.send(w).map_err(|_| SimError::ChannelClosed {
            agent: "<receiver>".to_owned(),
        })
    }

    /// Sends one window, waiting at most `timeout` for queue space.
    ///
    /// Returns the window back as `Ok(Some(w))` on timeout so the caller can
    /// retry or abort.
    ///
    /// # Errors
    ///
    /// As for [`LinkSender::send`].
    pub fn send_timeout(
        &self,
        w: TokenWindow<T>,
        timeout: std::time::Duration,
    ) -> SimResult<Option<TokenWindow<T>>> {
        use crossbeam::channel::SendTimeoutError;
        if w.len() != self.window {
            return Err(SimError::WindowMismatch {
                expected: self.window,
                actual: w.len(),
            });
        }
        match self.tx.send_timeout(w, timeout) {
            Ok(()) => Ok(None),
            Err(SendTimeoutError::Timeout(w)) => Ok(Some(w)),
            Err(SendTimeoutError::Disconnected(_)) => Err(SimError::ChannelClosed {
                agent: "<receiver>".to_owned(),
            }),
        }
    }
}

impl<T> LinkReceiver<T> {
    /// The window length (cycles) this link exchanges.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// The modeled link latency.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Receives the next window, blocking until the peer produces it.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ChannelClosed`] if the sender has been dropped.
    pub fn recv(&self) -> SimResult<TokenWindow<T>> {
        self.rx.recv().map_err(|_| SimError::ChannelClosed {
            agent: "<sender>".to_owned(),
        })
    }

    /// Receives the next window, waiting at most `timeout`.
    ///
    /// Returns `Ok(None)` on timeout.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ChannelClosed`] if the sender has been dropped.
    pub fn recv_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> SimResult<Option<TokenWindow<T>>> {
        use crossbeam::channel::RecvTimeoutError;
        match self.rx.recv_timeout(timeout) {
            Ok(w) => Ok(Some(w)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(SimError::ChannelClosed {
                agent: "<sender>".to_owned(),
            }),
        }
    }

    /// Receives the next window if one is ready.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ChannelClosed`] if the sender has been dropped.
    pub fn try_recv(&self) -> SimResult<Option<TokenWindow<T>>> {
        match self.rx.try_recv() {
            Ok(w) => Ok(Some(w)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(SimError::ChannelClosed {
                agent: "<sender>".to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_seeds_latency_tokens() {
        let (_tx, rx) = link::<u32>(100, Cycle::new(300)).unwrap();
        let mut seeded = 0;
        while let Some(w) = rx.try_recv().unwrap() {
            assert_eq!(w.len(), 100);
            assert!(w.is_empty());
            seeded += 1;
        }
        assert_eq!(seeded, 3);
    }

    #[test]
    fn rejects_bad_latency() {
        assert!(matches!(
            link::<u8>(100, Cycle::new(150)),
            Err(SimError::BadLatency { .. })
        ));
        assert!(matches!(
            link::<u8>(100, Cycle::ZERO),
            Err(SimError::BadLatency { .. })
        ));
        assert!(matches!(
            link::<u8>(0, Cycle::new(100)),
            Err(SimError::BadLatency { .. })
        ));
    }

    #[test]
    fn send_rejects_wrong_window() {
        let (tx, _rx) = link::<u8>(8, Cycle::new(8)).unwrap();
        let w = TokenWindow::new(4);
        assert!(matches!(
            tx.send(w),
            Err(SimError::WindowMismatch {
                expected: 8,
                actual: 4
            })
        ));
    }

    #[test]
    fn payloads_cross_in_order() {
        let (tx, rx) = link::<u64>(4, Cycle::new(4)).unwrap();
        let _seed = rx.recv().unwrap();
        // The channel is bounded (1 window in flight + 1 slot), so interleave
        // sends and receives the way an engine round does.
        for round in 0..10u64 {
            let mut w = TokenWindow::new(4);
            w.push(0, round).unwrap();
            tx.send(w).unwrap();
            let got = rx.recv().unwrap();
            assert_eq!(got.get(0), Some(&round));
        }
    }

    #[test]
    fn closed_channel_errors() {
        let (tx, rx) = link::<u8>(4, Cycle::new(4)).unwrap();
        drop(rx);
        assert!(matches!(
            tx.send(TokenWindow::new(4)),
            Err(SimError::ChannelClosed { .. })
        ));

        let (tx, rx) = link::<u8>(4, Cycle::new(4)).unwrap();
        drop(tx);
        let _seed = rx.recv().unwrap(); // the seed window is still there
        assert!(matches!(rx.recv(), Err(SimError::ChannelClosed { .. })));
    }
}
