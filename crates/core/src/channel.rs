//! Latency-modeling token channels.
//!
//! A simulated link of latency `L` cycles always has exactly `L` tokens in
//! flight. With windows of `W` cycles (`L % W == 0`), that means `L / W`
//! windows are in flight at any moment. A [`link`] is created pre-seeded
//! with `L / W` *empty* windows, exactly like the paper's description of
//! simulation start-up ("each input token queue initialized with l tokens").
//!
//! The channel is a bounded SPSC queue built on `std::sync` primitives, but
//! the token-counting discipline means the *simulation result* never depends
//! on host-side timing: a receiver simply blocks until the window for its
//! next target cycle range arrives.
//!
//! # Window recycling
//!
//! Each link carries a pool of *spare* buffers alongside the data queue.
//! After a receiver consumes a window it can return the (cleared) buffer
//! with [`LinkReceiver::recycle`]; the sender then obtains a
//! capacity-retaining buffer for its next window via
//! [`LinkSender::take_buffer`] instead of allocating. Once the pool is
//! warm, a steady-state simulation round performs no heap allocation on
//! the token path.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use crate::error::{SimError, SimResult};
use crate::time::Cycle;
use crate::token::TokenWindow;

/// How long a halt-aware blocking operation sleeps between halt checks.
/// Data arrival wakes the waiter immediately via condvar notification;
/// this bound only limits how stale a halt request can go unnoticed.
const HALT_POLL: Duration = Duration::from_micros(500);

/// How many times a halt-aware blocking operation yields the CPU before
/// parking on the condvar. On an oversubscribed host (more workers than
/// cores) the peer usually only needs a scheduling quantum to produce or
/// consume a window; a `yield_now` hands it one at a fraction of the cost
/// of a futex sleep/wake round trip.
const SPIN_YIELDS: u32 = 3;

#[derive(Debug)]
struct State<T> {
    queue: VecDeque<TokenWindow<T>>,
    /// Consumed windows returned by the receiver, ready for reuse.
    spares: Vec<TokenWindow<T>>,
    cap: usize,
    tx_alive: bool,
    rx_alive: bool,
}

#[derive(Debug)]
struct Shared<T> {
    state: Mutex<State<T>>,
    /// Signaled when a window is enqueued or the sender goes away.
    recv_cv: Condvar,
    /// Signaled when queue space frees up or the receiver goes away.
    send_cv: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Sending half of a simulation link.
#[derive(Debug)]
pub struct LinkSender<T> {
    shared: Arc<Shared<T>>,
    window: u32,
    latency: Cycle,
}

/// Receiving half of a simulation link.
#[derive(Debug)]
pub struct LinkReceiver<T> {
    shared: Arc<Shared<T>>,
    window: u32,
    latency: Cycle,
}

/// Creates a simulation link with the given `latency`, exchanging windows of
/// `window` cycles. The link is seeded with `latency / window` empty windows
/// so both endpoints can begin executing immediately.
///
/// # Errors
///
/// Returns [`SimError::BadLatency`] when `latency` is zero or not a multiple
/// of `window`.
///
/// # Examples
///
/// ```
/// use firesim_core::{link, TokenWindow, Cycle};
///
/// let (tx, rx) = link::<u8>(4, Cycle::new(8)).unwrap();
/// // Two seed windows are already in flight.
/// assert_eq!(rx.try_recv().unwrap().unwrap().len(), 4);
/// assert_eq!(rx.try_recv().unwrap().unwrap().len(), 4);
/// assert!(rx.try_recv().unwrap().is_none());
/// let mut w = TokenWindow::new(4);
/// w.push(1, 0xab).unwrap();
/// tx.send(w).unwrap();
/// assert_eq!(rx.recv().unwrap().get(1), Some(&0xab));
/// ```
pub fn link<T>(window: u32, latency: Cycle) -> SimResult<(LinkSender<T>, LinkReceiver<T>)> {
    if window == 0 || latency == Cycle::ZERO || !latency.is_multiple_of(Cycle::new(window as u64)) {
        return Err(SimError::BadLatency {
            latency: latency.as_u64(),
            window,
        });
    }
    let in_flight = (latency.as_u64() / window as u64) as usize;
    // One extra slot so a producer finishing its round never blocks on a
    // consumer that has not yet started its round.
    let cap = in_flight + 1;
    let mut queue = VecDeque::with_capacity(cap);
    for _ in 0..in_flight {
        queue.push_back(TokenWindow::new(window));
    }
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue,
            spares: Vec::with_capacity(cap),
            cap,
            tx_alive: true,
            rx_alive: true,
        }),
        recv_cv: Condvar::new(),
        send_cv: Condvar::new(),
    });
    Ok((
        LinkSender {
            shared: Arc::clone(&shared),
            window,
            latency,
        },
        LinkReceiver {
            shared,
            window,
            latency,
        },
    ))
}

impl<T> LinkSender<T> {
    /// The window length (cycles) this link exchanges.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// The modeled link latency.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    fn check_window(&self, w: &TokenWindow<T>) -> SimResult<()> {
        if w.len() != self.window {
            return Err(SimError::WindowMismatch {
                expected: self.window,
                actual: w.len(),
            });
        }
        Ok(())
    }

    /// Takes a recycled buffer from the link's spare pool, or a fresh
    /// empty window when none is available.
    ///
    /// The returned window is empty, has `len() == self.window()`, and —
    /// when it came from the pool — retains the heap capacity of its
    /// previous life, so refilling it does not allocate.
    pub fn take_buffer(&self) -> TokenWindow<T> {
        let mut st = self.shared.lock();
        match st.spares.pop() {
            Some(mut w) => {
                w.reset(self.window);
                w
            }
            None => TokenWindow::new(self.window),
        }
    }

    /// Sends one window of tokens, blocking while the link is full.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WindowMismatch`] if the window length is wrong,
    /// or [`SimError::ChannelClosed`] if the receiver has been dropped.
    pub fn send(&self, w: TokenWindow<T>) -> SimResult<()> {
        self.check_window(&w)?;
        let mut st = self.shared.lock();
        while st.queue.len() >= st.cap && st.rx_alive {
            st = self
                .shared
                .send_cv
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
        if !st.rx_alive {
            return Err(SimError::ChannelClosed {
                agent: "<receiver>".to_owned(),
            });
        }
        st.queue.push_back(w);
        drop(st);
        self.shared.recv_cv.notify_one();
        Ok(())
    }

    /// Sends one window, waiting at most `timeout` for queue space.
    ///
    /// Returns the window back as `Ok(Some(w))` on timeout so the caller can
    /// retry or abort.
    ///
    /// # Errors
    ///
    /// As for [`LinkSender::send`].
    pub fn send_timeout(
        &self,
        w: TokenWindow<T>,
        timeout: Duration,
    ) -> SimResult<Option<TokenWindow<T>>> {
        self.check_window(&w)?;
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.shared.lock();
        while st.queue.len() >= st.cap && st.rx_alive {
            let now = std::time::Instant::now();
            if now >= deadline {
                return Ok(Some(w));
            }
            let (guard, _) = self
                .shared
                .send_cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
        if !st.rx_alive {
            return Err(SimError::ChannelClosed {
                agent: "<receiver>".to_owned(),
            });
        }
        st.queue.push_back(w);
        drop(st);
        self.shared.recv_cv.notify_one();
        Ok(None)
    }

    /// Sends one window, blocking until space frees up or `halt` is set.
    ///
    /// Returns the window back as `Ok(Some(w))` when halted before space
    /// became available. Halt detection lags at most ~500µs; data-side
    /// wakeups are immediate.
    ///
    /// # Errors
    ///
    /// As for [`LinkSender::send`].
    pub fn send_or_halt(
        &self,
        w: TokenWindow<T>,
        halt: &AtomicBool,
    ) -> SimResult<Option<TokenWindow<T>>> {
        self.check_window(&w)?;
        let mut spins = 0u32;
        let mut st = self.shared.lock();
        while st.queue.len() >= st.cap && st.rx_alive {
            if halt.load(Ordering::Acquire) {
                return Ok(Some(w));
            }
            if spins < SPIN_YIELDS {
                spins += 1;
                drop(st);
                std::thread::yield_now();
                st = self.shared.lock();
                continue;
            }
            let (guard, _) = self
                .shared
                .send_cv
                .wait_timeout(st, HALT_POLL)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
        if !st.rx_alive {
            return Err(SimError::ChannelClosed {
                agent: "<receiver>".to_owned(),
            });
        }
        st.queue.push_back(w);
        drop(st);
        self.shared.recv_cv.notify_one();
        Ok(None)
    }
}

impl<T> Drop for LinkSender<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.tx_alive = false;
        drop(st);
        self.shared.recv_cv.notify_all();
    }
}

impl<T> LinkReceiver<T> {
    /// The window length (cycles) this link exchanges.
    pub fn window(&self) -> u32 {
        self.window
    }

    /// The modeled link latency.
    pub fn latency(&self) -> Cycle {
        self.latency
    }

    /// Number of windows currently in flight (produced but not yet
    /// consumed). When both endpoints are quiescent at a window boundary,
    /// this is exactly `latency / window` — the paper's token-transport
    /// invariant ("a latency-*l* link always has *l* tokens in flight").
    pub fn in_flight_windows(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Returns a consumed window's buffer to the link's spare pool so the
    /// sender can reuse its heap capacity.
    ///
    /// The payloads still in `w` are dropped here. Excess buffers beyond
    /// the link's in-flight bound are discarded, so the pool cannot grow
    /// without limit.
    pub fn recycle(&self, mut w: TokenWindow<T>) {
        w.clear();
        let mut st = self.shared.lock();
        if st.spares.len() < st.cap {
            st.spares.push(w);
        }
    }

    /// Receives the next window, blocking until the peer produces it.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ChannelClosed`] if the sender has been dropped.
    pub fn recv(&self) -> SimResult<TokenWindow<T>> {
        let mut st = self.shared.lock();
        loop {
            if let Some(w) = st.queue.pop_front() {
                drop(st);
                self.shared.send_cv.notify_one();
                return Ok(w);
            }
            if !st.tx_alive {
                return Err(SimError::ChannelClosed {
                    agent: "<sender>".to_owned(),
                });
            }
            st = self
                .shared
                .recv_cv
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Receives the next window, waiting at most `timeout`.
    ///
    /// Returns `Ok(None)` on timeout.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ChannelClosed`] if the sender has been dropped.
    pub fn recv_timeout(&self, timeout: Duration) -> SimResult<Option<TokenWindow<T>>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            if let Some(w) = st.queue.pop_front() {
                drop(st);
                self.shared.send_cv.notify_one();
                return Ok(Some(w));
            }
            if !st.tx_alive {
                return Err(SimError::ChannelClosed {
                    agent: "<sender>".to_owned(),
                });
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            let (guard, _) = self
                .shared
                .recv_cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Receives the next window, blocking until one arrives or `halt` is
    /// set.
    ///
    /// Returns `Ok(None)` when halted before a window arrived. Halt
    /// detection lags at most ~500µs; data-side wakeups are immediate.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ChannelClosed`] if the sender has been dropped.
    pub fn recv_or_halt(&self, halt: &AtomicBool) -> SimResult<Option<TokenWindow<T>>> {
        let mut spins = 0u32;
        let mut st = self.shared.lock();
        loop {
            if let Some(w) = st.queue.pop_front() {
                drop(st);
                self.shared.send_cv.notify_one();
                return Ok(Some(w));
            }
            if !st.tx_alive {
                return Err(SimError::ChannelClosed {
                    agent: "<sender>".to_owned(),
                });
            }
            if halt.load(Ordering::Acquire) {
                return Ok(None);
            }
            if spins < SPIN_YIELDS {
                spins += 1;
                drop(st);
                std::thread::yield_now();
                st = self.shared.lock();
                continue;
            }
            let (guard, _) = self
                .shared
                .recv_cv
                .wait_timeout(st, HALT_POLL)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Clones the queued (in-flight) windows, oldest first, without
    /// consuming them. Checkpointing primitive: between engine rounds the
    /// queue holds exactly `latency / window` windows, so this captures the
    /// link's complete in-flight state.
    pub(crate) fn queue_snapshot(&self) -> Vec<TokenWindow<T>>
    where
        T: Clone,
    {
        let st = self.shared.lock();
        st.queue.iter().cloned().collect()
    }

    /// Replaces the queued windows with `windows` (oldest first). Restore
    /// primitive; the spare pool is left alone. Also brings the link back
    /// up if it was torn down by [`LinkReceiver::poison`]: both endpoints
    /// are still owned by the engine's agent slots, so after a restore the
    /// link is whole again — this is what lets a supervisor retry past an
    /// injected channel-drop fault.
    pub(crate) fn replace_queue(&self, windows: Vec<TokenWindow<T>>) {
        let mut st = self.shared.lock();
        st.queue.clear();
        st.queue.extend(windows);
        st.tx_alive = true;
        st.rx_alive = true;
        drop(st);
        self.shared.recv_cv.notify_all();
        self.shared.send_cv.notify_all();
    }

    /// Tears the link down as if both endpoints vanished: in-flight windows
    /// are discarded and any blocked or future operation on either half
    /// fails with [`SimError::ChannelClosed`]. Fault-injection primitive.
    pub(crate) fn poison(&self) {
        let mut st = self.shared.lock();
        st.queue.clear();
        st.tx_alive = false;
        st.rx_alive = false;
        drop(st);
        self.shared.recv_cv.notify_all();
        self.shared.send_cv.notify_all();
    }

    /// Receives the next window if one is ready.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::ChannelClosed`] if the sender has been dropped.
    pub fn try_recv(&self) -> SimResult<Option<TokenWindow<T>>> {
        let mut st = self.shared.lock();
        if let Some(w) = st.queue.pop_front() {
            drop(st);
            self.shared.send_cv.notify_one();
            return Ok(Some(w));
        }
        if !st.tx_alive {
            return Err(SimError::ChannelClosed {
                agent: "<sender>".to_owned(),
            });
        }
        Ok(None)
    }
}

impl<T> Drop for LinkReceiver<T> {
    fn drop(&mut self) {
        let mut st = self.shared.lock();
        st.rx_alive = false;
        drop(st);
        self.shared.send_cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_seeds_latency_tokens() {
        let (_tx, rx) = link::<u32>(100, Cycle::new(300)).unwrap();
        let mut seeded = 0;
        while let Some(w) = rx.try_recv().unwrap() {
            assert_eq!(w.len(), 100);
            assert!(w.is_empty());
            seeded += 1;
        }
        assert_eq!(seeded, 3);
    }

    #[test]
    fn rejects_bad_latency() {
        assert!(matches!(
            link::<u8>(100, Cycle::new(150)),
            Err(SimError::BadLatency { .. })
        ));
        assert!(matches!(
            link::<u8>(100, Cycle::ZERO),
            Err(SimError::BadLatency { .. })
        ));
        assert!(matches!(
            link::<u8>(0, Cycle::new(100)),
            Err(SimError::BadLatency { .. })
        ));
    }

    #[test]
    fn send_rejects_wrong_window() {
        let (tx, _rx) = link::<u8>(8, Cycle::new(8)).unwrap();
        let w = TokenWindow::new(4);
        assert!(matches!(
            tx.send(w),
            Err(SimError::WindowMismatch {
                expected: 8,
                actual: 4
            })
        ));
    }

    #[test]
    fn payloads_cross_in_order() {
        let (tx, rx) = link::<u64>(4, Cycle::new(4)).unwrap();
        let _seed = rx.recv().unwrap();
        // The channel is bounded (1 window in flight + 1 slot), so interleave
        // sends and receives the way an engine round does.
        for round in 0..10u64 {
            let mut w = TokenWindow::new(4);
            w.push(0, round).unwrap();
            tx.send(w).unwrap();
            let got = rx.recv().unwrap();
            assert_eq!(got.get(0), Some(&round));
        }
    }

    #[test]
    fn closed_channel_errors() {
        let (tx, rx) = link::<u8>(4, Cycle::new(4)).unwrap();
        drop(rx);
        assert!(matches!(
            tx.send(TokenWindow::new(4)),
            Err(SimError::ChannelClosed { .. })
        ));

        let (tx, rx) = link::<u8>(4, Cycle::new(4)).unwrap();
        drop(tx);
        let _seed = rx.recv().unwrap(); // the seed window is still there
        assert!(matches!(rx.recv(), Err(SimError::ChannelClosed { .. })));
    }

    #[test]
    fn recycled_buffers_flow_back_to_sender() {
        let (tx, rx) = link::<u64>(8, Cycle::new(8)).unwrap();
        let seed = rx.recv().unwrap();
        rx.recycle(seed);

        // The recycled buffer must come back empty with full length.
        let mut w = tx.take_buffer();
        assert_eq!(w.len(), 8);
        assert!(w.is_empty());
        w.push(3, 42).unwrap();
        tx.send(w).unwrap();
        let got = rx.recv().unwrap();
        assert_eq!(got.get(3), Some(&42));

        // Stale payloads in a recycled window never leak.
        rx.recycle(got);
        let again = tx.take_buffer();
        assert!(again.is_empty());
        assert_eq!(again.get(3), None);
    }

    #[test]
    fn take_buffer_without_spares_allocates_fresh() {
        let (tx, _rx) = link::<u8>(16, Cycle::new(16)).unwrap();
        let w = tx.take_buffer();
        assert_eq!(w.len(), 16);
        assert!(w.is_empty());
    }

    #[test]
    fn spare_pool_is_bounded() {
        let (tx, rx) = link::<u8>(4, Cycle::new(4)).unwrap();
        // cap is in_flight + 1 = 2; recycling more than that discards.
        for _ in 0..10 {
            rx.recycle(TokenWindow::new(4));
        }
        let mut drained = 0;
        loop {
            let before = {
                let st = tx.shared.lock();
                st.spares.len()
            };
            if before == 0 {
                break;
            }
            let _ = tx.take_buffer();
            drained += 1;
        }
        assert!(drained <= 2, "spare pool exceeded its bound: {drained}");
    }

    #[test]
    fn recv_or_halt_returns_on_halt() {
        let (tx, rx) = link::<u8>(4, Cycle::new(4)).unwrap();
        let _seed = rx.recv().unwrap(); // drain the seed window
        let halt = AtomicBool::new(true);
        assert!(rx.recv_or_halt(&halt).unwrap().is_none());

        // With data present, halt does not mask delivery.
        tx.send(TokenWindow::new(4)).unwrap();
        assert!(rx.recv_or_halt(&halt).unwrap().is_some());
    }

    #[test]
    fn send_or_halt_returns_window_on_halt() {
        let (tx, rx) = link::<u8>(4, Cycle::new(4)).unwrap();
        // Queue is seeded with 1 window, cap 2: one more send fills it.
        tx.send(TokenWindow::new(4)).unwrap();
        let halt = AtomicBool::new(true);
        let w = tx.send_or_halt(TokenWindow::new(4), &halt).unwrap();
        assert!(w.is_some(), "full link + halt must hand the window back");
        drop(rx);
    }

    #[test]
    fn queue_snapshot_and_replace_round_trip() {
        let (tx, rx) = link::<u64>(4, Cycle::new(8)).unwrap();
        // Two seeded windows in flight; put a payload in a third... the cap
        // is 3, so consume one first to stay realistic.
        let seed = rx.recv().unwrap();
        rx.recycle(seed);
        let mut w = TokenWindow::new(4);
        w.push(2, 99).unwrap();
        tx.send(w).unwrap();
        let snap = rx.queue_snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[1].get(2), Some(&99));
        // Drain, then restore from the snapshot.
        while rx.try_recv().unwrap().is_some() {}
        rx.replace_queue(snap);
        let first = rx.recv().unwrap();
        assert!(first.is_empty());
        let second = rx.recv().unwrap();
        assert_eq!(second.get(2), Some(&99));
    }

    #[test]
    fn poison_fails_both_halves() {
        let (tx, rx) = link::<u8>(4, Cycle::new(4)).unwrap();
        rx.poison();
        assert!(matches!(rx.recv(), Err(SimError::ChannelClosed { .. })));
        assert!(matches!(
            tx.send(TokenWindow::new(4)),
            Err(SimError::ChannelClosed { .. })
        ));
    }

    #[test]
    fn replace_queue_revives_poisoned_link() {
        let (tx, rx) = link::<u8>(4, Cycle::new(4)).unwrap();
        rx.poison();
        assert!(matches!(rx.recv(), Err(SimError::ChannelClosed { .. })));
        // A restore rewrites the in-flight state and brings the link up.
        rx.replace_queue(vec![TokenWindow::new(4)]);
        let w = rx.recv().unwrap();
        assert!(w.is_empty());
        tx.send(TokenWindow::new(4)).unwrap();
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = link::<u32>(4, Cycle::new(4)).unwrap();
        let _seed = rx.recv().unwrap();
        std::thread::scope(|s| {
            let h = s.spawn(move || rx.recv().unwrap());
            std::thread::sleep(Duration::from_millis(10));
            let mut w = TokenWindow::new(4);
            w.push(0, 7).unwrap();
            tx.send(w).unwrap();
            let got = h.join().unwrap();
            assert_eq!(got.get(0), Some(&7));
        });
    }
}
