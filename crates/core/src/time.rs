//! Target-time arithmetic: cycles and clock frequencies.
//!
//! FireSim simulations run in a single target clock domain (the paper uses
//! 3.2 GHz for its server blades). All models that need a notion of target
//! time — the network, the DRAM model, the OS model — express it in target
//! cycles; [`Frequency`] converts between cycles and wall-clock target time.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A count of target clock cycles, or a point in target time measured in
/// cycles since simulation start.
///
/// `Cycle` is a thin newtype over `u64` ([C-NEWTYPE]) so that target time
/// cannot be accidentally mixed with host time or other integers.
///
/// # Examples
///
/// ```
/// use firesim_core::{Cycle, Frequency};
///
/// let lat = Frequency::GHZ_3_2.cycles_from_nanos(2_000); // 2 us link
/// assert_eq!(lat, Cycle::new(6_400));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The zero point of target time.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle count.
    #[inline]
    pub const fn new(n: u64) -> Self {
        Cycle(n)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    #[inline]
    pub const fn saturating_sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction; `None` when `rhs > self`.
    #[inline]
    pub fn checked_sub(self, rhs: Cycle) -> Option<Cycle> {
        self.0.checked_sub(rhs.0).map(Cycle)
    }

    /// Returns the larger of two cycle counts.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the smaller of two cycle counts.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }

    /// True when this is a multiple of `other` (used to validate that link
    /// latencies divide evenly into simulation windows).
    #[inline]
    pub fn is_multiple_of(self, other: Cycle) -> bool {
        other.0 != 0 && self.0.is_multiple_of(other.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(n: u64) -> Self {
        Cycle(n)
    }
}

impl From<Cycle> for u64 {
    fn from(c: Cycle) -> Self {
        c.0
    }
}

impl Add for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    #[inline]
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl SubAssign for Cycle {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycle) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn mul(self, rhs: u64) -> Cycle {
        Cycle(self.0 * rhs)
    }
}

impl Div<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn div(self, rhs: u64) -> Cycle {
        Cycle(self.0 / rhs)
    }
}

impl Rem<Cycle> for Cycle {
    type Output = Cycle;
    #[inline]
    fn rem(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 % rhs.0)
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        Cycle(iter.map(|c| c.0).sum())
    }
}

/// A target clock frequency in hertz.
///
/// Frequencies convert between target cycles and target wall-clock time.
/// When the paper says a blade runs at "3.2 GHz", it means all simulation
/// models agree that one cycle is `1 / 3.2e9` seconds of target time.
///
/// # Examples
///
/// ```
/// use firesim_core::Frequency;
///
/// let f = Frequency::from_ghz(3.2);
/// assert_eq!(f.as_hz(), 3_200_000_000);
/// assert_eq!(f.cycles_from_micros(2).as_u64(), 6_400);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Frequency(u64);

impl Frequency {
    /// The paper's default blade clock: 3.2 GHz.
    pub const GHZ_3_2: Frequency = Frequency(3_200_000_000);

    /// Creates a frequency from hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is zero.
    pub const fn from_hz(hz: u64) -> Self {
        assert!(hz > 0, "frequency must be nonzero");
        Frequency(hz)
    }

    /// Creates a frequency from gigahertz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not finite and positive.
    pub fn from_ghz(ghz: f64) -> Self {
        assert!(ghz.is_finite() && ghz > 0.0, "frequency must be positive");
        Frequency((ghz * 1e9).round() as u64)
    }

    /// Creates a frequency from megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not finite and positive.
    pub fn from_mhz(mhz: f64) -> Self {
        assert!(mhz.is_finite() && mhz > 0.0, "frequency must be positive");
        Frequency((mhz * 1e6).round() as u64)
    }

    /// The frequency in hertz.
    #[inline]
    pub const fn as_hz(self) -> u64 {
        self.0
    }

    /// The frequency in gigahertz.
    #[inline]
    pub fn as_ghz(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Number of cycles in `ns` nanoseconds of target time (rounded to the
    /// nearest cycle).
    #[inline]
    pub fn cycles_from_nanos(self, ns: u64) -> Cycle {
        Cycle((self.0 as u128 * ns as u128 / 1_000_000_000) as u64)
    }

    /// Number of cycles in `us` microseconds of target time.
    #[inline]
    pub fn cycles_from_micros(self, us: u64) -> Cycle {
        self.cycles_from_nanos(us * 1_000)
    }

    /// Target time of `c` cycles, in nanoseconds.
    #[inline]
    pub fn nanos_from_cycles(self, c: Cycle) -> f64 {
        c.as_u64() as f64 * 1e9 / self.0 as f64
    }

    /// Target time of `c` cycles, in microseconds.
    #[inline]
    pub fn micros_from_cycles(self, c: Cycle) -> f64 {
        self.nanos_from_cycles(c) / 1e3
    }

    /// Target time of `c` cycles, in seconds.
    #[inline]
    pub fn seconds_from_cycles(self, c: Cycle) -> f64 {
        c.as_u64() as f64 / self.0 as f64
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3} GHz", self.as_ghz())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3} MHz", self.0 as f64 / 1e6)
        } else {
            write!(f, "{} Hz", self.0)
        }
    }
}

impl Default for Frequency {
    fn default() -> Self {
        Frequency::GHZ_3_2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let a = Cycle::new(10);
        let b = Cycle::new(3);
        assert_eq!(a + b, Cycle::new(13));
        assert_eq!(a - b, Cycle::new(7));
        assert_eq!(a * 2, Cycle::new(20));
        assert_eq!(a / 2, Cycle::new(5));
        assert_eq!(a % b, Cycle::new(1));
        assert_eq!(b.saturating_sub(a), Cycle::ZERO);
        assert_eq!(a.checked_sub(b), Some(Cycle::new(7)));
        assert_eq!(b.checked_sub(a), None);
    }

    #[test]
    fn cycle_multiples() {
        assert!(Cycle::new(6400).is_multiple_of(Cycle::new(100)));
        assert!(!Cycle::new(6401).is_multiple_of(Cycle::new(100)));
        assert!(!Cycle::new(10).is_multiple_of(Cycle::ZERO));
    }

    #[test]
    fn cycle_sum_and_conversions() {
        let total: Cycle = [Cycle::new(1), Cycle::new(2), Cycle::new(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Cycle::new(6));
        assert_eq!(u64::from(Cycle::new(9)), 9);
        assert_eq!(Cycle::from(9u64), Cycle::new(9));
    }

    #[test]
    fn frequency_conversions() {
        let f = Frequency::GHZ_3_2;
        // 2 us at 3.2 GHz = 6400 cycles, the paper's canonical link latency.
        assert_eq!(f.cycles_from_micros(2), Cycle::new(6400));
        assert_eq!(f.cycles_from_nanos(2000), Cycle::new(6400));
        assert!((f.micros_from_cycles(Cycle::new(6400)) - 2.0).abs() < 1e-9);
        assert!((f.seconds_from_cycles(Cycle::new(3_200_000_000)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_display() {
        assert_eq!(Frequency::GHZ_3_2.to_string(), "3.200 GHz");
        assert_eq!(Frequency::from_mhz(3.42).to_string(), "3.420 MHz");
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn frequency_zero_panics() {
        let _ = Frequency::from_ghz(0.0);
    }

    #[test]
    fn cycle_display_and_minmax() {
        assert_eq!(Cycle::new(5).to_string(), "5 cycles");
        assert_eq!(Cycle::new(5).max(Cycle::new(9)), Cycle::new(9));
        assert_eq!(Cycle::new(5).min(Cycle::new(9)), Cycle::new(5));
    }
}
