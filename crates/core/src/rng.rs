//! Deterministic random numbers for reproducible simulations.
//!
//! Workload generators (e.g. the mutilate-style load generator) need
//! randomness, but a FireSim simulation must be bit-for-bit reproducible.
//! [`SimRng`] is a small, fast xoshiro256++ generator seeded through
//! SplitMix64, with a [`split`](SimRng::split) operation that derives
//! independent child streams deterministically — so every blade in a
//! 1024-node simulation gets its own stream from a single experiment seed.

/// A deterministic pseudo-random number generator (xoshiro256++).
///
/// Not cryptographically secure; intended purely for workload generation.
///
/// # Examples
///
/// ```
/// use firesim_core::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Child streams are independent but deterministic.
/// let mut c0 = SimRng::seed_from(42).split(0);
/// let mut c1 = SimRng::seed_from(42).split(1);
/// assert_ne!(c0.next_u64(), c1.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child stream identified by `stream`.
    ///
    /// Two children with different stream ids produce unrelated sequences;
    /// the same id always produces the same sequence.
    pub fn split(&self, stream: u64) -> SimRng {
        // Mix the current state with the stream id through SplitMix64.
        let mut sm = self
            .s
            .iter()
            .fold(stream ^ 0xA076_1D64_78BD_642F, |acc, &w| {
                acc.rotate_left(17) ^ w
            });
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. Uses Lemire's multiply-shift method
    /// with rejection, so the distribution is exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= (bound.wrapping_neg() % bound) {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Exponentially distributed value with the given mean.
    ///
    /// Used for Poisson inter-arrival times in open-loop load generators.
    pub fn next_exp(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.next_f64();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl crate::snapshot::Snapshot for SimRng {
    fn save(&self, w: &mut crate::snapshot::SnapshotWriter) {
        for word in self.s {
            w.put_u64(word);
        }
    }
    fn load(r: &mut crate::snapshot::SnapshotReader<'_>) -> crate::error::SimResult<Self> {
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = r.get_u64()?;
        }
        Ok(SimRng { s })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn split_streams_independent_and_stable() {
        let root = SimRng::seed_from(99);
        let mut c0 = root.split(0);
        let mut c0_again = root.split(0);
        let c1 = root.split(1);
        assert_eq!(c0.next_u64(), c0_again.next_u64());
        let mut x0 = root.split(0);
        let mut x1 = c1.clone();
        assert_ne!(
            (0..4).map(|_| x0.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| x1.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut rng = SimRng::seed_from(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.next_below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn gen_range_inclusive() {
        let mut rng = SimRng::seed_from(4);
        for _ in 0..1000 {
            let v = rng.gen_range(10, 12);
            assert!((10..=12).contains(&v));
        }
        assert_eq!(rng.gen_range(5, 5), 5);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn exp_mean_roughly_correct() {
        let mut rng = SimRng::seed_from(6);
        let n = 20_000;
        let mean = 50.0;
        let total: f64 = (0..n).map(|_| rng.next_exp(mean)).sum();
        let observed = total / n as f64;
        assert!(
            (observed - mean).abs() < mean * 0.05,
            "observed mean {observed}"
        );
    }

    #[test]
    #[should_panic(expected = "bound must be nonzero")]
    fn next_below_zero_panics() {
        SimRng::seed_from(0).next_below(0);
    }
}
