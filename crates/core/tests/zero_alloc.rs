//! Proof that the engine's steady-state hot path allocates nothing.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! run (which grows channel queues, spare pools, and scratch vectors to
//! their steady-state capacity), further rounds must perform **zero**
//! heap allocations — the recycling loop in `step_agent` hands every
//! consumed window back to its link and draws every output window from
//! the link's spare pool.
//!
//! This file intentionally contains a single test: other tests running
//! concurrently in the same binary would allocate and pollute the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use firesim_core::{AgentCtx, Cycle, Engine, SimAgent};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to the system allocator; the counter has no
// effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Drains its input and emits a token every other cycle — enough traffic
/// that windows are never empty, so the sparse-item vectors are exercised.
struct Relay {
    seen: u64,
}

impl SimAgent for Relay {
    type Token = u64;

    fn name(&self) -> &str {
        "relay"
    }

    fn num_inputs(&self) -> usize {
        1
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn advance(&mut self, ctx: &mut AgentCtx<u64>) {
        for (_off, v) in ctx.drain_input(0) {
            self.seen = self.seen.wrapping_add(v);
        }
        let base = ctx.now().as_u64();
        for off in (0..ctx.window()).step_by(2) {
            ctx.push_output(0, off, base + u64::from(off));
        }
    }
}

#[test]
fn steady_state_rounds_allocate_nothing() {
    const WINDOW: u32 = 16;
    let mut engine: Engine<u64> = Engine::new(WINDOW);
    let ids: Vec<_> = (0..4)
        .map(|_| engine.add_agent(Box::new(Relay { seen: 0 })))
        .collect();
    for i in 0..ids.len() {
        engine
            .connect(
                ids[i],
                0,
                ids[(i + 1) % ids.len()],
                0,
                Cycle::new(u64::from(WINDOW)),
            )
            .unwrap();
    }

    // Warm up: grows window item vectors, channel spare pools, and
    // per-agent scratch to steady-state capacity.
    engine.run_for(Cycle::new(u64::from(WINDOW) * 32)).unwrap();

    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    engine.run_for(Cycle::new(u64::from(WINDOW) * 64)).unwrap();
    let delta = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "steady-state rounds performed {delta} heap allocations"
    );
}
