//! Property tests for the measurement primitives.

use proptest::prelude::*;

use firesim_core::stats::{Histogram, TimeSeries};
use firesim_core::{Cycle, SimRng};

/// Naive reference for [`Histogram::percentile`]: sort a fresh copy, find
/// the interpolation rank directly.
fn naive_interpolated(samples: &[u64], p: f64) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let mut s = samples.to_vec();
    s.sort_unstable();
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (s.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some((s[lo] as f64 + (s[hi] as f64 - s[lo] as f64) * frac).round() as u64)
}

/// Naive reference for [`Histogram::percentile_nearest_rank`]: linear scan
/// of a sorted copy for the smallest sample whose cumulative count covers
/// `p` percent of all samples.
fn naive_nearest_rank(samples: &[u64], p: f64) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let mut s = samples.to_vec();
    s.sort_unstable();
    let p = p.clamp(0.0, 100.0);
    let need = p / 100.0 * s.len() as f64;
    s.iter()
        .enumerate()
        .find(|&(i, _)| (i + 1) as f64 >= need)
        .map(|(_, &v)| v)
        .or_else(|| s.last().copied())
}

fn series_from(points: &[(u64, f64)], name: &str) -> TimeSeries {
    let mut ts = TimeSeries::new(name);
    for &(c, v) in points {
        ts.record(Cycle::new(c), v);
    }
    ts
}

/// Turns per-point `(cycle delta, value)` pairs into a nondecreasing-cycle
/// point list, the order [`TimeSeries::record`] expects.
fn sorted_points(deltas: &[(u32, u16)]) -> Vec<(u64, f64)> {
    let mut cycle = 0u64;
    deltas
        .iter()
        .map(|&(d, v)| {
            cycle += u64::from(d);
            (cycle, f64::from(v))
        })
        .collect()
}

proptest! {
    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentiles_monotone(samples in proptest::collection::vec(0u64..1_000_000, 1..300)) {
        let mut h = Histogram::new("t");
        for &s in &samples {
            h.record(s);
        }
        let min = h.min().unwrap();
        let max = h.max().unwrap();
        let mut prev = min;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0] {
            let v = h.percentile(p).unwrap();
            prop_assert!(v >= prev.min(v)); // non-panicking guard
            prop_assert!(v >= min && v <= max, "p{p}: {v} outside [{min},{max}]");
            prop_assert!(v >= prev || p == 0.0, "p{p}: {v} < previous {prev}");
            prev = v;
        }
        prop_assert_eq!(h.percentile(0.0), Some(min));
        prop_assert_eq!(h.percentile(100.0), Some(max));
    }

    /// Merging histograms preserves the sample count and extremes.
    #[test]
    fn merge_preserves_samples(
        a in proptest::collection::vec(0u64..1_000, 1..100),
        b in proptest::collection::vec(0u64..1_000, 1..100),
    ) {
        let mut ha = Histogram::new("a");
        for &s in &a { ha.record(s); }
        let mut hb = Histogram::new("b");
        for &s in &b { hb.record(s); }
        let (amin, amax) = (ha.min().unwrap(), ha.max().unwrap());
        let (bmin, bmax) = (hb.min().unwrap(), hb.max().unwrap());
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), a.len() + b.len());
        prop_assert_eq!(ha.min(), Some(amin.min(bmin)));
        prop_assert_eq!(ha.max(), Some(amax.max(bmax)));
    }

    /// Split RNG streams are reproducible and (statistically) distinct.
    #[test]
    fn rng_split_stable(seed in any::<u64>(), stream in 0u64..1_000) {
        let root = SimRng::seed_from(seed);
        let mut a = root.split(stream);
        let mut b = root.split(stream);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = root.split(stream.wrapping_add(1));
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        prop_assert_ne!(va, vc);
    }

    /// gen_range stays inside the requested inclusive range.
    #[test]
    fn gen_range_in_bounds(seed in any::<u64>(), lo in 0u64..1_000, span in 0u64..1_000) {
        let hi = lo + span;
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..64 {
            let v = rng.gen_range(lo, hi);
            prop_assert!((lo..=hi).contains(&v));
        }
    }

    /// The interpolated percentile agrees with a from-scratch reference,
    /// regardless of insertion order and interleaved queries (which sort
    /// the reservoir in place).
    #[test]
    fn percentile_matches_naive_reference(
        samples in proptest::collection::vec(0u64..1_000_000, 1..200),
        ps in proptest::collection::vec(0u32..=1000, 1..8),
    ) {
        let mut h = Histogram::new("t");
        for &s in &samples {
            h.record(s);
        }
        for &p in &ps {
            let p = f64::from(p) / 10.0;
            prop_assert_eq!(h.percentile(p), naive_interpolated(&samples, p), "p = {}", p);
        }
    }

    /// Nearest-rank percentile agrees with the linear-scan reference on
    /// duplicate-heavy inputs (values drawn from a tiny domain), and always
    /// returns an actual sample.
    #[test]
    fn nearest_rank_matches_naive_reference(
        samples in proptest::collection::vec(0u64..8, 1..200),
        ps in proptest::collection::vec(0u32..=1000, 1..8),
    ) {
        let mut h = Histogram::new("t");
        for &s in &samples {
            h.record(s);
        }
        for &p in &ps {
            let p = f64::from(p) / 10.0;
            let got = h.percentile_nearest_rank(p);
            prop_assert_eq!(got, naive_nearest_rank(&samples, p), "p = {}", p);
            prop_assert!(samples.contains(&got.unwrap()), "p{}: {:?} not a sample", p, got);
        }
    }

    /// Histogram::merge is associative: merging per-worker shards in any
    /// grouping yields the same reservoir, hence identical percentiles.
    #[test]
    fn histogram_merge_associative(
        a in proptest::collection::vec(0u64..1_000, 0..60),
        b in proptest::collection::vec(0u64..1_000, 0..60),
        c in proptest::collection::vec(0u64..1_000, 0..60),
    ) {
        let build = |samples: &[u64]| {
            let mut h = Histogram::new("t");
            for &s in samples {
                h.record(s);
            }
            h
        };
        // (a ⊕ b) ⊕ c
        let mut left = build(&a);
        left.merge(&build(&b));
        left.merge(&build(&c));
        // a ⊕ (b ⊕ c)
        let mut right = build(&a);
        let mut bc = build(&b);
        bc.merge(&build(&c));
        right.merge(&bc);
        prop_assert_eq!(left.samples(), right.samples());
        if !left.is_empty() {
            for p in [0.0, 50.0, 95.0, 100.0] {
                prop_assert_eq!(left.percentile(p), right.percentile(p));
                prop_assert_eq!(
                    left.percentile_nearest_rank(p),
                    right.percentile_nearest_rank(p)
                );
            }
        }
    }

    /// TimeSeries::merge is associative for series recorded in
    /// nondecreasing cycle order.
    #[test]
    fn timeseries_merge_associative(
        a in proptest::collection::vec((0u32..1_000, any::<u16>()), 0..60),
        b in proptest::collection::vec((0u32..1_000, any::<u16>()), 0..60),
        c in proptest::collection::vec((0u32..1_000, any::<u16>()), 0..60),
    ) {
        let (a, b, c) = (sorted_points(&a), sorted_points(&b), sorted_points(&c));
        let mut left = series_from(&a, "l");
        left.merge(&series_from(&b, "t"));
        left.merge(&series_from(&c, "t"));
        let mut right = series_from(&a, "r");
        let mut bc = series_from(&b, "t");
        bc.merge(&series_from(&c, "t"));
        right.merge(&bc);
        prop_assert_eq!(left.points(), right.points());
        prop_assert_eq!(left.len(), a.len() + b.len() + c.len());
        // Merged output stays sorted by cycle.
        prop_assert!(left.points().windows(2).all(|w| w[0].0 <= w[1].0));
    }
}

#[test]
fn percentile_edge_cases_empty_singleton_duplicates() {
    let mut empty = Histogram::new("e");
    assert_eq!(empty.percentile(50.0), None);
    assert_eq!(empty.percentile_nearest_rank(50.0), None);

    let mut single = Histogram::new("s");
    single.record(42);
    for p in [0.0, 1.0, 50.0, 99.9, 100.0] {
        assert_eq!(single.percentile(p), Some(42));
        assert_eq!(single.percentile_nearest_rank(p), Some(42));
    }

    let mut dup = Histogram::new("d");
    for _ in 0..100 {
        dup.record(7);
    }
    for p in [0.0, 25.0, 50.0, 75.0, 100.0] {
        assert_eq!(dup.percentile(p), Some(7));
        assert_eq!(dup.percentile_nearest_rank(p), Some(7));
    }
}
