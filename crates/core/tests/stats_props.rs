//! Property tests for the measurement primitives.

use proptest::prelude::*;

use firesim_core::stats::Histogram;
use firesim_core::SimRng;

proptest! {
    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentiles_monotone(samples in proptest::collection::vec(0u64..1_000_000, 1..300)) {
        let mut h = Histogram::new("t");
        for &s in &samples {
            h.record(s);
        }
        let min = h.min().unwrap();
        let max = h.max().unwrap();
        let mut prev = min;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0] {
            let v = h.percentile(p).unwrap();
            prop_assert!(v >= prev.min(v)); // non-panicking guard
            prop_assert!(v >= min && v <= max, "p{p}: {v} outside [{min},{max}]");
            prop_assert!(v >= prev || p == 0.0, "p{p}: {v} < previous {prev}");
            prev = v;
        }
        prop_assert_eq!(h.percentile(0.0), Some(min));
        prop_assert_eq!(h.percentile(100.0), Some(max));
    }

    /// Merging histograms preserves the sample count and extremes.
    #[test]
    fn merge_preserves_samples(
        a in proptest::collection::vec(0u64..1_000, 1..100),
        b in proptest::collection::vec(0u64..1_000, 1..100),
    ) {
        let mut ha = Histogram::new("a");
        for &s in &a { ha.record(s); }
        let mut hb = Histogram::new("b");
        for &s in &b { hb.record(s); }
        let (amin, amax) = (ha.min().unwrap(), ha.max().unwrap());
        let (bmin, bmax) = (hb.min().unwrap(), hb.max().unwrap());
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), a.len() + b.len());
        prop_assert_eq!(ha.min(), Some(amin.min(bmin)));
        prop_assert_eq!(ha.max(), Some(amax.max(bmax)));
    }

    /// Split RNG streams are reproducible and (statistically) distinct.
    #[test]
    fn rng_split_stable(seed in any::<u64>(), stream in 0u64..1_000) {
        let root = SimRng::seed_from(seed);
        let mut a = root.split(stream);
        let mut b = root.split(stream);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = root.split(stream.wrapping_add(1));
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        prop_assert_ne!(va, vc);
    }

    /// gen_range stays inside the requested inclusive range.
    #[test]
    fn gen_range_in_bounds(seed in any::<u64>(), lo in 0u64..1_000, span in 0u64..1_000) {
        let hi = lo + span;
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..64 {
            let v = rng.gen_range(lo, hi);
            prop_assert!((lo..=hi).contains(&v));
        }
    }
}
