//! Checkpoint/restore correctness: running to cycle `X` straight must be
//! bit-identical to running to `C`, checkpointing, restoring into a fresh
//! engine, and running on to `X` — across (C, X) pairs and host thread
//! counts, through full byte-level serialization.

use proptest::prelude::*;

use firesim_core::{
    AgentCtx, Checkpoint, Cycle, Engine, EngineCheckpoint, FaultPlan, SimAgent, SimResult,
    SnapshotReader, SnapshotWriter,
};

const WINDOW: u32 = 8;

fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A relay whose output traffic depends on its entire input history: any
/// divergence after a restore snowballs into different tokens, so comparing
/// final checkpoints catches even a single-bit state mismatch.
struct ChaosRelay {
    id: u64,
    hash: u64,
    seen: u64,
    backlog: std::collections::VecDeque<u64>,
}

impl ChaosRelay {
    fn new(id: u64) -> Self {
        ChaosRelay {
            id,
            hash: mix(id),
            seen: 0,
            backlog: std::collections::VecDeque::new(),
        }
    }
}

impl SimAgent for ChaosRelay {
    type Token = u64;
    fn name(&self) -> &str {
        "chaos"
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn advance(&mut self, ctx: &mut AgentCtx<u64>) {
        for (off, v) in ctx.drain_input(0) {
            self.hash = mix(self.hash ^ v ^ u64::from(off));
            self.seen += 1;
            if v % 3 == 0 {
                self.backlog.push_back(v);
            }
        }
        let base = ctx.now().as_u64();
        for off in 0..ctx.window() {
            let cycle = base + u64::from(off);
            let roll = mix(self.hash ^ cycle ^ self.id);
            if roll.is_multiple_of(4) {
                let payload = self
                    .backlog
                    .pop_front()
                    .unwrap_or_else(|| mix(roll ^ self.seen));
                ctx.push_output(0, off, payload);
            }
        }
    }
    fn as_checkpoint(&mut self) -> Option<&mut dyn Checkpoint> {
        Some(self)
    }
}

impl Checkpoint for ChaosRelay {
    fn save_state(&self, w: &mut SnapshotWriter) -> SimResult<()> {
        w.put_u64(self.hash);
        w.put_u64(self.seen);
        w.put(&self.backlog);
        Ok(())
    }
    fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> SimResult<()> {
        self.hash = r.get_u64()?;
        self.seen = r.get_u64()?;
        self.backlog = r.get()?;
        Ok(())
    }
}

/// Four relays in a ring with mixed latencies.
fn build(threads: usize) -> Engine<u64> {
    let mut engine: Engine<u64> = Engine::new(WINDOW);
    engine
        .set_host_threads(threads)
        .set_host_oversubscribe(true);
    let ids: Vec<_> = (0..4)
        .map(|i| engine.add_agent(Box::new(ChaosRelay::new(i))))
        .collect();
    let latencies = [8u64, 16, 8, 24];
    for i in 0..ids.len() {
        engine
            .connect(
                ids[i],
                0,
                ids[(i + 1) % ids.len()],
                0,
                Cycle::new(latencies[i]),
            )
            .unwrap();
    }
    engine
}

/// Final state of a straight run to `x` cycles.
fn straight(threads: usize, x: u64) -> Vec<u8> {
    let mut engine = build(threads);
    engine.run_for(Cycle::new(x)).unwrap();
    engine.checkpoint().unwrap().to_bytes()
}

/// Final state of run-to-`c`, serialize, restore into a fresh engine
/// (possibly with a different thread count), run on to `x`.
fn resumed(threads_before: usize, threads_after: usize, c: u64, x: u64) -> Vec<u8> {
    let mut engine = build(threads_before);
    engine.run_for(Cycle::new(c)).unwrap();
    let bytes = engine.checkpoint().unwrap().to_bytes();
    let cp = EngineCheckpoint::<u64>::from_bytes(&bytes).unwrap();
    let mut fresh = build(threads_after);
    fresh.restore(&cp).unwrap();
    assert_eq!(fresh.now(), Cycle::new(c));
    fresh.run_for(Cycle::new(x - c)).unwrap();
    fresh.checkpoint().unwrap().to_bytes()
}

/// The acceptance matrix: three (C, X) pairs, each across 1/2/4 workers.
#[test]
fn restore_matches_straight_run_across_pairs_and_threads() {
    for &(c, x) in &[(16u64, 48u64), (64, 128), (128, 360)] {
        for &threads in &[1usize, 2, 4] {
            let want = straight(threads, x);
            let got = resumed(threads, threads, c, x);
            assert_eq!(got, want, "divergence for C={c}, X={x}, threads={threads}");
        }
    }
}

/// Restoring under a different thread count than the one that produced the
/// checkpoint must not matter: determinism is scheduling-independent.
#[test]
fn restore_is_thread_count_independent() {
    let want = straight(1, 96);
    assert_eq!(resumed(1, 4, 32, 96), want);
    assert_eq!(resumed(4, 1, 32, 96), want);
    assert_eq!(resumed(2, 4, 64, 96), want);
}

/// Target-side faults are part of the deterministic target behaviour:
/// checkpointing *inside* a fault window and replaying reproduces the same
/// final state as never stopping.
#[test]
fn restore_replays_target_faults_bit_identically() {
    let plan = || {
        let mut p = FaultPlan::new(77);
        p.link_down(1usize, 0, 40, 90);
        p.link_flaky(3usize, 0, 20, 140, 35);
        p
    };
    let mut engine = build(1);
    engine.set_fault_plan(plan());
    engine.run_for(Cycle::new(160)).unwrap();
    let want = engine.checkpoint().unwrap().to_bytes();

    let mut first = build(2);
    first.set_fault_plan(plan());
    first.run_for(Cycle::new(64)).unwrap();
    let cp = first.checkpoint().unwrap();
    let mut fresh = build(2);
    fresh.set_fault_plan(plan());
    fresh.restore(&cp).unwrap();
    fresh.run_for(Cycle::new(96)).unwrap();
    assert_eq!(fresh.checkpoint().unwrap().to_bytes(), want);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized (C, X) pairs and thread counts.
    #[test]
    fn restore_matches_straight_run(
        c_rounds in 1u64..24,
        extra_rounds in 1u64..24,
        threads in 1usize..=4,
    ) {
        let c = c_rounds * u64::from(WINDOW);
        let x = c + extra_rounds * u64::from(WINDOW);
        prop_assert_eq!(resumed(threads, threads, c, x), straight(threads, x));
    }
}
