//! Faulty-agent matrix: an injected agent panic in the first, middle, or
//! last chunk of a run, across 1, 2, and 8 host workers, must never
//! deadlock — every worker joins promptly and the error names the faulting
//! agent and cycle, not an innocent peer.

use std::time::{Duration, Instant};

use firesim_core::{AgentCtx, Cycle, Engine, FaultPlan, SimAgent, SimError};

const WINDOW: u32 = 4;
const CHUNK_ROUNDS: u64 = 4;
const TOTAL_ROUNDS: u64 = 64;

/// A maximum wall-clock bound that is generous for a healthy teardown but
/// far below what a deadlocked join would burn (the halt poll interval is
/// sub-millisecond).
const WATCHDOG: Duration = Duration::from_secs(10);

struct Relay;

impl SimAgent for Relay {
    type Token = u64;
    fn name(&self) -> &str {
        "relay"
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn advance(&mut self, ctx: &mut AgentCtx<u64>) {
        let mut acc = 0u64;
        for (_off, v) in ctx.drain_input(0) {
            acc = acc.wrapping_add(v);
        }
        ctx.push_output(0, 0, acc.wrapping_add(ctx.now().as_u64()));
    }
}

/// Ten relays in a ring; a panic is scheduled against one of them.
fn build(threads: usize) -> Engine<u64> {
    let mut engine: Engine<u64> = Engine::new(WINDOW);
    engine
        .set_host_threads(threads)
        .set_host_oversubscribe(true)
        .set_chunk_rounds(CHUNK_ROUNDS);
    let ids: Vec<_> = (0..10).map(|_| engine.add_agent(Box::new(Relay))).collect();
    for i in 0..ids.len() {
        engine
            .connect(
                ids[i],
                0,
                ids[(i + 1) % ids.len()],
                0,
                Cycle::new(u64::from(WINDOW)),
            )
            .unwrap();
    }
    engine
}

#[test]
fn injected_panic_matrix_no_deadlock_correct_attribution() {
    let horizon = TOTAL_ROUNDS * u64::from(WINDOW);
    // First chunk, a middle chunk, and the last chunk of the run.
    let first = 0u64;
    let middle = (TOTAL_ROUNDS / 2) * u64::from(WINDOW);
    let last = (TOTAL_ROUNDS - 1) * u64::from(WINDOW);
    for &panic_cycle in &[first, middle, last] {
        for &threads in &[1usize, 2, 8] {
            let mut engine = build(threads);
            let mut plan = FaultPlan::new(panic_cycle ^ threads as u64);
            plan.panic_at(4usize, panic_cycle);
            engine.set_fault_plan(plan);

            let started = Instant::now();
            let result = engine.run_for(Cycle::new(horizon));
            let elapsed = started.elapsed();
            // run_for returning at all proves every worker joined (the
            // engine uses scoped threads); bound how long that took.
            assert!(
                elapsed < WATCHDOG,
                "teardown took {elapsed:?} (cycle {panic_cycle}, {threads} workers)"
            );
            match result {
                Err(SimError::AgentPanicked {
                    agent,
                    cycle,
                    message,
                }) => {
                    assert_eq!(
                        agent, "relay",
                        "wrong agent (cycle {panic_cycle}, {threads} workers)"
                    );
                    assert_eq!(cycle, panic_cycle, "wrong cycle ({threads} workers)");
                    assert!(message.contains("injected panic"), "message: {message}");
                }
                other => panic!(
                    "cycle {panic_cycle}, {threads} workers: expected AgentPanicked, got {other:?}"
                ),
            }
            // Provenance: exactly the injected fault, nothing else.
            let records = engine.fault_records();
            assert_eq!(records.len(), 1);
            assert_eq!(records[0].cycle, panic_cycle);
        }
    }
}

/// Seeded smoke: a benign target-only plan derived from a seed must let the
/// run complete, leave a provenance log, and replay to the identical log on
/// a second run (same seed, different thread count). CI runs this across a
/// seed matrix via `FIRESIM_FAULT_SEED`; without the variable it sweeps a
/// default set of seeds.
#[test]
fn seeded_smoke_plan_completes_and_replays() {
    let seeds: Vec<u64> = match std::env::var("FIRESIM_FAULT_SEED") {
        Ok(s) => vec![s.parse().expect("FIRESIM_FAULT_SEED must be a u64")],
        Err(_) => vec![1, 2, 3, 4],
    };
    let horizon = TOTAL_ROUNDS * u64::from(WINDOW);
    for seed in seeds {
        let mut logs = Vec::new();
        for &threads in &[1usize, 8] {
            let mut engine = build(threads);
            engine.set_fault_plan(FaultPlan::smoke(seed, 10, horizon));
            let summary = engine
                .run_for(Cycle::new(horizon))
                .unwrap_or_else(|e| panic!("seed {seed}, {threads} workers: {e}"));
            assert_eq!(summary.cycles.as_u64(), horizon);
            logs.push(engine.fault_records());
        }
        assert!(
            !logs[0].is_empty(),
            "seed {seed}: smoke plan injected nothing"
        );
        assert_eq!(
            logs[0], logs[1],
            "seed {seed}: fault provenance differs across thread counts"
        );
    }
}

#[test]
fn injected_channel_drop_matrix_no_deadlock() {
    let drop_cycle = (TOTAL_ROUNDS / 2) * u64::from(WINDOW);
    for &threads in &[1usize, 2, 8] {
        let mut engine = build(threads);
        let mut plan = FaultPlan::new(threads as u64);
        plan.drop_channel(7usize, 0, drop_cycle);
        engine.set_fault_plan(plan);
        let started = Instant::now();
        let result = engine.run_for(Cycle::new(TOTAL_ROUNDS * u64::from(WINDOW)));
        assert!(started.elapsed() < WATCHDOG, "{threads} workers");
        match result {
            Err(SimError::Agent { agent, detail }) => {
                assert_eq!(agent, "relay", "{threads} workers");
                assert!(detail.contains("channel drop"), "detail: {detail}");
            }
            other => panic!("{threads} workers: expected Agent error, got {other:?}"),
        }
    }
}
