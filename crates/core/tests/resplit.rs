//! Checkpoint re-split coverage: an `FSCKPT01` checkpoint written by a
//! 4-way sharded run is merged ([`EngineCheckpoint::merge`]) and restored
//! ([`Engine::restore_by_name`]) into deployments of a *different* shape —
//! 2-way sharded and monolithic — and every continuation lands on digests
//! bit-identical to an uninterrupted monolithic run.
//!
//! This is the engine-level half of repartition-from-checkpoint: per-agent
//! checkpoint entries carry no placement information (an agent's input
//! links model the full latency regardless of where the sender lives), so
//! a checkpoint taken under one sharding restores under any other.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use firesim_core::{
    combined_digest, AgentCtx, BoundaryInput, BoundaryOutput, Checkpoint, Cycle, Engine,
    EngineCheckpoint, SimAgent, SimResult, SnapshotReader, SnapshotWriter,
};

const N: usize = 4;
const WINDOW: u32 = 8;
const LATENCY: u64 = 8;
const MID: u64 = 64;
const END: u64 = 128;

/// Ring node with history-dependent state: every received token is mixed
/// into an accumulator that seeds future sends, so any divergence in
/// token timing or content shows up in the digest forever after.
struct Node {
    name: String,
    period: u64,
    sent: u64,
    acc: u64,
}

fn node(i: usize) -> Box<Node> {
    Box::new(Node {
        name: format!("n{i}"),
        period: 16 + 8 * i as u64,
        sent: 0,
        acc: 0x9e37_79b9_7f4a_7c15 ^ i as u64,
    })
}

impl SimAgent for Node {
    type Token = u64;
    fn name(&self) -> &str {
        &self.name
    }
    fn num_inputs(&self) -> usize {
        1
    }
    fn num_outputs(&self) -> usize {
        1
    }
    fn advance(&mut self, ctx: &mut AgentCtx<u64>) {
        let base = ctx.now().as_u64();
        for (off, v) in ctx.drain_input(0) {
            let at = base + u64::from(off);
            self.acc = (self.acc ^ v ^ at).wrapping_mul(0x0000_0100_0000_01b3);
        }
        for off in 0..ctx.window() {
            let cycle = base + u64::from(off);
            if cycle.is_multiple_of(self.period) {
                ctx.push_output(0, off, self.acc ^ cycle);
                self.sent += 1;
            }
        }
    }
    fn as_checkpoint(&mut self) -> Option<&mut dyn Checkpoint> {
        Some(self)
    }
}

impl Checkpoint for Node {
    fn save_state(&self, w: &mut SnapshotWriter) -> SimResult<()> {
        w.put_u64(self.sent);
        w.put_u64(self.acc);
        Ok(())
    }
    fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> SimResult<()> {
        self.sent = r.get_u64()?;
        self.acc = r.get_u64()?;
        Ok(())
    }
}

/// In-process transport pump, as `manager::partition` would run between
/// worker processes.
fn pump(
    out: BoundaryOutput<u64>,
    inp: BoundaryInput<u64>,
    halt: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        while let Ok(Some(w)) = out.drain_or_halt(&halt) {
            if !matches!(inp.inject_or_halt(w, &halt), Ok(None)) {
                break;
            }
        }
    })
}

/// Builds one engine per group of `groups` (a partition of `0..N`),
/// wiring each ring edge `i -> (i+1) % N` directly when both endpoints
/// share a group and through a boundary pump otherwise.
fn build_groups(groups: &[Vec<usize>]) -> (Vec<Engine<u64>>, Vec<JoinHandle<()>>, Arc<AtomicBool>) {
    let mut engines: Vec<Engine<u64>> = groups.iter().map(|_| Engine::new(WINDOW)).collect();
    let mut place = [(0usize, None); N];
    for (g, members) in groups.iter().enumerate() {
        for &i in members {
            let id = engines[g].add_agent(node(i));
            place[i] = (g, Some(id));
        }
    }
    let halt = Arc::new(AtomicBool::new(false));
    let mut pumps = Vec::new();
    for i in 0..N {
        let j = (i + 1) % N;
        let (gi, ai) = (place[i].0, place[i].1.unwrap());
        let (gj, aj) = (place[j].0, place[j].1.unwrap());
        if gi == gj {
            engines[gi]
                .connect(ai, 0, aj, 0, Cycle::new(LATENCY))
                .unwrap();
        } else {
            let out = engines[gi]
                .connect_external_output(ai, 0, Cycle::new(LATENCY))
                .unwrap();
            let inp = engines[gj]
                .connect_external_input(aj, 0, Cycle::new(LATENCY))
                .unwrap();
            pumps.push(pump(out, inp, Arc::clone(&halt)));
        }
    }
    (engines, pumps, halt)
}

/// Runs every engine (optionally restoring `from` by name first) for
/// `cycles` in its own thread and returns the per-shard checkpoints in
/// group order.
fn run_groups(
    engines: Vec<Engine<u64>>,
    pumps: Vec<JoinHandle<()>>,
    halt: Arc<AtomicBool>,
    from: Option<Arc<EngineCheckpoint<u64>>>,
    cycles: u64,
) -> Vec<EngineCheckpoint<u64>> {
    let threads: Vec<_> = engines
        .into_iter()
        .map(|mut e| {
            let from = from.clone();
            std::thread::spawn(move || {
                if let Some(cp) = from.as_deref() {
                    e.restore_by_name(cp).unwrap();
                }
                e.run_for(Cycle::new(cycles)).unwrap();
                e.checkpoint().unwrap()
            })
        })
        .collect();
    let cps: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
    halt.store(true, Ordering::Release);
    for p in pumps {
        p.join().unwrap();
    }
    cps
}

fn digests_of(cps: &[EngineCheckpoint<u64>]) -> Vec<(String, u64)> {
    let mut all: Vec<(String, u64)> = cps.iter().flat_map(|cp| cp.agent_digests()).collect();
    all.sort();
    all
}

#[test]
fn four_way_checkpoint_restores_across_shapes() {
    // Reference: an uninterrupted monolithic run to END.
    let (engines, pumps, halt) = build_groups(&[(0..N).collect()]);
    let straight = digests_of(&run_groups(engines, pumps, halt, None, END));

    // Leg 1: a 4-way sharded run to MID; merge the per-shard checkpoints
    // and round-trip the merged checkpoint through the FSCKPT01 on-disk
    // encoding, as the repartitioning manager does.
    let groups4: Vec<Vec<usize>> = (0..N).map(|i| vec![i]).collect();
    let (engines, pumps, halt) = build_groups(&groups4);
    let parts = run_groups(engines, pumps, halt, None, MID);
    let merged = EngineCheckpoint::merge(parts).unwrap();
    assert_eq!(merged.now(), Cycle::new(MID));
    let names: Vec<&str> = merged.agent_names().collect();
    assert_eq!(names, ["n0", "n1", "n2", "n3"], "merge sorts by name");

    let path = std::env::temp_dir().join(format!("fs-resplit-{}.ckpt", std::process::id()));
    merged.save_to(&path).unwrap();
    let merged = EngineCheckpoint::<u64>::load_from(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let merged = Arc::new(merged);

    // Leg 2a: restore into a 2-way deployment and run to END.
    let (engines, pumps, halt) = build_groups(&[vec![0, 1], vec![2, 3]]);
    let two_way = digests_of(&run_groups(
        engines,
        pumps,
        halt,
        Some(Arc::clone(&merged)),
        END - MID,
    ));
    assert_eq!(
        straight, two_way,
        "4-way checkpoint restored 2-way diverged from the straight run"
    );

    // Leg 2b: restore into a monolithic deployment and run to END.
    let (engines, pumps, halt) = build_groups(&[(0..N).collect()]);
    let mono = digests_of(&run_groups(
        engines,
        pumps,
        halt,
        Some(Arc::clone(&merged)),
        END - MID,
    ));
    assert_eq!(
        straight, mono,
        "4-way checkpoint restored monolithically diverged from the straight run"
    );
    assert_eq!(combined_digest(&straight), combined_digest(&mono));
}

/// `restore_by_name` restores a shard from a checkpoint covering *more*
/// agents than the engine hosts: each shard of a new partitioning picks
/// its own agents out of the full merged checkpoint.
#[test]
fn restore_by_name_accepts_superset_checkpoint() {
    // Full checkpoint from a monolithic run to MID.
    let (engines, pumps, halt) = build_groups(&[(0..N).collect()]);
    let full = run_groups(engines, pumps, halt, None, MID).pop().unwrap();
    let full = Arc::new(full);

    // A 3/1 split: the singleton shard restores just its one agent.
    let (engines, pumps, halt) = build_groups(&[vec![0, 1, 2], vec![3]]);
    let skewed = digests_of(&run_groups(
        engines,
        pumps,
        halt,
        Some(Arc::clone(&full)),
        END - MID,
    ));

    let (engines, pumps, halt) = build_groups(&[(0..N).collect()]);
    let straight = digests_of(&run_groups(engines, pumps, halt, None, END));
    assert_eq!(straight, skewed, "3/1 restore diverged");
}
