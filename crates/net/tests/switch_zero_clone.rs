//! Proof that the switch broadcast path allocates no more than unicast.
//!
//! `Switch::route_frame` moves the reassembled wire bytes into the *last*
//! egress port and keeps its destination-port list in a reusable scratch
//! buffer, so a flood that resolves to a single egress port (the common
//! 2-port/top-of-rack case) performs exactly the same heap traffic as a
//! MAC-routed unicast. Before this was fixed, the flood path cloned the
//! wire `Vec<u8>` once per egress port and dropped the original — one
//! extra allocation per frame even with a single destination.
//!
//! The assertion is differential: absolute counts include identical
//! framing/deframing work on both sides, so the flood run must equal the
//! unicast run exactly. This file intentionally contains a single test:
//! other tests running concurrently in the same binary would allocate and
//! pollute the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use firesim_core::{AgentCtx, Cycle, SimAgent, TokenWindow};
use firesim_net::{EtherType, EthernetFrame, Flit, FrameFramer, MacAddr, Switch, SwitchConfig};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to the system allocator; the counter has no
// effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const W: u32 = 64;
const PAYLOAD: usize = 10;

/// Runs one switch round with `frame` arriving on port 0, dropping the
/// outputs. Identical work on both sides of the differential measurement
/// except for the routing decision inside the switch.
fn round(switch: &mut Switch, now: u64, frame: &EthernetFrame) {
    let mut input = TokenWindow::new(W);
    let mut framer = FrameFramer::new();
    framer.enqueue(frame.clone());
    let mut off = 0;
    while let Some(flit) = framer.next_flit() {
        input.push(off, flit).unwrap();
        off += 1;
    }
    let inputs: Vec<TokenWindow<Flit>> = vec![input, TokenWindow::new(W)];
    let mut ctx = AgentCtx::standalone(Cycle::new(now), W, inputs, 2);
    switch.advance(&mut ctx);
    drop(ctx.into_outputs());
}

fn measure(switch: &mut Switch, frame: &EthernetFrame, rounds: u64) -> u64 {
    // Warm up: deframer buffers, egress queues, and the route scratch list
    // reach steady-state capacity.
    for r in 0..4 {
        round(switch, r * u64::from(W), frame);
    }
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    for r in 4..4 + rounds {
        round(switch, r * u64::from(W), frame);
    }
    ALLOC_CALLS.load(Ordering::Relaxed) - before
}

#[test]
fn flood_allocates_no_more_than_unicast() {
    const ROUNDS: u64 = 64;

    // Broadcast destination: floods, resolving to the single non-ingress
    // port of a 2-port switch.
    let mut flood_sw = Switch::new("flood", SwitchConfig::new(2));
    let flood_frame = EthernetFrame::new(
        MacAddr::BROADCAST,
        MacAddr::from_node_index(0),
        EtherType::Stream,
        Bytes::from(vec![0xCD; PAYLOAD]),
    );

    // Routed destination: unicast to port 1 — the wire has always been
    // moved (never cloned) on this path.
    let mut unicast_sw = Switch::new("unicast", SwitchConfig::new(2));
    unicast_sw.add_route(MacAddr::from_node_index(1), 1);
    let unicast_frame = EthernetFrame::new(
        MacAddr::from_node_index(1),
        MacAddr::from_node_index(0),
        EtherType::Stream,
        Bytes::from(vec![0xCD; PAYLOAD]),
    );

    let flood_allocs = measure(&mut flood_sw, &flood_frame, ROUNDS);
    let unicast_allocs = measure(&mut unicast_sw, &unicast_frame, ROUNDS);

    // Both switches really routed every frame.
    assert_eq!(flood_sw.stats_handle().lock().frames_flooded, 4 + ROUNDS);
    assert_eq!(
        unicast_sw.stats_handle().lock().frames_forwarded,
        4 + ROUNDS
    );

    assert_eq!(
        flood_allocs, unicast_allocs,
        "single-destination flood must match unicast allocation-for-allocation \
         (flood {flood_allocs}, unicast {unicast_allocs} over {ROUNDS} rounds)"
    );
}
