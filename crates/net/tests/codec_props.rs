//! Property tests for the frame/flit codec and MAC addressing.

use bytes::Bytes;
use proptest::prelude::*;

use firesim_net::{EtherType, EthernetFrame, FrameDeframer, FrameFramer, MacAddr, FLIT_BYTES};

fn frame_strategy() -> impl Strategy<Value = EthernetFrame> {
    (
        0u64..1_000_000,
        0u64..1_000_000,
        proptest::collection::vec(any::<u8>(), 0..2048),
        0u16..=u16::MAX,
    )
        .prop_map(|(dst, src, payload, ety)| {
            EthernetFrame::new(
                MacAddr::from_node_index(dst),
                MacAddr::from_node_index(src),
                EtherType::from(ety),
                Bytes::from(payload),
            )
        })
}

proptest! {
    /// Any frame survives framing into flits and deframing back.
    #[test]
    fn frame_flit_round_trip(frame in frame_strategy()) {
        let mut framer = FrameFramer::new();
        framer.enqueue(frame.clone());
        let mut deframer = FrameDeframer::new();
        let mut out = None;
        let mut flits = 0usize;
        while let Some(f) = framer.next_flit() {
            flits += 1;
            if let Some(done) = deframer.push(f).unwrap() {
                out = Some(done);
            }
        }
        prop_assert_eq!(flits, frame.wire_len().div_ceil(FLIT_BYTES));
        prop_assert_eq!(out, Some(frame));
    }

    /// A whole burst of frames stays intact and ordered.
    #[test]
    fn burst_round_trip(frames in proptest::collection::vec(frame_strategy(), 1..16)) {
        let mut framer = FrameFramer::new();
        for f in &frames {
            framer.enqueue(f.clone());
        }
        let mut deframer = FrameDeframer::new();
        let mut out = Vec::new();
        while let Some(f) = framer.next_flit() {
            if let Some(done) = deframer.push(f).unwrap() {
                out.push(done);
            }
        }
        prop_assert_eq!(out, frames);
    }

    /// Wire encode/parse of frames round-trips.
    #[test]
    fn wire_round_trip(frame in frame_strategy()) {
        prop_assert_eq!(EthernetFrame::from_wire(&frame.to_wire()).unwrap(), frame);
    }

    /// Node-index MACs round-trip and are never broadcast.
    #[test]
    fn mac_round_trip(idx in 0u64..(1 << 40)) {
        let mac = MacAddr::from_node_index(idx);
        prop_assert_eq!(mac.node_index(), Some(idx));
        prop_assert!(!mac.is_broadcast());
        let parsed: MacAddr = mac.to_string().parse().unwrap();
        prop_assert_eq!(parsed, mac);
    }
}
