//! # firesim-net
//!
//! Cycle-by-cycle datacenter network simulation for FireSim-rs: Ethernet
//! frames, per-cycle flits, link codecs, and the store-and-forward switch
//! model from §III-B1 of the FireSim paper (Karandikar et al., ISCA 2018).
//!
//! In FireSim, switches are *software* models (C++ in the paper, Rust here)
//! while server blades are cycle-exact SoC simulations. Both speak the same
//! language: one token per target cycle per link. A token either carries a
//! [`Flit`] — up to 8 bytes of frame data, 64 bits per cycle being what a
//! 200 Gbit/s interface moves at 3.2 GHz — or is empty (an idle cycle).
//!
//! The [`Switch`] implements the paper's algorithm exactly:
//!
//! 1. **Ingress**: flits are reassembled into full Ethernet frames
//!    (store-and-forward); a completed frame is timestamped with the arrival
//!    cycle of its *last* flit plus the configured minimum port-to-port
//!    switching latency.
//! 2. **Switching step**: all frames that completed during the round are
//!    pushed through a priority queue sorted on timestamp and drained into
//!    output-port buffers according to a static MAC table (with broadcast
//!    duplication).
//! 3. **Egress**: each output port releases a frame flit-by-flit once the
//!    frame's timestamp is ≤ the port's notion of simulation time and the
//!    port is idle; bounded output buffering models congestion drops.
//!
//! Use [`Switch`] directly as a [`firesim_core::SimAgent`], or use
//! higher-level topology construction in `firesim-manager`.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
pub mod frame;
pub mod switch;

pub use codec::{encode_token_frame, FrameDeframer, FrameFramer, TokenDeframer};
pub use frame::{EtherType, EthernetFrame, Flit, MacAddr};
pub use switch::{RouteDecision, Switch, SwitchConfig, SwitchPolicy, SwitchStats};

/// Number of payload bytes a single flit moves per target cycle.
///
/// 8 bytes/cycle at 3.2 GHz = 204.8 Gbit/s raw, the paper's "200 Gbit/s"
/// link. Lower link rates are modeled with the NIC's token-bucket rate
/// limiter, not by changing the flit width.
pub const FLIT_BYTES: usize = 8;
