//! Ethernet frames, MAC addresses, and per-cycle flits.

use core::fmt;
use core::str::FromStr;

use bytes::Bytes;

use firesim_core::snapshot::{Snapshot, SnapshotReader, SnapshotWriter};
use firesim_core::{SimError, SimResult};

/// A 48-bit Ethernet MAC address.
///
/// The simulation manager assigns locally administered addresses
/// (`02:...`) to simulated nodes via [`MacAddr::from_node_index`], mirroring
/// the paper's automatic MAC assignment (§III-B3).
///
/// # Examples
///
/// ```
/// use firesim_net::MacAddr;
///
/// let m = MacAddr::from_node_index(5);
/// assert_eq!(m.to_string(), "02:00:00:00:00:05");
/// assert_eq!("02:00:00:00:00:05".parse::<MacAddr>().unwrap(), m);
/// assert!(MacAddr::BROADCAST.is_broadcast());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The all-ones broadcast address.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Derives the locally administered MAC for simulated node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in 40 bits (a trillion-node cluster
    /// would be remarkable).
    pub fn from_node_index(index: u64) -> Self {
        assert!(index < (1 << 40), "node index too large for MAC scheme");
        let b = index.to_be_bytes();
        MacAddr([0x02, b[3], b[4], b[5], b[6], b[7]])
    }

    /// Inverse of [`MacAddr::from_node_index`]; `None` for MACs outside the
    /// simulated-node scheme.
    pub fn node_index(self) -> Option<u64> {
        if self.0[0] != 0x02 {
            return None;
        }
        let mut v = 0u64;
        for &b in &self.0[1..] {
            v = (v << 8) | u64::from(b);
        }
        Some(v)
    }

    /// True for the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == MacAddr::BROADCAST
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// Error parsing a [`MacAddr`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMacError;

impl fmt::Display for ParseMacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address syntax")
    }
}

impl std::error::Error for ParseMacError {}

impl FromStr for MacAddr {
    type Err = ParseMacError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut out = [0u8; 6];
        let mut parts = s.split(':');
        for slot in &mut out {
            let p = parts.next().ok_or(ParseMacError)?;
            if p.len() != 2 {
                return Err(ParseMacError);
            }
            *slot = u8::from_str_radix(p, 16).map_err(|_| ParseMacError)?;
        }
        if parts.next().is_some() {
            return Err(ParseMacError);
        }
        Ok(MacAddr(out))
    }
}

/// EtherType values used by the simulated software stacks.
///
/// Real protocol numbers are used where they exist; FireSim-rs protocol
/// experiments use values from the IEEE experimental range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum EtherType {
    /// Echo request/reply (the `ping` benchmark, §IV-A).
    Echo,
    /// Key-value protocol (memcached-style experiments, §IV-E, Table III).
    KeyValue,
    /// Bulk stream protocol (iperf-style and bare-metal bandwidth tests).
    Stream,
    /// Remote-memory protocol (page-fault accelerator, §VI).
    RemoteMem,
    /// Anything else.
    Other(u16),
}

impl EtherType {
    /// Wire value.
    pub fn as_u16(self) -> u16 {
        match self {
            EtherType::Echo => 0x88B5,
            EtherType::KeyValue => 0x88B6,
            EtherType::Stream => 0x88B7,
            EtherType::RemoteMem => 0x88B8,
            EtherType::Other(v) => v,
        }
    }
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x88B5 => EtherType::Echo,
            0x88B6 => EtherType::KeyValue,
            0x88B7 => EtherType::Stream,
            0x88B8 => EtherType::RemoteMem,
            other => EtherType::Other(other),
        }
    }
}

/// The Ethernet header length in bytes (dst + src + ethertype).
pub const HEADER_BYTES: usize = 14;

/// An Ethernet frame: header plus opaque payload.
///
/// Frames are what the switch stores and forwards; on links they travel as
/// sequences of [`Flit`]s.
///
/// # Examples
///
/// ```
/// use firesim_net::{EthernetFrame, EtherType, MacAddr};
/// use bytes::Bytes;
///
/// let f = EthernetFrame::new(
///     MacAddr::from_node_index(1),
///     MacAddr::from_node_index(0),
///     EtherType::Echo,
///     Bytes::from_static(b"hello"),
/// );
/// let wire = f.to_wire();
/// assert_eq!(wire.len(), 14 + 5);
/// let back = EthernetFrame::from_wire(&wire).unwrap();
/// assert_eq!(back, f);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Protocol discriminator.
    pub ethertype: EtherType,
    /// Payload bytes (no padding or FCS is modeled).
    pub payload: Bytes,
}

impl EthernetFrame {
    /// Creates a frame.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: Bytes) -> Self {
        EthernetFrame {
            dst,
            src,
            ethertype,
            payload,
        }
    }

    /// Total wire length in bytes (header + payload).
    pub fn wire_len(&self) -> usize {
        HEADER_BYTES + self.payload.len()
    }

    /// Serialises header + payload to wire bytes.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&self.ethertype.as_u16().to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses wire bytes back into a frame.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::Truncated`] when shorter than a header.
    pub fn from_wire(bytes: &[u8]) -> Result<Self, FrameError> {
        if bytes.len() < HEADER_BYTES {
            return Err(FrameError::Truncated { len: bytes.len() });
        }
        let mut dst = [0u8; 6];
        dst.copy_from_slice(&bytes[0..6]);
        let mut src = [0u8; 6];
        src.copy_from_slice(&bytes[6..12]);
        let ethertype = u16::from_be_bytes([bytes[12], bytes[13]]).into();
        Ok(EthernetFrame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
            payload: Bytes::copy_from_slice(&bytes[HEADER_BYTES..]),
        })
    }
}

/// Errors decoding frames from the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// Fewer bytes than an Ethernet header.
    Truncated {
        /// Observed byte count.
        len: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { len } => {
                write!(f, "frame truncated: {len} bytes is shorter than a header")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// One target cycle's worth of link data: up to 8 bytes plus end-of-frame
/// marking.
///
/// This is FireSim's network token payload (§III-B2): the `data`/`len` pair
/// is the "target payload field" and `last` is the metadata bit that lets
/// the transport find frame boundaries without parsing the link-layer
/// protocol. The token-level `valid` bit is represented by presence in the
/// surrounding [`firesim_core::TokenWindow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Up to 8 data bytes, little-endian packed (byte 0 in bits 0-7).
    pub data: u64,
    /// Number of valid bytes in `data` (1..=8).
    pub len: u8,
    /// True on the final flit of a frame.
    pub last: bool,
}

impl Snapshot for MacAddr {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_bytes(&self.0);
    }
    fn load(r: &mut SnapshotReader<'_>) -> SimResult<Self> {
        let b = r.get_bytes()?;
        let b: [u8; 6] = b
            .try_into()
            .map_err(|_| SimError::checkpoint("MAC address snapshot is not 6 bytes"))?;
        Ok(MacAddr(b))
    }
}

impl Snapshot for Flit {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.data);
        w.put_u8(self.len);
        w.put_bool(self.last);
    }
    fn load(r: &mut SnapshotReader<'_>) -> SimResult<Self> {
        let data = r.get_u64()?;
        let len = r.get_u8()?;
        let last = r.get_bool()?;
        if len == 0 || len > 8 {
            return Err(SimError::checkpoint(format!(
                "flit snapshot has invalid length {len}"
            )));
        }
        Ok(Flit { data, len, last })
    }
}

impl Flit {
    /// Builds a flit from a byte slice.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is empty or longer than 8.
    pub fn from_bytes(bytes: &[u8], last: bool) -> Self {
        assert!(
            !bytes.is_empty() && bytes.len() <= 8,
            "flit must carry 1..=8 bytes"
        );
        let mut data = [0u8; 8];
        data[..bytes.len()].copy_from_slice(bytes);
        Flit {
            data: u64::from_le_bytes(data),
            len: bytes.len() as u8,
            last,
        }
    }

    /// The valid bytes of this flit.
    pub fn bytes(&self) -> [u8; 8] {
        self.data.to_le_bytes()
    }

    /// The number of valid bytes.
    pub fn byte_len(&self) -> usize {
        usize::from(self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_node_index_round_trip() {
        for idx in [0u64, 1, 255, 256, 65_535, 1 << 32] {
            let m = MacAddr::from_node_index(idx);
            assert_eq!(m.node_index(), Some(idx));
        }
        assert_eq!(MacAddr::BROADCAST.node_index(), None);
    }

    #[test]
    fn mac_parse_and_display() {
        let m: MacAddr = "de:ad:be:ef:00:42".parse().unwrap();
        assert_eq!(m.to_string(), "de:ad:be:ef:00:42");
        assert!("de:ad:be".parse::<MacAddr>().is_err());
        assert!("zz:ad:be:ef:00:42".parse::<MacAddr>().is_err());
        assert!("de:ad:be:ef:00:42:11".parse::<MacAddr>().is_err());
        assert!("dead:be:ef:00:42".parse::<MacAddr>().is_err());
    }

    #[test]
    fn ethertype_round_trip() {
        for t in [
            EtherType::Echo,
            EtherType::KeyValue,
            EtherType::Stream,
            EtherType::RemoteMem,
            EtherType::Other(0x0800),
        ] {
            assert_eq!(EtherType::from(t.as_u16()), t);
        }
    }

    #[test]
    fn frame_wire_round_trip() {
        let f = EthernetFrame::new(
            MacAddr::from_node_index(7),
            MacAddr::from_node_index(3),
            EtherType::KeyValue,
            Bytes::from(vec![1, 2, 3, 4, 5, 6, 7, 8, 9]),
        );
        let wire = f.to_wire();
        assert_eq!(wire.len(), 23);
        assert_eq!(EthernetFrame::from_wire(&wire).unwrap(), f);
    }

    #[test]
    fn frame_empty_payload() {
        let f = EthernetFrame::new(
            MacAddr::BROADCAST,
            MacAddr::from_node_index(0),
            EtherType::Echo,
            Bytes::new(),
        );
        let wire = f.to_wire();
        assert_eq!(wire.len(), HEADER_BYTES);
        assert_eq!(EthernetFrame::from_wire(&wire).unwrap(), f);
    }

    #[test]
    fn truncated_frame_rejected() {
        assert!(matches!(
            EthernetFrame::from_wire(&[0u8; 5]),
            Err(FrameError::Truncated { len: 5 })
        ));
    }

    #[test]
    fn flit_from_bytes() {
        let f = Flit::from_bytes(&[1, 2, 3], true);
        assert_eq!(f.byte_len(), 3);
        assert!(f.last);
        assert_eq!(&f.bytes()[..3], &[1, 2, 3]);

        let full = Flit::from_bytes(&[9; 8], false);
        assert_eq!(full.byte_len(), 8);
        assert!(!full.last);
    }

    #[test]
    #[should_panic(expected = "flit must carry 1..=8 bytes")]
    fn flit_too_long_panics() {
        let _ = Flit::from_bytes(&[0; 9], false);
    }
}
