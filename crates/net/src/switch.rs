//! The store-and-forward switch model (paper §III-B1).
//!
//! Switches are software models with a parameterisable number of ports, each
//! of which connects to either a server NIC or a port on another switch.
//! Port bandwidth is fixed by the flit width (8 bytes/cycle); link latency is
//! a property of the connecting channel; buffering and switching latency are
//! runtime-configurable here — no "resynthesis" required, exactly as in the
//! paper.
//!
//! Algorithm per simulation round (one token window):
//!
//! 1. **Ingress** (per port): tokens carrying valid data are buffered into
//!    full frames; a completed frame is timestamped with the arrival cycle
//!    of its last token plus the minimum switching latency.
//! 2. **Global switching step**: all frames completed this round are pushed
//!    through a priority queue sorted on timestamp, then drained into output
//!    buffers chosen by a static MAC table. Broadcast (or unknown-MAC)
//!    frames are duplicated to every port except the ingress port.
//! 3. **Egress** (per port): frames are "released" flit-by-flit when their
//!    timestamp is ≤ the switch's simulation time. A full output buffer
//!    drops newly switched frames (congestion); an optional bound on
//!    release delay models switch-internal ageing drops.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;

use firesim_core::snapshot::{Checkpoint, Snapshot, SnapshotReader, SnapshotWriter};
use firesim_core::stats::TimeSeries;
use firesim_core::{AgentCtx, Cycle, PressureWindow, SimAgent, SimError, SimResult};

use crate::codec::FrameDeframer;
use crate::frame::{Flit, MacAddr};
use crate::FLIT_BYTES;

/// Runtime-configurable switch parameters.
///
/// # Examples
///
/// ```
/// use firesim_net::SwitchConfig;
///
/// let cfg = SwitchConfig::new(8).switching_latency(10);
/// assert_eq!(cfg.ports, 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchConfig {
    /// Number of ports (each is one input + one output on the agent).
    pub ports: usize,
    /// Minimum port-to-port latency in cycles (the paper's validation runs
    /// use 10).
    pub switching_latency: u64,
    /// Output buffering per port, in bytes. When a switched frame does not
    /// fit, it is dropped (congestion modeling).
    pub output_buffer_bytes: usize,
    /// Optional upper bound on the delay between a frame's release
    /// timestamp and simulation time, after which the frame is dropped.
    pub max_release_delay: Option<u64>,
    /// When set, aggregate ingress bytes are recorded into a time series
    /// every this-many cycles (must be a multiple of the engine window).
    /// Used by the Fig 6 bandwidth-saturation experiment.
    pub bandwidth_sample_cycles: Option<u64>,
    /// When nonzero, the first N switched frames are captured (arrival
    /// cycle, ingress port, wire bytes) into [`SwitchStats::captured`] —
    /// a pcap-style debugging aid.
    pub capture_frames: usize,
}

impl SwitchConfig {
    /// A switch with `ports` ports and the paper's default parameters.
    pub fn new(ports: usize) -> Self {
        SwitchConfig {
            ports,
            switching_latency: 10,
            output_buffer_bytes: 512 * 1024,
            max_release_delay: None,
            bandwidth_sample_cycles: None,
            capture_frames: 0,
        }
    }

    /// Sets the minimum port-to-port switching latency (cycles).
    pub fn switching_latency(mut self, cycles: u64) -> Self {
        self.switching_latency = cycles;
        self
    }

    /// Sets per-port output buffering in bytes.
    pub fn output_buffer_bytes(mut self, bytes: usize) -> Self {
        self.output_buffer_bytes = bytes;
        self
    }

    /// Bounds the release delay (ageing drop), in cycles.
    pub fn max_release_delay(mut self, cycles: u64) -> Self {
        self.max_release_delay = Some(cycles);
        self
    }

    /// Enables ingress-bandwidth sampling with the given bucket size.
    pub fn sample_bandwidth(mut self, bucket_cycles: u64) -> Self {
        self.bandwidth_sample_cycles = Some(bucket_cycles);
        self
    }

    /// Captures the first `frames` switched frames for inspection.
    pub fn capture(mut self, frames: usize) -> Self {
        self.capture_frames = frames;
        self
    }
}

/// Counters and series exposed by a [`Switch`].
#[derive(Debug, Default)]
pub struct SwitchStats {
    /// Frames forwarded to exactly one output.
    pub frames_forwarded: u64,
    /// Frames duplicated to all ports (broadcast or unknown destination).
    pub frames_flooded: u64,
    /// Frames dropped because an output buffer was full.
    pub drops_buffer: u64,
    /// Frames dropped by the release-delay bound.
    pub drops_delay: u64,
    /// Total bytes received across all ports.
    pub ingress_bytes: u64,
    /// Total bytes transmitted across all ports.
    pub egress_bytes: u64,
    /// Aggregate ingress bytes per sample bucket (see
    /// [`SwitchConfig::sample_bandwidth`]). Values are raw byte counts.
    pub ingress_bandwidth: TimeSeries,
    /// Captured frames: `(arrival cycle of last flit, ingress port, wire
    /// bytes)` (see [`SwitchConfig::capture`]).
    pub captured: Vec<(u64, usize, Vec<u8>)>,
    /// Of [`drops_buffer`](Self::drops_buffer), how many are attributable
    /// to a scenario [`PressureWindow`]: the frame would have fit the
    /// configured buffering but not the pressured effective buffering.
    pub scenario_drops_buffer: u64,
    /// Of [`drops_delay`](Self::drops_delay), how many are attributable to
    /// a scenario [`PressureWindow`] tightening the release-delay bound.
    pub scenario_drops_delay: u64,
    /// Per-port high-water mark of egress-buffer occupancy, in bytes.
    pub buffer_highwater: Vec<u64>,
}

/// Where a switched frame should go, as decided by a [`SwitchPolicy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteDecision {
    /// Deliver to these output ports (the ingress port is never echoed).
    Ports(Vec<usize>),
    /// Duplicate to every port except the ingress.
    Flood,
    /// Drop the frame.
    Drop,
}

/// A pluggable switching algorithm (paper §III-B1: "a user can easily
/// plug in their own switching algorithm or their own link-layer
/// protocol parsing code ... to model new switch designs").
///
/// The default behaviour — static MAC table with flooding for unknown
/// destinations — is used when no policy is installed; a custom policy
/// sees the raw wire bytes and full ingress context.
pub trait SwitchPolicy: Send {
    /// Decides the output set for a frame arriving on `ingress` of a
    /// switch with `ports` ports.
    fn route(&mut self, wire: &[u8], ingress: usize, ports: usize) -> RouteDecision;
}

/// A queued frame waiting on an output port.
#[derive(Debug)]
struct QueuedFrame {
    release_at: u64,
    wire: Vec<u8>,
}

/// Per-output-port egress state.
#[derive(Debug, Default)]
struct EgressPort {
    queue: VecDeque<QueuedFrame>,
    queued_bytes: usize,
    /// In-flight transmission: remaining wire bytes, next cursor.
    current: Option<(Vec<u8>, usize)>,
}

/// The switch model. Implements [`SimAgent`] with `ports` inputs and
/// `ports` outputs; input `i` and output `i` together form port `i`.
///
/// Routes are installed with [`Switch::add_route`]; in full simulations the
/// manager populates them from the topology (§III-B3).
pub struct Switch {
    name: String,
    config: SwitchConfig,
    mac_table: HashMap<MacAddr, usize>,
    deframers: Vec<FrameDeframer>,
    egress: Vec<EgressPort>,
    /// Frames completed during the current round, pending the switching
    /// step: `(timestamp, ingress port, sequence, wire bytes)`.
    round_frames: BinaryHeap<Reverse<(u64, usize, u64, FrameBytes)>>,
    seq: u64,
    bucket_bytes: u64,
    policy: Option<Box<dyn SwitchPolicy>>,
    stats: Arc<Mutex<SwitchStats>>,
    /// Scenario buffer-pressure windows (see [`PressureWindow`]). Pure
    /// target-time configuration installed before the run: during a round
    /// overlapping an active window, the effective output buffering and
    /// release-delay bound shrink to the window's values. Not checkpointed
    /// — like routes and config, the rebuilder re-applies the scenario.
    pressure: Arc<Mutex<Vec<PressureWindow>>>,
    /// Reusable egress-port list for [`route_frame`](Self::route_frame)
    /// (host-side scratch, not checkpointed).
    route_scratch: Vec<usize>,
}

/// Wrapper ordering frame bytes only by identity-irrelevant equality; kept
/// inside the heap tuple to make `BinaryHeap` total-order requirements
/// explicit and deterministic.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
struct FrameBytes(Vec<u8>);

impl std::fmt::Debug for Switch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Switch")
            .field("name", &self.name)
            .field("ports", &self.config.ports)
            .field("custom_policy", &self.policy.is_some())
            .finish()
    }
}

impl Switch {
    /// Creates a switch.
    ///
    /// # Panics
    ///
    /// Panics if the config has fewer than 2 ports.
    pub fn new(name: impl Into<String>, config: SwitchConfig) -> Self {
        assert!(config.ports >= 2, "a switch needs at least 2 ports");
        let stats = SwitchStats {
            buffer_highwater: vec![0; config.ports],
            ..SwitchStats::default()
        };
        Switch {
            name: name.into(),
            deframers: (0..config.ports).map(|_| FrameDeframer::new()).collect(),
            egress: (0..config.ports).map(|_| EgressPort::default()).collect(),
            mac_table: HashMap::new(),
            round_frames: BinaryHeap::new(),
            seq: 0,
            bucket_bytes: 0,
            policy: None,
            stats: Arc::new(Mutex::new(stats)),
            pressure: Arc::new(Mutex::new(Vec::new())),
            route_scratch: Vec::new(),
            config,
        }
    }

    /// Installs a custom switching algorithm, replacing the default
    /// MAC-table routing.
    pub fn set_policy(&mut self, policy: Box<dyn SwitchPolicy>) {
        self.policy = Some(policy);
    }

    /// The switch's configuration.
    pub fn config(&self) -> &SwitchConfig {
        &self.config
    }

    /// Installs a static route: frames for `mac` leave through `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn add_route(&mut self, mac: MacAddr, port: usize) {
        assert!(port < self.config.ports, "port {port} out of range");
        self.mac_table.insert(mac, port);
    }

    /// Shared handle to this switch's statistics, usable while the engine
    /// owns the switch.
    pub fn stats_handle(&self) -> Arc<Mutex<SwitchStats>> {
        Arc::clone(&self.stats)
    }

    /// Shared handle to this switch's scenario pressure windows, usable
    /// while the engine owns the switch. The manager pushes compiled
    /// [`PressureWindow`]s here when applying a chaos scenario; because
    /// windows are pure functions of the target cycle, installing the same
    /// windows before a run (or before resuming from a checkpoint) always
    /// reproduces the same behaviour.
    pub fn pressure_handle(&self) -> Arc<Mutex<Vec<PressureWindow>>> {
        Arc::clone(&self.pressure)
    }

    /// The effective `(output buffering, release-delay bound)` for a round
    /// spanning `[now, now + window)`: the configured values tightened by
    /// the minimum over every overlapping pressure window. Pressure applies
    /// at token-window granularity — a round overlapping an active window
    /// runs fully pressured — which keeps activation a pure function of
    /// target time (window boundaries are target-time aligned on every
    /// host configuration).
    fn effective_limits(&self, now: u64, window: u64) -> (usize, Option<u64>) {
        let mut buffer = self.config.output_buffer_bytes;
        let mut delay = self.config.max_release_delay;
        for p in self.pressure.lock().iter() {
            if p.from < now + window && p.until > now {
                if let Some(b) = p.buffer_bytes {
                    buffer = buffer.min(b);
                }
                if let Some(d) = p.max_release_delay {
                    delay = Some(delay.map_or(d, |cur| cur.min(d)));
                }
            }
        }
        (buffer, delay)
    }

    /// Routes one switched frame into output buffers.
    ///
    /// Multi-destination frames clone the wire bytes for all egress ports
    /// but the last, which receives the original `wire` by move; the list of
    /// destination ports is built in a reusable scratch buffer so a
    /// steady-state unicast or single-destination flood allocates nothing
    /// beyond what ingress deframing already paid.
    fn route_frame(
        &mut self,
        ingress: usize,
        ts: u64,
        wire: Vec<u8>,
        buffer_limit: usize,
        stats: &mut SwitchStats,
    ) {
        let mut targets = std::mem::take(&mut self.route_scratch);
        targets.clear();
        if let Some(policy) = &mut self.policy {
            match policy.route(&wire, ingress, self.config.ports) {
                RouteDecision::Drop => {
                    stats.drops_buffer += 1;
                }
                RouteDecision::Flood => {
                    stats.frames_flooded += 1;
                    targets.extend((0..self.config.ports).filter(|&p| p != ingress));
                }
                RouteDecision::Ports(ports) => {
                    stats.frames_forwarded += 1;
                    targets.extend(
                        ports
                            .into_iter()
                            .filter(|&p| p < self.config.ports && p != ingress),
                    );
                }
            }
        } else {
            let dst = MacAddr([wire[0], wire[1], wire[2], wire[3], wire[4], wire[5]]);
            if dst.is_broadcast() || !self.mac_table.contains_key(&dst) {
                stats.frames_flooded += 1;
                targets.extend((0..self.config.ports).filter(|&p| p != ingress));
            } else {
                stats.frames_forwarded += 1;
                targets.push(self.mac_table[&dst]);
            }
        }
        if let Some((&last, rest)) = targets.split_last() {
            let base = self.config.output_buffer_bytes;
            for &p in rest {
                Self::enqueue_out(
                    &mut self.egress[p],
                    p,
                    buffer_limit,
                    base,
                    ts,
                    wire.clone(),
                    stats,
                );
            }
            Self::enqueue_out(
                &mut self.egress[last],
                last,
                buffer_limit,
                base,
                ts,
                wire,
                stats,
            );
        }
        self.route_scratch = targets;
    }

    fn enqueue_out(
        port: &mut EgressPort,
        port_idx: usize,
        buffer_limit: usize,
        base_limit: usize,
        ts: u64,
        wire: Vec<u8>,
        stats: &mut SwitchStats,
    ) {
        let occupied = port.queued_bytes + wire.len();
        if occupied > buffer_limit {
            stats.drops_buffer += 1;
            // Attribute the drop to the scenario when the frame would have
            // fit the *configured* buffering and only the pressured
            // effective limit rejected it.
            if occupied <= base_limit {
                stats.scenario_drops_buffer += 1;
            }
            return;
        }
        port.queued_bytes += wire.len();
        if let Some(hw) = stats.buffer_highwater.get_mut(port_idx) {
            *hw = (*hw).max(port.queued_bytes as u64);
        }
        port.queue.push_back(QueuedFrame {
            release_at: ts,
            wire,
        });
    }
}

impl Snapshot for EgressPort {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.queue.len());
        for f in &self.queue {
            w.put_u64(f.release_at);
            w.put_bytes(&f.wire);
        }
        w.put_usize(self.queued_bytes);
        match &self.current {
            None => w.put_bool(false),
            Some((wire, cursor)) => {
                w.put_bool(true);
                w.put_bytes(wire);
                w.put_usize(*cursor);
            }
        }
    }
    fn load(r: &mut SnapshotReader<'_>) -> SimResult<Self> {
        let n = r.get_usize()?;
        let mut queue = VecDeque::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            queue.push_back(QueuedFrame {
                release_at: r.get_u64()?,
                wire: r.get_bytes()?.to_vec(),
            });
        }
        let queued_bytes = r.get_usize()?;
        let current = if r.get_bool()? {
            Some((r.get_bytes()?.to_vec(), r.get_usize()?))
        } else {
            None
        };
        Ok(EgressPort {
            queue,
            queued_bytes,
            current,
        })
    }
}

/// Checkpointing captures only *run-evolving* state: reassembly buffers,
/// egress queues, sequence and bandwidth-bucket counters, and statistics.
/// Configuration and MAC routes are re-derived by rebuilding the switch
/// from its topology, and a custom [`SwitchPolicy`] is assumed stateless —
/// its installation is the rebuilder's job, its internal state (if any) is
/// not captured.
impl Checkpoint for Switch {
    fn save_state(&self, w: &mut SnapshotWriter) -> SimResult<()> {
        if !self.round_frames.is_empty() {
            // Drained at the end of every `advance`; non-empty means we are
            // mid-round, which is not a checkpointable boundary.
            return Err(SimError::checkpoint(format!(
                "switch {} has undrained round frames",
                self.name
            )));
        }
        w.put_seq(self.deframers.iter());
        w.put_seq(self.egress.iter());
        w.put_u64(self.seq);
        w.put_u64(self.bucket_bytes);
        let stats = self.stats.lock();
        w.put_u64(stats.frames_forwarded);
        w.put_u64(stats.frames_flooded);
        w.put_u64(stats.drops_buffer);
        w.put_u64(stats.drops_delay);
        w.put_u64(stats.ingress_bytes);
        w.put_u64(stats.egress_bytes);
        w.put(&stats.ingress_bandwidth);
        w.put_usize(stats.captured.len());
        for (cycle, port, wire) in &stats.captured {
            w.put_u64(*cycle);
            w.put_usize(*port);
            w.put_bytes(wire);
        }
        w.put_u64(stats.scenario_drops_buffer);
        w.put_u64(stats.scenario_drops_delay);
        w.put_usize(stats.buffer_highwater.len());
        for hw in &stats.buffer_highwater {
            w.put_u64(*hw);
        }
        Ok(())
    }

    fn restore_state(&mut self, r: &mut SnapshotReader<'_>) -> SimResult<()> {
        let deframers: Vec<FrameDeframer> = r.get_seq()?;
        let egress: Vec<EgressPort> = r.get_seq()?;
        if deframers.len() != self.config.ports || egress.len() != self.config.ports {
            return Err(SimError::checkpoint(format!(
                "switch {} snapshot has {} ports, config has {}",
                self.name,
                deframers.len(),
                self.config.ports
            )));
        }
        self.deframers = deframers;
        self.egress = egress;
        self.round_frames.clear();
        self.seq = r.get_u64()?;
        self.bucket_bytes = r.get_u64()?;
        // Mutate the shared stats in place so external handles stay live.
        let mut stats = self.stats.lock();
        stats.frames_forwarded = r.get_u64()?;
        stats.frames_flooded = r.get_u64()?;
        stats.drops_buffer = r.get_u64()?;
        stats.drops_delay = r.get_u64()?;
        stats.ingress_bytes = r.get_u64()?;
        stats.egress_bytes = r.get_u64()?;
        stats.ingress_bandwidth = r.get()?;
        let n = r.get_usize()?;
        stats.captured.clear();
        for _ in 0..n {
            let cycle = r.get_u64()?;
            let port = r.get_usize()?;
            let wire = r.get_bytes()?.to_vec();
            stats.captured.push((cycle, port, wire));
        }
        stats.scenario_drops_buffer = r.get_u64()?;
        stats.scenario_drops_delay = r.get_u64()?;
        let n = r.get_usize()?;
        if n != self.config.ports {
            return Err(SimError::checkpoint(format!(
                "switch {} snapshot has {} high-water entries, config has {} ports",
                self.name, n, self.config.ports
            )));
        }
        stats.buffer_highwater.clear();
        for _ in 0..n {
            stats.buffer_highwater.push(r.get_u64()?);
        }
        Ok(())
    }
}

impl SimAgent for Switch {
    type Token = Flit;

    fn name(&self) -> &str {
        &self.name
    }

    fn num_inputs(&self) -> usize {
        self.config.ports
    }

    fn num_outputs(&self) -> usize {
        self.config.ports
    }

    /// Switches are passive infrastructure: they report `done` so that
    /// `run_until_done` terminates once every *blade* is done.
    fn done(&self) -> bool {
        true
    }

    fn as_checkpoint(&mut self) -> Option<&mut dyn Checkpoint> {
        Some(self)
    }

    fn app_counters(&self, out: &mut Vec<(String, u64)>) {
        let s = self.stats.lock();
        out.push(("frames_forwarded".to_owned(), s.frames_forwarded));
        out.push(("frames_flooded".to_owned(), s.frames_flooded));
        out.push(("drops_buffer".to_owned(), s.drops_buffer));
        out.push(("drops_delay".to_owned(), s.drops_delay));
        out.push(("ingress_bytes".to_owned(), s.ingress_bytes));
        out.push(("egress_bytes".to_owned(), s.egress_bytes));
        out.push(("scenario_drops_buffer".to_owned(), s.scenario_drops_buffer));
        out.push(("scenario_drops_delay".to_owned(), s.scenario_drops_delay));
        for (i, hw) in s.buffer_highwater.iter().enumerate() {
            out.push((format!("p{i}_buffer_highwater"), *hw));
        }
    }

    fn advance(&mut self, ctx: &mut AgentCtx<Flit>) {
        let now = ctx.now().as_u64();
        let window = u64::from(ctx.window());
        let (buffer_limit, delay_bound) = self.effective_limits(now, window);
        let stats = Arc::clone(&self.stats);
        let mut stats = stats.lock();

        // --- Ingress: reassemble flits into timestamped frames. ---
        for port in 0..self.config.ports {
            for (off, flit) in ctx.drain_input(port) {
                stats.ingress_bytes += flit.byte_len() as u64;
                self.bucket_bytes += flit.byte_len() as u64;
                if let Some(wire) = self.deframers[port].push_raw(flit) {
                    // Frames shorter than a header cannot be routed; a real
                    // switch would count a runt. We drop it.
                    if wire.len() < crate::frame::HEADER_BYTES {
                        stats.drops_buffer += 1;
                        continue;
                    }
                    if stats.captured.len() < self.config.capture_frames {
                        stats
                            .captured
                            .push((now + u64::from(off), port, wire.clone()));
                    }
                    let ts = now + u64::from(off) + self.config.switching_latency;
                    self.round_frames
                        .push(Reverse((ts, port, self.seq, FrameBytes(wire))));
                    self.seq += 1;
                }
            }
        }

        // --- Global switching step: drain in timestamp order. ---
        while let Some(Reverse((ts, ingress, _seq, FrameBytes(wire)))) = self.round_frames.pop() {
            self.route_frame(ingress, ts, wire, buffer_limit, &mut stats);
        }

        // --- Egress: release frames flit-by-flit. ---
        for port in 0..self.config.ports {
            let mut cycle = 0u64;
            while cycle < window {
                // Continue an in-flight transmission.
                if let Some((wire, cursor)) = self.egress[port].current.take() {
                    let mut cursor = cursor;
                    let mut wire = wire;
                    while cursor < wire.len() && cycle < window {
                        let remaining = wire.len() - cursor;
                        let take = remaining.min(FLIT_BYTES);
                        let last = remaining <= FLIT_BYTES;
                        let flit = Flit::from_bytes(&wire[cursor..cursor + take], last);
                        ctx.push_output(port, cycle as u32, flit);
                        stats.egress_bytes += take as u64;
                        cursor += take;
                        cycle += 1;
                    }
                    if cursor < wire.len() {
                        wire.drain(..cursor);
                        self.egress[port].current = Some((wire, 0));
                        break; // window exhausted
                    }
                    continue;
                }
                // Start the next queued frame, if releasable.
                let Some(head) = self.egress[port].queue.front() else {
                    break;
                };
                let abs = now + cycle;
                if head.release_at > now + window - 1 {
                    break; // nothing releasable this round
                }
                let start = head.release_at.max(abs);
                if start > abs {
                    cycle = start - now;
                    if cycle >= window {
                        break;
                    }
                }
                let frame = self.egress[port].queue.pop_front().expect("peeked");
                self.egress[port].queued_bytes -= frame.wire.len();
                if let Some(bound) = delay_bound {
                    let release_cycle = now + cycle;
                    let delay = release_cycle.saturating_sub(frame.release_at);
                    if delay > bound {
                        stats.drops_delay += 1;
                        // Scenario-attributed when the configured bound (if
                        // any) would have let the frame through.
                        if self.config.max_release_delay.is_none_or(|b| delay <= b) {
                            stats.scenario_drops_delay += 1;
                        }
                        continue;
                    }
                }
                self.egress[port].current = Some((frame.wire, 0));
            }
        }

        // --- Bandwidth sampling. ---
        if let Some(bucket) = self.config.bandwidth_sample_cycles {
            assert!(
                bucket % window == 0,
                "bandwidth_sample_cycles ({bucket}) must be a multiple of the \
                 simulation window ({window})"
            );
            let end = now + window;
            if end.is_multiple_of(bucket) {
                stats
                    .ingress_bandwidth
                    .record(Cycle::new(end), self.bucket_bytes as f64);
                self.bucket_bytes = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::FrameFramer;
    use crate::frame::{EtherType, EthernetFrame};
    use bytes::Bytes;
    use firesim_core::TokenWindow;

    const W: u32 = 64;

    fn mk_frame(dst: u64, src: u64, n: usize) -> EthernetFrame {
        EthernetFrame::new(
            MacAddr::from_node_index(dst),
            MacAddr::from_node_index(src),
            EtherType::Stream,
            Bytes::from(vec![0xCD; n]),
        )
    }

    /// Drives `switch` one round with the given per-port input windows,
    /// returning the output windows.
    fn round(
        switch: &mut Switch,
        now: u64,
        inputs: Vec<TokenWindow<Flit>>,
    ) -> Vec<TokenWindow<Flit>> {
        let ports = switch.config().ports;
        let mut ctx = AgentCtx::standalone(Cycle::new(now), W, inputs, ports);
        switch.advance(&mut ctx);
        ctx.into_outputs()
    }

    fn empty_inputs(ports: usize) -> Vec<TokenWindow<Flit>> {
        (0..ports).map(|_| TokenWindow::new(W)).collect()
    }

    fn window_with_frame(frame: &EthernetFrame, start: u32) -> TokenWindow<Flit> {
        let mut w = TokenWindow::new(W);
        let mut framer = FrameFramer::new();
        framer.enqueue(frame.clone());
        let mut off = start;
        while let Some(f) = framer.next_flit() {
            w.push(off, f).unwrap();
            off += 1;
        }
        w
    }

    fn collect_frames(outputs: &[TokenWindow<Flit>], port: usize) -> Vec<EthernetFrame> {
        let mut deframer = FrameDeframer::new();
        let mut frames = Vec::new();
        for (_off, flit) in outputs[port].iter() {
            if let Some(f) = deframer.push(*flit).unwrap() {
                frames.push(f);
            }
        }
        frames
    }

    #[test]
    fn forwards_to_routed_port_with_min_latency() {
        let mut sw = Switch::new("tor", SwitchConfig::new(2).switching_latency(10));
        sw.add_route(MacAddr::from_node_index(1), 1);
        let frame = mk_frame(1, 0, 10); // 24 wire bytes = 3 flits
        let inputs = vec![window_with_frame(&frame, 0), TokenWindow::new(W)];
        let out = round(&mut sw, 0, inputs);
        // Last flit arrives at cycle 2; ts = 12; first output flit at 12.
        let flits: Vec<u32> = out[1].iter().map(|(o, _)| o).collect();
        assert_eq!(flits, vec![12, 13, 14]);
        assert_eq!(collect_frames(&out, 1), vec![frame]);
        // Nothing echoed back out the ingress port.
        assert!(out[0].is_empty());
        assert_eq!(sw.stats_handle().lock().frames_forwarded, 1);
    }

    #[test]
    fn unknown_mac_floods_all_but_ingress() {
        let mut sw = Switch::new("tor", SwitchConfig::new(4));
        let frame = mk_frame(9, 0, 8);
        let mut inputs = empty_inputs(4);
        inputs[2] = window_with_frame(&frame, 0);
        let out = round(&mut sw, 0, inputs);
        for port in [0usize, 1, 3] {
            assert_eq!(
                collect_frames(&out, port),
                vec![frame.clone()],
                "port {port}"
            );
        }
        assert!(out[2].is_empty());
        assert_eq!(sw.stats_handle().lock().frames_flooded, 1);
    }

    #[test]
    fn broadcast_floods() {
        let mut sw = Switch::new("tor", SwitchConfig::new(3));
        sw.add_route(MacAddr::from_node_index(1), 1);
        let frame = EthernetFrame::new(
            MacAddr::BROADCAST,
            MacAddr::from_node_index(0),
            EtherType::Echo,
            Bytes::from_static(b"hi"),
        );
        let mut inputs = empty_inputs(3);
        inputs[0] = window_with_frame(&frame, 0);
        let out = round(&mut sw, 0, inputs);
        assert_eq!(collect_frames(&out, 1), vec![frame.clone()]);
        assert_eq!(collect_frames(&out, 2), vec![frame]);
    }

    #[test]
    fn frame_spanning_rounds_is_released_next_round() {
        let mut sw = Switch::new("tor", SwitchConfig::new(2).switching_latency(10));
        sw.add_route(MacAddr::from_node_index(1), 1);
        let frame = mk_frame(1, 0, 10); // 3 flits
                                        // Start the frame 2 cycles before the end of the window: flits at
                                        // W-2, W-1 in round 0 and the last flit at 0 in round 1.
        let mut w0 = TokenWindow::new(W);
        let mut w1 = TokenWindow::new(W);
        let mut framer = FrameFramer::new();
        framer.enqueue(frame.clone());
        w0.push(W - 2, framer.next_flit().unwrap()).unwrap();
        w0.push(W - 1, framer.next_flit().unwrap()).unwrap();
        w1.push(0, framer.next_flit().unwrap()).unwrap();
        assert!(framer.is_idle());

        let out0 = round(&mut sw, 0, vec![w0, TokenWindow::new(W)]);
        assert!(out0[1].is_empty());
        let out1 = round(&mut sw, u64::from(W), vec![w1, TokenWindow::new(W)]);
        // Last flit at absolute cycle W; ts = W + 10; offset within round 1
        // is 10.
        let flits: Vec<u32> = out1[1].iter().map(|(o, _)| o).collect();
        assert_eq!(flits, vec![10, 11, 12]);
        assert_eq!(collect_frames(&out1, 1), vec![frame]);
    }

    #[test]
    fn contention_serialises_and_preserves_timestamp_order() {
        // Two ingress ports send to the same egress port simultaneously;
        // the earlier-completing frame goes first, the second queues.
        let mut sw = Switch::new("tor", SwitchConfig::new(3).switching_latency(10));
        sw.add_route(MacAddr::from_node_index(2), 2);
        let f_a = mk_frame(2, 0, 50); // 8 flits (64 wire bytes)
        let f_b = mk_frame(2, 1, 10); // 3 flits
        let mut inputs = empty_inputs(3);
        inputs[0] = window_with_frame(&f_a, 0); // completes at cycle 7
        inputs[1] = window_with_frame(&f_b, 0); // completes at cycle 2
        let out = round(&mut sw, 0, inputs);
        let frames = collect_frames(&out, 2);
        assert_eq!(frames, vec![f_b.clone(), f_a.clone()]);
        // f_b released at ts 12, occupies 12,13,14; f_a ts=17 starts at 17.
        let offsets: Vec<u32> = out[2].iter().map(|(o, _)| o).collect();
        assert_eq!(offsets, vec![12, 13, 14, 17, 18, 19, 20, 21, 22, 23, 24]);
    }

    #[test]
    fn busy_port_delays_release() {
        // A long frame occupies the port; a short one with a later ts must
        // wait for the wire even though its ts passed.
        let mut sw = Switch::new("tor", SwitchConfig::new(3).switching_latency(0));
        sw.add_route(MacAddr::from_node_index(2), 2);
        let f_long = mk_frame(2, 0, 200); // 27 flits
        let f_short = mk_frame(2, 1, 2); // 2 flits
        let mut inputs = empty_inputs(3);
        inputs[0] = window_with_frame(&f_long, 0); // completes cycle 26, ts 26
        inputs[1] = window_with_frame(&f_short, 5); // completes cycle 6, ts 6
        let out = round(&mut sw, 0, inputs);
        let frames = collect_frames(&out, 2);
        assert_eq!(frames[0], f_short);
        assert_eq!(frames[1], f_long);
        let offsets: Vec<u32> = out[2].iter().map(|(o, _)| o).collect();
        // short: 6,7; long: starts at its ts 26 (wire idle by then).
        assert_eq!(offsets[0], 6);
        assert_eq!(offsets[1], 7);
        assert_eq!(offsets[2], 26);
        assert_eq!(offsets.len(), 2 + 27);
    }

    #[test]
    fn output_buffer_overflow_drops() {
        let mut sw = Switch::new(
            "tor",
            SwitchConfig::new(3)
                .output_buffer_bytes(100)
                .switching_latency(10),
        );
        sw.add_route(MacAddr::from_node_index(2), 2);
        let f_a = mk_frame(2, 0, 60); // 74 wire bytes
        let f_b = mk_frame(2, 1, 60); // 74 wire bytes: does not fit with f_a
        let mut inputs = empty_inputs(3);
        inputs[0] = window_with_frame(&f_a, 0);
        inputs[1] = window_with_frame(&f_b, 1);
        let out = round(&mut sw, 0, inputs);
        let frames = collect_frames(&out, 2);
        assert_eq!(frames.len(), 1);
        assert_eq!(sw.stats_handle().lock().drops_buffer, 1);
    }

    #[test]
    fn release_delay_bound_drops_stale_frames() {
        // Egress port is saturated by a huge frame; a second frame ages out.
        let mut sw = Switch::new(
            "tor",
            SwitchConfig::new(3)
                .switching_latency(0)
                .max_release_delay(16),
        );
        sw.add_route(MacAddr::from_node_index(2), 2);
        let f_long = mk_frame(2, 0, 400); // 52 flits
        let f_short = mk_frame(2, 1, 2);
        let mut inputs = empty_inputs(3);
        inputs[0] = window_with_frame(&f_long, 0); // ts ~51, released at 51
        inputs[1] = window_with_frame(&f_short, 0); // ts 2: released first!
                                                    // Make the short frame the *later* one instead: give it a later ts
                                                    // by delaying its flits.
        let out = round(&mut sw, 0, inputs);
        // short (ts 2) transmits at 2..4; long (ts 51) starts at 51 and
        // spills into the next round (52 flits).
        let mut deframer = FrameDeframer::new();
        let mut frames = Vec::new();
        for (_o, flit) in out[2].iter() {
            if let Some(f) = deframer.push(*flit).unwrap() {
                frames.push(f);
            }
        }
        let out2 = round(&mut sw, u64::from(W), empty_inputs(3));
        for (_o, flit) in out2[2].iter() {
            if let Some(f) = deframer.push(*flit).unwrap() {
                frames.push(f);
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(sw.stats_handle().lock().drops_delay, 0);

        // Now force ageing: long occupies the wire from cycle 0; short's ts
        // falls far behind before the wire frees.
        let mut sw = Switch::new(
            "tor",
            SwitchConfig::new(3)
                .switching_latency(0)
                .max_release_delay(16),
        );
        sw.add_route(MacAddr::from_node_index(2), 2);
        let f_first = mk_frame(2, 0, 30); // 6 flits, ts 5, tx 5..10
        let f_aged = mk_frame(2, 1, 2); // ts 6, must wait until 11 > 6+16? no
                                        // Use a longer first frame so the wait exceeds 16.
        let f_first_long = mk_frame(2, 0, 240); // 32 flits, ts 31, tx 31..62
        let _ = f_first;
        let mut inputs = empty_inputs(3);
        inputs[0] = window_with_frame(&f_first_long, 0);
        inputs[1] = window_with_frame(&f_aged, 30); // completes 31, ts 31
                                                    // f_first_long ts 31 (seq earlier), transmits 31..62; f_aged ts 31
                                                    // would start at 63 > 31+16 => dropped.
        let out = round(&mut sw, 0, inputs);
        let frames = collect_frames(&out, 2);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].payload.len(), 240);
        assert_eq!(sw.stats_handle().lock().drops_delay, 1);
    }

    #[test]
    fn bandwidth_sampling_records_buckets() {
        let mut sw = Switch::new("root", SwitchConfig::new(2).sample_bandwidth(u64::from(W)));
        sw.add_route(MacAddr::from_node_index(1), 1);
        let frame = mk_frame(1, 0, 50); // 64 wire bytes
        let inputs = vec![window_with_frame(&frame, 0), TokenWindow::new(W)];
        let _ = round(&mut sw, 0, inputs);
        let _ = round(&mut sw, u64::from(W), empty_inputs(2));
        let stats = sw.stats_handle();
        let stats = stats.lock();
        assert_eq!(stats.ingress_bandwidth.len(), 2);
        assert_eq!(stats.ingress_bandwidth.points()[0].1, 64.0);
        assert_eq!(stats.ingress_bandwidth.points()[1].1, 0.0);
        assert_eq!(stats.ingress_bytes, 64);
    }

    /// A custom policy replaces MAC routing entirely: this one mirrors
    /// every frame to ALL other ports like a hub, ignoring addresses.
    #[test]
    fn custom_switch_policy_overrides_mac_table() {
        struct Hub;
        impl SwitchPolicy for Hub {
            fn route(&mut self, _wire: &[u8], ingress: usize, ports: usize) -> RouteDecision {
                RouteDecision::Ports((0..ports).filter(|&p| p != ingress).collect())
            }
        }
        let mut sw = Switch::new("hub", SwitchConfig::new(3));
        // A MAC route exists, but the policy must win.
        sw.add_route(MacAddr::from_node_index(1), 1);
        sw.set_policy(Box::new(Hub));
        let frame = mk_frame(1, 0, 8);
        let mut inputs = empty_inputs(3);
        inputs[0] = window_with_frame(&frame, 0);
        let out = round(&mut sw, 0, inputs);
        // Hub behaviour: both other ports get the frame.
        assert_eq!(collect_frames(&out, 1), vec![frame.clone()]);
        assert_eq!(collect_frames(&out, 2), vec![frame]);

        // And a dropping policy drops.
        struct Null;
        impl SwitchPolicy for Null {
            fn route(&mut self, _w: &[u8], _i: usize, _p: usize) -> RouteDecision {
                RouteDecision::Drop
            }
        }
        let mut sw = Switch::new("null", SwitchConfig::new(2));
        sw.set_policy(Box::new(Null));
        let frame = mk_frame(1, 0, 8);
        let out = round(
            &mut sw,
            0,
            vec![window_with_frame(&frame, 0), TokenWindow::new(W)],
        );
        assert!(out[0].is_empty() && out[1].is_empty());
    }

    #[test]
    fn frame_capture_records_first_n() {
        let mut sw = Switch::new("tor", SwitchConfig::new(2).capture(2));
        sw.add_route(MacAddr::from_node_index(1), 1);
        let f1 = mk_frame(1, 0, 10); // completes at cycle 2
        let f2 = mk_frame(1, 0, 2); // 2 flits at 10,11 -> completes at 11
        let f3 = mk_frame(1, 0, 2);
        let mut w = TokenWindow::new(W);
        let mut off = 0u32;
        for f in [&f1, &f2, &f3] {
            let mut framer = FrameFramer::new();
            framer.enqueue((*f).clone());
            while let Some(flit) = framer.next_flit() {
                w.push(off, flit).unwrap();
                off += 1;
            }
            off += 7; // gap between frames
        }
        let _ = round(&mut sw, 0, vec![w, TokenWindow::new(W)]);
        let stats = sw.stats_handle();
        let stats = stats.lock();
        assert_eq!(stats.captured.len(), 2, "cap respected");
        let (cycle0, port0, wire0) = &stats.captured[0];
        assert_eq!(*cycle0, 2);
        assert_eq!(*port0, 0);
        assert_eq!(wire0, &f1.to_wire());
    }

    #[test]
    #[should_panic(expected = "at least 2 ports")]
    fn one_port_switch_panics() {
        let _ = Switch::new("bad", SwitchConfig::new(1));
    }

    /// Checkpoint a switch mid-conversation (egress queues loaded, a frame
    /// in flight across the round boundary), restore into a fresh instance,
    /// and check the remaining rounds play out identically.
    #[test]
    fn checkpoint_round_trip_resumes_identically() {
        fn build() -> Switch {
            let mut sw = Switch::new(
                "tor",
                SwitchConfig::new(3)
                    .switching_latency(10)
                    .sample_bandwidth(u64::from(W))
                    .capture(4),
            );
            sw.add_route(MacAddr::from_node_index(1), 1);
            sw.add_route(MacAddr::from_node_index(2), 2);
            sw
        }
        // Round 0 loads the switch: a long frame (spills into round 1 on
        // the wire) plus contention on port 2.
        let inputs0 = || {
            let mut inputs = empty_inputs(3);
            inputs[0] = window_with_frame(&mk_frame(2, 0, 400), 0); // 52 flits
            inputs[1] = window_with_frame(&mk_frame(2, 1, 10), 3);
            inputs
        };
        let inputs1 = || {
            let mut inputs = empty_inputs(3);
            inputs[2] = window_with_frame(&mk_frame(1, 2, 30), 7);
            inputs
        };

        let mut straight = build();
        let _ = round(&mut straight, 0, inputs0());

        let mut resumed = build();
        let _ = round(&mut resumed, 0, inputs0());
        let mut w = SnapshotWriter::new();
        resumed.save_state(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut resumed = build();
        let mut r = SnapshotReader::new(&bytes);
        resumed.restore_state(&mut r).unwrap();
        assert_eq!(r.remaining(), 0, "trailing bytes in switch snapshot");

        for (now, inputs) in [
            (u64::from(W), inputs1()),
            (2 * u64::from(W), empty_inputs(3)),
        ] {
            let a = round(&mut straight, now, inputs.clone());
            let b = round(&mut resumed, now, inputs);
            for port in 0..3 {
                let av: Vec<(u32, Flit)> = a[port].iter().map(|(o, f)| (o, *f)).collect();
                let bv: Vec<(u32, Flit)> = b[port].iter().map(|(o, f)| (o, *f)).collect();
                assert_eq!(av, bv, "port {port} diverged at cycle {now}");
            }
        }
        let sa = straight.stats_handle();
        let sb = resumed.stats_handle();
        let (sa, sb) = (sa.lock(), sb.lock());
        assert_eq!(sa.frames_forwarded, sb.frames_forwarded);
        assert_eq!(sa.egress_bytes, sb.egress_bytes);
        assert_eq!(sa.ingress_bandwidth.points(), sb.ingress_bandwidth.points());
        assert_eq!(sa.captured, sb.captured);
    }

    /// A pressure window shrinks the effective output buffering for rounds
    /// it overlaps; drops it causes are attributed to the scenario, and the
    /// buffer heals once the window passes.
    #[test]
    fn pressure_window_shrinks_buffer_and_attributes_drops() {
        let mk = || {
            let mut sw = Switch::new(
                "tor",
                SwitchConfig::new(3)
                    .output_buffer_bytes(64 * 1024)
                    .switching_latency(10),
            );
            sw.add_route(MacAddr::from_node_index(2), 2);
            sw
        };
        let contended_inputs = || {
            let mut inputs = empty_inputs(3);
            inputs[0] = window_with_frame(&mk_frame(2, 0, 60), 0); // 74 wire bytes
            inputs[1] = window_with_frame(&mk_frame(2, 1, 60), 1); // 74 wire bytes
            inputs
        };

        // Pressured round: only ~one frame fits the squeezed buffer.
        let mut sw = mk();
        sw.pressure_handle().lock().push(PressureWindow {
            from: 0,
            until: u64::from(W),
            buffer_bytes: Some(100),
            max_release_delay: None,
        });
        let out = round(&mut sw, 0, contended_inputs());
        assert_eq!(collect_frames(&out, 2).len(), 1);
        {
            let stats = sw.stats_handle();
            let stats = stats.lock();
            assert_eq!(stats.drops_buffer, 1);
            assert_eq!(stats.scenario_drops_buffer, 1, "drop attributed");
            assert_eq!(stats.buffer_highwater[2], 74, "high-water tracked");
        }

        // Healed round: the same traffic one window later passes untouched.
        let mut sw2 = mk();
        sw2.pressure_handle().lock().push(PressureWindow {
            from: 0,
            until: u64::from(W),
            buffer_bytes: Some(100),
            max_release_delay: None,
        });
        let out = round(&mut sw2, u64::from(W), contended_inputs());
        assert_eq!(collect_frames(&out, 2).len(), 2);
        assert_eq!(sw2.stats_handle().lock().drops_buffer, 0);
        assert_eq!(sw2.stats_handle().lock().scenario_drops_buffer, 0);
    }

    /// A pressure window can impose a release-delay bound on a switch that
    /// has none configured; resulting ageing drops are scenario-attributed.
    #[test]
    fn pressure_window_tightens_release_delay() {
        let mut sw = Switch::new("tor", SwitchConfig::new(3).switching_latency(0));
        sw.add_route(MacAddr::from_node_index(2), 2);
        sw.pressure_handle().lock().push(PressureWindow {
            from: 0,
            until: u64::from(W),
            buffer_bytes: None,
            max_release_delay: Some(16),
        });
        // Same shape as `release_delay_bound_drops_stale_frames`: the long
        // frame hogs the wire until 62, the short one (ts 31) ages out.
        let mut inputs = empty_inputs(3);
        inputs[0] = window_with_frame(&mk_frame(2, 0, 240), 0);
        inputs[1] = window_with_frame(&mk_frame(2, 1, 2), 30);
        let out = round(&mut sw, 0, inputs);
        assert_eq!(collect_frames(&out, 2).len(), 1);
        let stats = sw.stats_handle();
        let stats = stats.lock();
        assert_eq!(stats.drops_delay, 1);
        assert_eq!(stats.scenario_drops_delay, 1, "attributed to the scenario");
    }

    /// A checkpoint into a switch built with a different port count is a
    /// typed error, not a scrambled restore.
    #[test]
    fn checkpoint_rejects_port_mismatch() {
        let sw = Switch::new("a", SwitchConfig::new(3));
        let mut w = SnapshotWriter::new();
        sw.save_state(&mut w).unwrap();
        let bytes = w.into_bytes();
        let mut other = Switch::new("b", SwitchConfig::new(4));
        let mut r = SnapshotReader::new(&bytes);
        let err = other.restore_state(&mut r).unwrap_err();
        assert!(err.to_string().contains("ports"), "{err}");
    }
}
