//! Converting between Ethernet frames and per-cycle flit streams.
//!
//! A 200 Gbit/s link moves 8 bytes per 3.2 GHz cycle, so a frame of `n`
//! bytes occupies `ceil(n / 8)` consecutive valid tokens. [`FrameFramer`]
//! produces that flit sequence; [`FrameDeframer`] reassembles frames on the
//! other side, using only the `last` metadata bit to find boundaries (the
//! transport never parses the link-layer protocol, §III-B2).

use std::collections::VecDeque;

use firesim_core::snapshot::{Snapshot, SnapshotReader, SnapshotWriter};
use firesim_core::{SimError, SimResult, TokenWindow};

use crate::frame::{EthernetFrame, Flit, FrameError};
use crate::FLIT_BYTES;

/// Serialises queued frames into one flit per cycle.
///
/// # Examples
///
/// ```
/// use firesim_net::{EthernetFrame, EtherType, FrameFramer, MacAddr};
/// use bytes::Bytes;
///
/// let mut framer = FrameFramer::new();
/// framer.enqueue(EthernetFrame::new(
///     MacAddr::from_node_index(1),
///     MacAddr::from_node_index(0),
///     EtherType::Echo,
///     Bytes::from_static(&[0xAA; 10]), // 24 wire bytes -> 3 flits
/// ));
/// let mut count = 0;
/// while framer.next_flit().is_some() { count += 1 }
/// assert_eq!(count, 3);
/// ```
#[derive(Debug, Default)]
pub struct FrameFramer {
    queue: VecDeque<Vec<u8>>,
    cursor: usize,
}

impl FrameFramer {
    /// Creates an idle framer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a frame for transmission.
    pub fn enqueue(&mut self, frame: EthernetFrame) {
        self.queue.push_back(frame.to_wire());
    }

    /// Queues pre-serialised wire bytes (used by NIC models that already
    /// hold raw bytes in simulated memory).
    ///
    /// # Panics
    ///
    /// Panics if `wire` is empty.
    pub fn enqueue_wire(&mut self, wire: Vec<u8>) {
        assert!(!wire.is_empty(), "cannot transmit an empty frame");
        self.queue.push_back(wire);
    }

    /// True when no frame data is pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of frames waiting (including the one in progress).
    pub fn pending_frames(&self) -> usize {
        self.queue.len()
    }

    /// Emits the next flit, or `None` when idle this cycle.
    pub fn next_flit(&mut self) -> Option<Flit> {
        let front = self.queue.front()?;
        let remaining = front.len() - self.cursor;
        let take = remaining.min(FLIT_BYTES);
        let last = remaining <= FLIT_BYTES;
        let flit = Flit::from_bytes(&front[self.cursor..self.cursor + take], last);
        if last {
            self.queue.pop_front();
            self.cursor = 0;
        } else {
            self.cursor += take;
        }
        Some(flit)
    }
}

impl Snapshot for FrameFramer {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.queue.len());
        for wire in &self.queue {
            w.put_bytes(wire);
        }
        w.put_usize(self.cursor);
    }
    fn load(r: &mut SnapshotReader<'_>) -> SimResult<Self> {
        let n = r.get_usize()?;
        let mut queue = VecDeque::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            queue.push_back(r.get_bytes()?.to_vec());
        }
        Ok(FrameFramer {
            queue,
            cursor: r.get_usize()?,
        })
    }
}

/// Reassembles flits back into frames.
///
/// Feed flits in cycle order with [`push`](FrameDeframer::push); completed
/// frames come back immediately.
#[derive(Debug, Default)]
pub struct FrameDeframer {
    buf: Vec<u8>,
}

impl FrameDeframer {
    /// Creates an empty deframer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bytes buffered for the in-progress frame.
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Accepts one flit; returns a completed frame when this was the last
    /// flit of a frame.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::Truncated`] if a frame completes with fewer
    /// bytes than an Ethernet header (a malformed sender); the partial data
    /// is discarded so the stream can resynchronise.
    pub fn push(&mut self, flit: Flit) -> Result<Option<EthernetFrame>, FrameError> {
        self.buf.extend_from_slice(&flit.bytes()[..flit.byte_len()]);
        if !flit.last {
            return Ok(None);
        }
        let result = EthernetFrame::from_wire(&self.buf);
        self.buf.clear();
        result.map(Some)
    }

    /// Like [`push`](FrameDeframer::push) but returns the raw wire bytes,
    /// for models that DMA bytes into simulated memory without parsing.
    pub fn push_raw(&mut self, flit: Flit) -> Option<Vec<u8>> {
        self.buf.extend_from_slice(&flit.bytes()[..flit.byte_len()]);
        if !flit.last {
            return None;
        }
        Some(std::mem::take(&mut self.buf))
    }
}

impl Snapshot for FrameDeframer {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_bytes(&self.buf);
    }
    fn load(r: &mut SnapshotReader<'_>) -> SimResult<Self> {
        Ok(FrameDeframer {
            buf: r.get_bytes()?.to_vec(),
        })
    }
}

/// Hard ceiling on a single token frame, to catch stream corruption early.
///
/// A window of `W` tokens serialises to a few bytes per *occupied* token plus
/// a constant header, so even pathological windows stay far below this. A
/// length prefix above the ceiling means the byte stream has desynchronised
/// (or a peer speaks a different protocol), and the decoder fails fast
/// instead of attempting a multi-gigabyte allocation.
pub const MAX_TOKEN_FRAME_BYTES: usize = 1 << 26; // 64 MiB

/// Serialises one token window into a length-prefixed wire frame.
///
/// This is the unit of inter-process exchange for distributed simulation
/// (§III-B2): one frame carries exactly one link-latency batch of tokens.
/// The layout is
///
/// ```text
/// [u32 len (LE)] [u64 seq (LE)] [TokenWindow snapshot bytes]
///  ^len counts everything after itself: 8 + snapshot length
/// ```
///
/// `seq` is a per-link monotonic batch counter; the receiver uses it to
/// assert that no window was dropped or reordered by the transport.
///
/// # Examples
///
/// ```
/// use firesim_core::TokenWindow;
/// use firesim_net::codec::{encode_token_frame, TokenDeframer};
///
/// let mut w: TokenWindow<u64> = TokenWindow::new(8);
/// w.push(3, 0xFEED).unwrap();
/// let wire = encode_token_frame(7, &w);
///
/// let mut deframer = TokenDeframer::new();
/// deframer.feed(&wire);
/// let (seq, got): (u64, TokenWindow<u64>) = deframer.next_frame().unwrap().unwrap();
/// assert_eq!(seq, 7);
/// assert_eq!(got.get(3), Some(&0xFEED));
/// ```
pub fn encode_token_frame<T: Snapshot>(seq: u64, window: &TokenWindow<T>) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    window.save(&mut w);
    let body = w.into_bytes();
    let len = u32::try_from(8 + body.len()).expect("token frame exceeds u32 length prefix");
    let mut out = Vec::with_capacity(4 + len as usize);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Streaming decoder for [`encode_token_frame`] byte streams.
///
/// Socket reads deliver arbitrary byte runs — half a header, three frames
/// and a tail, etc. Feed whatever arrived with [`feed`](TokenDeframer::feed)
/// and pull complete frames with [`next_frame`](TokenDeframer::next_frame)
/// until it returns `None`; partial data stays buffered across calls.
#[derive(Debug, Default)]
pub struct TokenDeframer {
    buf: Vec<u8>,
    /// Read cursor into `buf`; consumed bytes are compacted lazily.
    start: usize,
}

impl TokenDeframer {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes received from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing so the buffer doesn't creep unboundedly.
        if self.start > 0 && self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > (1 << 16) {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Number of bytes buffered but not yet decoded.
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Decodes the next complete frame, or `None` if more bytes are needed.
    ///
    /// # Errors
    ///
    /// Fails if the length prefix is shorter than the mandatory `seq` field
    /// or larger than [`MAX_TOKEN_FRAME_BYTES`] (stream corruption), or if
    /// the snapshot payload does not decode as a `TokenWindow<T>`.
    pub fn next_frame<T: Snapshot>(&mut self) -> SimResult<Option<(u64, TokenWindow<T>)>> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap()) as usize;
        if len < 8 {
            return Err(SimError::protocol(format!(
                "token frame length {len} is shorter than its seq header"
            )));
        }
        if len > MAX_TOKEN_FRAME_BYTES {
            return Err(SimError::protocol(format!(
                "token frame length {len} exceeds the {MAX_TOKEN_FRAME_BYTES}-byte \
                 ceiling; byte stream is corrupt or desynchronised"
            )));
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let seq = u64::from_le_bytes(avail[4..12].try_into().unwrap());
        let body = &avail[12..4 + len];
        let mut r = SnapshotReader::new(body);
        let window = TokenWindow::<T>::load(&mut r)?;
        if r.remaining() != 0 {
            return Err(SimError::protocol(format!(
                "token frame seq {seq} has {} trailing bytes after the window payload",
                r.remaining()
            )));
        }
        self.start += 4 + len;
        Ok(Some((seq, window)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{EtherType, MacAddr};
    use bytes::Bytes;

    fn frame(n: usize) -> EthernetFrame {
        EthernetFrame::new(
            MacAddr::from_node_index(2),
            MacAddr::from_node_index(1),
            EtherType::Stream,
            Bytes::from((0..n).map(|i| i as u8).collect::<Vec<_>>()),
        )
    }

    #[test]
    fn round_trip_various_sizes() {
        // Sizes chosen to hit exact-multiple and remainder paths.
        for payload in [0usize, 1, 2, 7, 8, 9, 10, 50, 63, 64, 65, 1500] {
            let f = frame(payload);
            let mut framer = FrameFramer::new();
            framer.enqueue(f.clone());
            let mut deframer = FrameDeframer::new();
            let mut out = None;
            let mut flits = 0;
            while let Some(flit) = framer.next_flit() {
                flits += 1;
                if let Some(done) = deframer.push(flit).unwrap() {
                    out = Some(done);
                }
            }
            assert_eq!(flits, f.wire_len().div_ceil(FLIT_BYTES));
            assert_eq!(out.unwrap(), f, "payload {payload}");
        }
    }

    #[test]
    fn back_to_back_frames() {
        let mut framer = FrameFramer::new();
        framer.enqueue(frame(20));
        framer.enqueue(frame(3));
        assert_eq!(framer.pending_frames(), 2);
        let mut deframer = FrameDeframer::new();
        let mut done = Vec::new();
        while let Some(flit) = framer.next_flit() {
            if let Some(f) = deframer.push(flit).unwrap() {
                done.push(f);
            }
        }
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].payload.len(), 20);
        assert_eq!(done[1].payload.len(), 3);
        assert!(framer.is_idle());
    }

    #[test]
    fn malformed_short_frame_resyncs() {
        let mut deframer = FrameDeframer::new();
        // A "frame" of 4 bytes ending immediately: shorter than a header.
        let bad = Flit::from_bytes(&[1, 2, 3, 4], true);
        assert!(deframer.push(bad).is_err());
        // The stream recovers for the next well-formed frame.
        let f = frame(10);
        let mut framer = FrameFramer::new();
        framer.enqueue(f.clone());
        let mut out = None;
        while let Some(flit) = framer.next_flit() {
            if let Some(done) = deframer.push(flit).unwrap() {
                out = Some(done);
            }
        }
        assert_eq!(out.unwrap(), f);
    }

    #[test]
    fn push_raw_returns_wire_bytes() {
        let f = frame(17);
        let mut framer = FrameFramer::new();
        framer.enqueue(f.clone());
        let mut deframer = FrameDeframer::new();
        let mut raw = None;
        while let Some(flit) = framer.next_flit() {
            if let Some(bytes) = deframer.push_raw(flit) {
                raw = Some(bytes);
            }
        }
        assert_eq!(raw.unwrap(), f.to_wire());
        assert_eq!(deframer.buffered_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "empty frame")]
    fn empty_wire_panics() {
        FrameFramer::new().enqueue_wire(Vec::new());
    }

    fn window(len: u32, fill: &[(u32, u64)]) -> TokenWindow<u64> {
        let mut w = TokenWindow::new(len);
        for &(off, v) in fill {
            w.push(off, v).unwrap();
        }
        w
    }

    #[test]
    fn token_frame_round_trip() {
        let w = window(16, &[(0, 1), (5, 0xDEAD_BEEF), (15, u64::MAX)]);
        let wire = encode_token_frame(42, &w);
        let mut d = TokenDeframer::new();
        d.feed(&wire);
        let (seq, got): (u64, TokenWindow<u64>) = d.next_frame().unwrap().unwrap();
        assert_eq!(seq, 42);
        assert_eq!(got.len(), 16);
        assert_eq!(got.get(5), Some(&0xDEAD_BEEF));
        assert_eq!(got.occupancy(), 3);
        assert!(d.next_frame::<u64>().unwrap().is_none());
        assert_eq!(d.buffered_bytes(), 0);
    }

    #[test]
    fn token_frames_survive_byte_by_byte_delivery() {
        // A socket may deliver any byte runs; decoding must be agnostic.
        let mut wire = Vec::new();
        for seq in 0..3u64 {
            wire.extend_from_slice(&encode_token_frame(
                seq,
                &window(8, &[(seq as u32, seq * 10)]),
            ));
        }
        let mut d = TokenDeframer::new();
        let mut out = Vec::new();
        for b in wire {
            d.feed(&[b]);
            while let Some((seq, w)) = d.next_frame::<u64>().unwrap() {
                out.push((seq, w.get(seq as u32).copied()));
            }
        }
        assert_eq!(out, vec![(0, Some(0)), (1, Some(10)), (2, Some(20))]);
    }

    #[test]
    fn token_frame_empty_window() {
        let wire = encode_token_frame(0, &window(64, &[]));
        let mut d = TokenDeframer::new();
        d.feed(&wire);
        let (_, got): (u64, TokenWindow<u64>) = d.next_frame().unwrap().unwrap();
        assert!(got.is_empty());
        assert_eq!(got.len(), 64);
    }

    #[test]
    fn token_frame_corrupt_length_rejected() {
        let mut d = TokenDeframer::new();
        // Length prefix below the 8-byte seq header.
        d.feed(&3u32.to_le_bytes());
        d.feed(&[0; 3]);
        assert!(d.next_frame::<u64>().is_err());

        let mut d = TokenDeframer::new();
        // Length prefix claiming a multi-gigabyte frame.
        d.feed(&u32::MAX.to_le_bytes());
        assert!(d.next_frame::<u64>().is_err());
    }

    #[test]
    fn token_frame_trailing_bytes_rejected() {
        let mut wire = encode_token_frame(9, &window(4, &[(1, 2)]));
        // Inflate the declared length and append garbage inside the frame.
        let len = u32::from_le_bytes(wire[..4].try_into().unwrap()) + 2;
        wire[..4].copy_from_slice(&len.to_le_bytes());
        wire.extend_from_slice(&[0xAB, 0xCD]);
        let mut d = TokenDeframer::new();
        d.feed(&wire);
        assert!(d.next_frame::<u64>().is_err());
    }
}
