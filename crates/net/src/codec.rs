//! Converting between Ethernet frames and per-cycle flit streams.
//!
//! A 200 Gbit/s link moves 8 bytes per 3.2 GHz cycle, so a frame of `n`
//! bytes occupies `ceil(n / 8)` consecutive valid tokens. [`FrameFramer`]
//! produces that flit sequence; [`FrameDeframer`] reassembles frames on the
//! other side, using only the `last` metadata bit to find boundaries (the
//! transport never parses the link-layer protocol, §III-B2).

use std::collections::VecDeque;

use firesim_core::snapshot::{Snapshot, SnapshotReader, SnapshotWriter};
use firesim_core::SimResult;

use crate::frame::{EthernetFrame, Flit, FrameError};
use crate::FLIT_BYTES;

/// Serialises queued frames into one flit per cycle.
///
/// # Examples
///
/// ```
/// use firesim_net::{EthernetFrame, EtherType, FrameFramer, MacAddr};
/// use bytes::Bytes;
///
/// let mut framer = FrameFramer::new();
/// framer.enqueue(EthernetFrame::new(
///     MacAddr::from_node_index(1),
///     MacAddr::from_node_index(0),
///     EtherType::Echo,
///     Bytes::from_static(&[0xAA; 10]), // 24 wire bytes -> 3 flits
/// ));
/// let mut count = 0;
/// while framer.next_flit().is_some() { count += 1 }
/// assert_eq!(count, 3);
/// ```
#[derive(Debug, Default)]
pub struct FrameFramer {
    queue: VecDeque<Vec<u8>>,
    cursor: usize,
}

impl FrameFramer {
    /// Creates an idle framer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a frame for transmission.
    pub fn enqueue(&mut self, frame: EthernetFrame) {
        self.queue.push_back(frame.to_wire());
    }

    /// Queues pre-serialised wire bytes (used by NIC models that already
    /// hold raw bytes in simulated memory).
    ///
    /// # Panics
    ///
    /// Panics if `wire` is empty.
    pub fn enqueue_wire(&mut self, wire: Vec<u8>) {
        assert!(!wire.is_empty(), "cannot transmit an empty frame");
        self.queue.push_back(wire);
    }

    /// True when no frame data is pending.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Number of frames waiting (including the one in progress).
    pub fn pending_frames(&self) -> usize {
        self.queue.len()
    }

    /// Emits the next flit, or `None` when idle this cycle.
    pub fn next_flit(&mut self) -> Option<Flit> {
        let front = self.queue.front()?;
        let remaining = front.len() - self.cursor;
        let take = remaining.min(FLIT_BYTES);
        let last = remaining <= FLIT_BYTES;
        let flit = Flit::from_bytes(&front[self.cursor..self.cursor + take], last);
        if last {
            self.queue.pop_front();
            self.cursor = 0;
        } else {
            self.cursor += take;
        }
        Some(flit)
    }
}

impl Snapshot for FrameFramer {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.queue.len());
        for wire in &self.queue {
            w.put_bytes(wire);
        }
        w.put_usize(self.cursor);
    }
    fn load(r: &mut SnapshotReader<'_>) -> SimResult<Self> {
        let n = r.get_usize()?;
        let mut queue = VecDeque::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            queue.push_back(r.get_bytes()?.to_vec());
        }
        Ok(FrameFramer {
            queue,
            cursor: r.get_usize()?,
        })
    }
}

/// Reassembles flits back into frames.
///
/// Feed flits in cycle order with [`push`](FrameDeframer::push); completed
/// frames come back immediately.
#[derive(Debug, Default)]
pub struct FrameDeframer {
    buf: Vec<u8>,
}

impl FrameDeframer {
    /// Creates an empty deframer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bytes buffered for the in-progress frame.
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Accepts one flit; returns a completed frame when this was the last
    /// flit of a frame.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::Truncated`] if a frame completes with fewer
    /// bytes than an Ethernet header (a malformed sender); the partial data
    /// is discarded so the stream can resynchronise.
    pub fn push(&mut self, flit: Flit) -> Result<Option<EthernetFrame>, FrameError> {
        self.buf.extend_from_slice(&flit.bytes()[..flit.byte_len()]);
        if !flit.last {
            return Ok(None);
        }
        let result = EthernetFrame::from_wire(&self.buf);
        self.buf.clear();
        result.map(Some)
    }

    /// Like [`push`](FrameDeframer::push) but returns the raw wire bytes,
    /// for models that DMA bytes into simulated memory without parsing.
    pub fn push_raw(&mut self, flit: Flit) -> Option<Vec<u8>> {
        self.buf.extend_from_slice(&flit.bytes()[..flit.byte_len()]);
        if !flit.last {
            return None;
        }
        Some(std::mem::take(&mut self.buf))
    }
}

impl Snapshot for FrameDeframer {
    fn save(&self, w: &mut SnapshotWriter) {
        w.put_bytes(&self.buf);
    }
    fn load(r: &mut SnapshotReader<'_>) -> SimResult<Self> {
        Ok(FrameDeframer {
            buf: r.get_bytes()?.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{EtherType, MacAddr};
    use bytes::Bytes;

    fn frame(n: usize) -> EthernetFrame {
        EthernetFrame::new(
            MacAddr::from_node_index(2),
            MacAddr::from_node_index(1),
            EtherType::Stream,
            Bytes::from((0..n).map(|i| i as u8).collect::<Vec<_>>()),
        )
    }

    #[test]
    fn round_trip_various_sizes() {
        // Sizes chosen to hit exact-multiple and remainder paths.
        for payload in [0usize, 1, 2, 7, 8, 9, 10, 50, 63, 64, 65, 1500] {
            let f = frame(payload);
            let mut framer = FrameFramer::new();
            framer.enqueue(f.clone());
            let mut deframer = FrameDeframer::new();
            let mut out = None;
            let mut flits = 0;
            while let Some(flit) = framer.next_flit() {
                flits += 1;
                if let Some(done) = deframer.push(flit).unwrap() {
                    out = Some(done);
                }
            }
            assert_eq!(flits, f.wire_len().div_ceil(FLIT_BYTES));
            assert_eq!(out.unwrap(), f, "payload {payload}");
        }
    }

    #[test]
    fn back_to_back_frames() {
        let mut framer = FrameFramer::new();
        framer.enqueue(frame(20));
        framer.enqueue(frame(3));
        assert_eq!(framer.pending_frames(), 2);
        let mut deframer = FrameDeframer::new();
        let mut done = Vec::new();
        while let Some(flit) = framer.next_flit() {
            if let Some(f) = deframer.push(flit).unwrap() {
                done.push(f);
            }
        }
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].payload.len(), 20);
        assert_eq!(done[1].payload.len(), 3);
        assert!(framer.is_idle());
    }

    #[test]
    fn malformed_short_frame_resyncs() {
        let mut deframer = FrameDeframer::new();
        // A "frame" of 4 bytes ending immediately: shorter than a header.
        let bad = Flit::from_bytes(&[1, 2, 3, 4], true);
        assert!(deframer.push(bad).is_err());
        // The stream recovers for the next well-formed frame.
        let f = frame(10);
        let mut framer = FrameFramer::new();
        framer.enqueue(f.clone());
        let mut out = None;
        while let Some(flit) = framer.next_flit() {
            if let Some(done) = deframer.push(flit).unwrap() {
                out = Some(done);
            }
        }
        assert_eq!(out.unwrap(), f);
    }

    #[test]
    fn push_raw_returns_wire_bytes() {
        let f = frame(17);
        let mut framer = FrameFramer::new();
        framer.enqueue(f.clone());
        let mut deframer = FrameDeframer::new();
        let mut raw = None;
        while let Some(flit) = framer.next_flit() {
            if let Some(bytes) = deframer.push_raw(flit) {
                raw = Some(bytes);
            }
        }
        assert_eq!(raw.unwrap(), f.to_wire());
        assert_eq!(deframer.buffered_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "empty frame")]
    fn empty_wire_panics() {
        FrameFramer::new().enqueue_wire(Vec::new());
    }
}
