//! Workspace-local stand-in for the subset of the `parking_lot` API that
//! firesim-rs uses, backed by `std::sync`.
//!
//! The build environment for this repository is fully offline, so external
//! crates cannot be fetched. This crate keeps every call site source-
//! compatible: `Mutex::lock` returns the guard directly (poisoning is
//! transparently ignored, matching parking_lot semantics where poisoning
//! does not exist).

use std::fmt;
use std::sync::TryLockError;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's panic-transparent API.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `t`.
    pub const fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never returns a poison
    /// error: a poisoned lock is treated as unlocked, as in parking_lot.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock with parking_lot's panic-transparent API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `t`.
    pub const fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
