//! Workspace-local stand-in for the subset of `proptest` that the
//! firesim-rs test suites use.
//!
//! The build environment is offline, so the real crate cannot be fetched.
//! This implementation keeps the same *testing semantics* — strategies
//! generate deterministic pseudo-random inputs, `proptest!` runs each test
//! body over many cases, failures report the case number and seed — but
//! does not implement shrinking. Set `PROPTEST_SEED` to reproduce a
//! failing run, or rely on the fixed default seed (runs are fully
//! deterministic by default).

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

// ---------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------

/// Deterministic generator handed to strategies (SplitMix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG for one test case.
    pub fn for_case(seed: u64, case: u64) -> Self {
        // Decorrelate per-case streams through two splitmix rounds.
        let mut rng = TestRng {
            state: seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        rng.next_u64();
        rng.next_u64();
        rng
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

// ---------------------------------------------------------------------
// Core strategy machinery
// ---------------------------------------------------------------------

/// A generator of test-case values.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Maps generated values through a partial function, retrying on `None`.
    fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    /// Keeps only values satisfying `f`, retrying otherwise.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// A cloneable type-erased strategy.
pub struct BoxedStrategy<V>(Arc<dyn Fn(&mut TestRng) -> V>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V> fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F, U> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map rejected too many values: {}", self.whence);
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected too many values: {}", self.whence);
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

// ---------------------------------------------------------------------
// Primitive strategies: ranges and `any`
// ---------------------------------------------------------------------

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Values drawable by [`any`].
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII, occasionally any scalar value.
        if rng.below(4) > 0 {
            (0x20 + rng.below(0x5f) as u32) as u8 as char
        } else {
            char::from_u32(rng.below(0x11_0000_u64) as u32).unwrap_or('\u{fffd}')
        }
    }
}

/// The `any::<T>()` strategy over the whole domain of `T`.
#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Any<T> {}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Creates a strategy over the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A / a);
tuple_strategy!(A / a, B / b);
tuple_strategy!(A / a, B / b, C / c);
tuple_strategy!(A / a, B / b, C / c, D / d);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);

// ---------------------------------------------------------------------
// Collections and Option
// ---------------------------------------------------------------------

/// Size specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec`s of `inner` values with lengths in `size`.
    pub fn vec<S: Strategy>(inner: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            inner,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        inner: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.inner.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s of `inner` values with sizes in `size`.
    pub fn btree_set<S>(inner: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            inner,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        inner: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.sample(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < n && attempts < n * 100 + 100 {
                out.insert(self.inner.generate(rng));
                attempts += 1;
            }
            assert!(
                out.len() >= self.size.lo,
                "btree_set strategy could not reach minimum size {} (domain too small?)",
                self.size.lo
            );
            out
        }
    }
}

/// `Option` strategies.
pub mod option {
    use super::*;

    /// Strategy producing `None` half the time and `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A test-case failure produced by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    msg: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError { msg: msg.into() }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

/// The base seed: `PROPTEST_SEED` env var when set, a fixed default
/// otherwise (runs are deterministic either way).
pub fn base_seed() -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse().unwrap_or(0xF1E5_1105_EED5_EED5),
        Err(_) => 0xF1E5_1105_EED5_EED5,
    }
}

/// Runs `body` for every case, panicking with context on failure.
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let seed = base_seed();
    for case in 0..u64::from(config.cases) {
        let mut rng = TestRng::for_case(seed, case);
        if let Err(e) = body(&mut rng) {
            panic!(
                "proptest {test_name}: case {case}/{} failed (seed {seed:#x}): {e}",
                config.cases
            );
        }
    }
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Declares property tests; see the real proptest for the full syntax.
/// Supported here: an optional `#![proptest_config(..)]` header followed
/// by `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(stringify!($name), &__config, |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    let __body_result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    __body_result
                });
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)+);
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a), stringify!($b), __a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a != *__b, $($fmt)+);
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union(vec![ $( $crate::Strategy::boxed($arm) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case(1, 2);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(5u32..17), &mut rng);
            assert!((5..17).contains(&v));
            let w = crate::Strategy::generate(&(-10i64..=10), &mut rng);
            assert!((-10..=10).contains(&w));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let gen = |seed| {
            let mut rng = crate::TestRng::for_case(seed, 7);
            crate::Strategy::generate(&crate::collection::vec(0u64..1000, 3..10), &mut rng)
        };
        assert_eq!(gen(42), gen(42));
        assert_ne!(gen(42), gen(43));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_plumbing_works(a in 0u32..100, b in any::<bool>()) {
            prop_assert!(a < 100);
            if b {
                prop_assert_ne!(a + 1, 0);
            }
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            Just(1u8),
            2u8..4,
            (0u8..2).prop_map(|x| x + 10),
        ]) {
            prop_assert!(v == 1 || v == 2 || v == 3 || v == 10 || v == 11);
        }
    }
}
