//! Workspace-local stand-in for the subset of `serde_json` that firesim-rs
//! uses: the dynamically-typed [`Value`] tree, the [`json!`] macro for
//! scalars/arrays, a strict JSON parser ([`from_str`]), and compact/pretty
//! serialisers.
//!
//! The build environment is offline, so the real crate (and serde's derive
//! machinery) cannot be fetched. Result records in `firesim-manager`
//! convert to and from `Value` explicitly instead of deriving.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON number: integer when possible, float otherwise.
///
/// Equality is value-based across representations (`8`, `8u64`, and `8.0`
/// all compare equal), matching how the result tables treat numbers.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Unsigned integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The value as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(v) => v as f64,
            Number::I(v) => v as f64,
            Number::F(v) => v,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            Number::F(_) => None,
        }
    }

    /// The value as `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(v)
                if v.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&v) =>
            {
                Some(v as i64)
            }
            Number::F(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U(v) => write!(f, "{v}"),
            Number::I(v) => write!(f, "{v}"),
            Number::F(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    // JSON has no Inf/NaN; serialise as null like serde_json.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with sorted keys.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `bool`, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object map, if an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Member lookup; `Value::Null` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }

    /// Serialises compactly.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialises with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

// ---------------------------------------------------------------------
// Conversions into Value
// ---------------------------------------------------------------------

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(Number::U(v as u64)) }
        }
    )*};
}
macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v >= 0 { Value::Number(Number::U(v as u64)) }
                else { Value::Number(Number::I(v as i64)) }
            }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

// References to scalars convert too (the real json! macro accepts any
// Serialize value, which includes references).
macro_rules! from_scalar_ref {
    ($($t:ty),*) => {$(
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value { Value::from(*v) }
        }
    )*};
}
from_scalar_ref!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::F(f64::from(v)))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map(Into::into).unwrap_or(Value::Null)
    }
}

// ---------------------------------------------------------------------
// Comparisons against plain Rust values (assert_eq! ergonomics)
// ---------------------------------------------------------------------

macro_rules! eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if *n == Number::from_prim(*other))
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool { other == self }
        }
        impl PartialEq<$t> for &Value {
            fn eq(&self, other: &$t) -> bool { **self == *other }
        }
    )*};
}
eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Number {
    fn from_prim<T: Into<Value>>(v: T) -> Number {
        match v.into() {
            Value::Number(n) => n,
            _ => unreachable!("numeric primitive"),
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

// ---------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------

/// Builds a [`Value`] from a scalar expression or `[..]` array literal.
///
/// Object-literal syntax is intentionally unsupported; build a
/// `BTreeMap<String, Value>` and convert instead.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ($other:expr) => {
        $crate::Value::from($other)
    };
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// A JSON parse error with byte position context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    pos: usize,
}

impl Error {
    /// Builds an error with a caller-supplied message (used for
    /// shape/type mismatches discovered after parsing).
    pub fn custom(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            pos: 0,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for Error {}

/// Parses a complete JSON document into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed input or trailing characters.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_owned(),
            pos: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // reject them rather than mis-decode.
                            let ch = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported surrogate escape"))?;
                            out.push(ch);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the source slice.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push(ch);
                    self.pos = start + ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(v)));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(v)));
            }
        }
        text.parse::<f64>()
            .map(|v| Value::Number(Number::F(v)))
            .map_err(|_| self.err("invalid number"))
    }
}

/// Pretty-prints any value convertible to [`Value`].
pub fn to_string_pretty_value(v: &Value) -> String {
    v.to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for (text, v) in [
            ("null", Value::Null),
            ("true", Value::Bool(true)),
            ("42", json!(42)),
            ("-7", json!(-7i64)),
            ("2.5", json!(2.5)),
            ("\"hi\\n\"", json!("hi\n")),
        ] {
            assert_eq!(from_str(text).unwrap(), v, "{text}");
            assert_eq!(from_str(&v.to_string_compact()).unwrap(), v);
        }
    }

    #[test]
    fn nested_round_trip() {
        let mut obj = BTreeMap::new();
        obj.insert("a".to_owned(), json!([1, 2, 3]));
        obj.insert("b".to_owned(), json!("x"));
        obj.insert("c".to_owned(), Value::Object(BTreeMap::new()));
        let v = Value::Object(obj);
        assert_eq!(from_str(&v.to_string_pretty()).unwrap(), v);
        assert_eq!(from_str(&v.to_string_compact()).unwrap(), v);
    }

    #[test]
    fn cross_representation_number_eq() {
        assert_eq!(json!(8), json!(8.0));
        assert_eq!(json!(8u64), 8);
        assert_ne!(json!(8), json!(9));
        assert_eq!(json!(-3i64), -3);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("'single'").is_err());
    }
}
