//! Workspace-local stand-in for the subset of the `bytes` crate that
//! firesim-rs uses: the cheaply-cloneable immutable byte buffer [`Bytes`].
//!
//! The build environment is offline, so the real crate cannot be fetched.
//! Semantics match the real `Bytes` for everything the simulator relies
//! on: O(1) clone (shared ownership), `Deref<Target = [u8]>`, and the
//! usual constructors. `from_static` copies once instead of borrowing
//! (an allocation-at-construction difference only; frame payloads are
//! built once and shared thereafter).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable chunk of contiguous memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` from a static slice.
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes { data: Arc::from(s) }
    }

    /// Copies `s` into a new `Bytes`.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes { data: Arc::from(s) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns a new `Bytes` holding a copy of the given subrange.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Bytes::copy_from_slice(&self.data[start..end])
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Bytes { data: Arc::from(b) }
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_eq() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[1..], &[2, 3]);
        let c = a.clone();
        assert_eq!(c, a);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn slicing() {
        let a = Bytes::from_static(&[9, 8, 7, 6]);
        assert_eq!(a.slice(1..3), Bytes::from(vec![8, 7]));
        assert_eq!(a.slice(..), a);
    }
}
