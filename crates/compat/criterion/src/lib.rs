//! Workspace-local stand-in for the subset of `criterion` used by the
//! firesim-rs bench targets.
//!
//! The build environment is offline, so the real crate cannot be fetched.
//! This harness keeps the same authoring API (`criterion_group!`,
//! `criterion_main!`, `benchmark_group`, `Bencher::iter`, `Throughput`)
//! and produces median-of-samples timing reports on stdout. Statistical
//! machinery (outlier detection, HTML reports) is intentionally absent.
//!
//! When invoked with `--test` (as `cargo test` does for
//! `harness = false` bench targets) each benchmark body runs exactly once
//! as a smoke test and no timing is reported.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How to scale the reported per-iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        // Accept and ignore the harness flags cargo passes; a bare
        // positional argument acts as a substring filter like criterion's.
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                "--bench" | "--nocapture" | "-q" | "--quiet" => {}
                s if s.starts_with("--") => {}
                s => filter = Some(s.to_string()),
            }
        }
        Criterion {
            test_mode,
            filter,
            sample_size: 30,
        }
    }
}

impl Criterion {
    /// Sets the default number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        run_benchmark(self, &id, None, self.sample_size, f);
    }

    /// Criterion's post-run hook; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = t.into();
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(self.criterion, &full, self.throughput, samples, f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark body; call [`Bencher::iter`] with the
/// code under test.
#[derive(Debug)]
pub struct Bencher {
    mode: BenchMode,
    /// Total time and iteration count accumulated by `iter`.
    elapsed: Duration,
    iters: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum BenchMode {
    /// Run once, don't time (cargo test smoke run).
    Smoke,
    /// Time `target_iters` iterations.
    Measure { target_iters: u64 },
}

impl Bencher {
    /// Times `routine`, discarding its output via an implicit sink.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        match self.mode {
            BenchMode::Smoke => {
                black_box(routine());
                self.iters = 1;
            }
            BenchMode::Measure { target_iters } => {
                let start = Instant::now();
                for _ in 0..target_iters {
                    black_box(routine());
                }
                self.elapsed = start.elapsed();
                self.iters = target_iters;
            }
        }
    }
}

fn run_benchmark(
    criterion: &Criterion,
    id: &str,
    throughput: Option<Throughput>,
    samples: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    if let Some(filter) = &criterion.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    if criterion.test_mode {
        let mut b = Bencher {
            mode: BenchMode::Smoke,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        println!("test {id} ... ok");
        return;
    }

    // Calibrate: grow the iteration count until one sample takes a
    // measurable slice of time (~20ms) or the count saturates.
    let mut target_iters = 1u64;
    loop {
        let mut b = Bencher {
            mode: BenchMode::Measure { target_iters },
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(20) || target_iters >= 1 << 20 {
            break;
        }
        target_iters = target_iters.saturating_mul(2);
    }

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            mode: BenchMode::Measure { target_iters },
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        assert!(b.iters > 0, "benchmark body never called Bencher::iter");
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / b.iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample"));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let lo = per_iter_ns[0];
    let hi = per_iter_ns[per_iter_ns.len() - 1];

    print!(
        "{id:<48} time: [{} {} {}]",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi)
    );
    match throughput {
        Some(Throughput::Elements(n)) => {
            print!("  thrpt: {} elem/s", fmt_rate(n as f64 / (median * 1e-9)));
        }
        Some(Throughput::Bytes(n)) => {
            print!("  thrpt: {}B/s", fmt_rate(n as f64 / (median * 1e-9)));
        }
        None => {}
    }
    println!();
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} ")
    }
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bodies() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
            sample_size: 10,
        };
        let mut calls = 0;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Elements(4));
            g.bench_function("one", |b| b.iter(|| calls += 1));
            g.finish();
        }
        assert_eq!(calls, 1, "test mode runs the body exactly once");
    }

    #[test]
    fn measure_mode_times_iterations() {
        let mut b = Bencher {
            mode: BenchMode::Measure { target_iters: 100 },
            elapsed: Duration::ZERO,
            iters: 0,
        };
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert_eq!(n, 100);
        assert_eq!(b.iters, 100);
    }
}
