//! Property test: `decode(encode(inst)) == inst` across the entire
//! RV64IMA + Zicsr instruction set, and executed `li` sequences load the
//! exact constant.

use proptest::prelude::*;

use firesim_riscv::asm::Assembler;
use firesim_riscv::decode::decode;
use firesim_riscv::encode::encode;
use firesim_riscv::exec::{Cpu, StepOutcome};
use firesim_riscv::inst::{AluOp, AmoOp, BranchCond, CsrOp, CsrSrc, Inst, MemWidth, MulDivOp};
use firesim_riscv::mem::Memory;

fn reg() -> impl Strategy<Value = u8> {
    0u8..32
}

fn imm12() -> impl Strategy<Value = i64> {
    -2048i64..=2047
}

fn inst_strategy() -> impl Strategy<Value = Inst> {
    let alu = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
    ];
    let alu_reg = prop_oneof![alu.clone(), Just(AluOp::Sub)];
    let muldiv = prop_oneof![
        Just(MulDivOp::Mul),
        Just(MulDivOp::Mulh),
        Just(MulDivOp::Mulhsu),
        Just(MulDivOp::Mulhu),
        Just(MulDivOp::Div),
        Just(MulDivOp::Divu),
        Just(MulDivOp::Rem),
        Just(MulDivOp::Remu),
    ];
    let muldiv_word = prop_oneof![
        Just(MulDivOp::Mul),
        Just(MulDivOp::Div),
        Just(MulDivOp::Divu),
        Just(MulDivOp::Rem),
        Just(MulDivOp::Remu),
    ];
    let cond = prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Ltu),
        Just(BranchCond::Geu),
    ];
    let width = prop_oneof![
        Just(MemWidth::B),
        Just(MemWidth::H),
        Just(MemWidth::W),
        Just(MemWidth::D),
    ];
    let amo_width = prop_oneof![Just(MemWidth::W), Just(MemWidth::D)];
    let amo_op = prop_oneof![
        Just(AmoOp::Sc),
        Just(AmoOp::Swap),
        Just(AmoOp::Add),
        Just(AmoOp::Xor),
        Just(AmoOp::And),
        Just(AmoOp::Or),
        Just(AmoOp::Min),
        Just(AmoOp::Max),
        Just(AmoOp::Minu),
        Just(AmoOp::Maxu),
    ];
    let csr_op = prop_oneof![Just(CsrOp::Rw), Just(CsrOp::Rs), Just(CsrOp::Rc)];
    let csr_src = prop_oneof![reg().prop_map(CsrSrc::Reg), (0u8..32).prop_map(CsrSrc::Imm),];

    prop_oneof![
        (reg(), (-(1i64 << 19)..(1i64 << 19))).prop_map(|(rd, v)| Inst::Lui { rd, imm: v << 12 }),
        (reg(), (-(1i64 << 19)..(1i64 << 19))).prop_map(|(rd, v)| Inst::Auipc { rd, imm: v << 12 }),
        (reg(), (-(1i64 << 19)..(1i64 << 19))).prop_map(|(rd, v)| Inst::Jal { rd, imm: v * 2 }),
        (reg(), reg(), imm12()).prop_map(|(rd, rs1, imm)| Inst::Jalr { rd, rs1, imm }),
        (cond, reg(), reg(), -2048i64..=2047).prop_map(|(cond, rs1, rs2, h)| Inst::Branch {
            cond,
            rs1,
            rs2,
            imm: h * 2
        }),
        (width.clone(), any::<bool>(), reg(), reg(), imm12()).prop_filter_map(
            "no unsigned ld",
            |(width, signed, rd, rs1, imm)| {
                if width == MemWidth::D && !signed {
                    None
                } else {
                    Some(Inst::Load {
                        width,
                        signed,
                        rd,
                        rs1,
                        imm,
                    })
                }
            }
        ),
        (width, reg(), reg(), imm12()).prop_map(|(width, rs2, rs1, imm)| Inst::Store {
            width,
            rs2,
            rs1,
            imm
        }),
        (alu.clone(), reg(), reg(), imm12(), any::<bool>()).prop_map(|(op, rd, rs1, imm, word)| {
            // Shifts carry shamt instead of a full immediate.
            let imm = match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => {
                    imm.unsigned_abs() as i64 % if word { 32 } else { 64 }
                }
                _ => imm,
            };
            // Word forms exist only for add/shifts.
            let word = word && matches!(op, AluOp::Add | AluOp::Sll | AluOp::Srl | AluOp::Sra);
            Inst::OpImm {
                op,
                rd,
                rs1,
                imm,
                word,
            }
        }),
        (alu_reg, reg(), reg(), reg(), any::<bool>()).prop_map(|(op, rd, rs1, rs2, word)| {
            let word = word
                && matches!(
                    op,
                    AluOp::Add | AluOp::Sub | AluOp::Sll | AluOp::Srl | AluOp::Sra
                );
            Inst::Op {
                op,
                rd,
                rs1,
                rs2,
                word,
            }
        }),
        (muldiv, reg(), reg(), reg()).prop_map(|(op, rd, rs1, rs2)| Inst::MulDiv {
            op,
            rd,
            rs1,
            rs2,
            word: false
        }),
        (muldiv_word, reg(), reg(), reg()).prop_map(|(op, rd, rs1, rs2)| Inst::MulDiv {
            op,
            rd,
            rs1,
            rs2,
            word: true
        }),
        (amo_op, amo_width.clone(), reg(), reg(), reg()).prop_map(|(op, width, rd, rs1, rs2)| {
            Inst::Amo {
                op,
                width,
                rd,
                rs1,
                rs2,
            }
        }),
        (amo_width, reg(), reg()).prop_map(|(width, rd, rs1)| Inst::Amo {
            op: AmoOp::Lr,
            width,
            rd,
            rs1,
            rs2: 0
        }),
        (csr_op, reg(), 0u16..4096, csr_src).prop_map(|(op, rd, csr, src)| Inst::Csr {
            op,
            rd,
            csr,
            src
        }),
        Just(Inst::Fence),
        Just(Inst::FenceI),
        Just(Inst::Ecall),
        Just(Inst::Ebreak),
        Just(Inst::Mret),
        Just(Inst::Wfi),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4096))]

    #[test]
    fn encode_decode_round_trip(inst in inst_strategy()) {
        let word = encode(&inst);
        let back = decode(word);
        prop_assert_eq!(back, Ok(inst));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `li` synthesises any 64-bit constant exactly (executed check).
    #[test]
    fn li_loads_any_constant(value in any::<i64>()) {
        let base = 0x8000_0000u64;
        let mut a = Assembler::new(base);
        a.li(10, value);
        a.wfi();
        let image = a.assemble().unwrap();
        let mut mem = Memory::new(base, 4096);
        mem.write_bytes(base, &image).unwrap();
        let mut cpu = Cpu::new(0, base);
        for _ in 0..64 {
            if let StepOutcome::Wfi = cpu.step(&mut mem).unwrap() {
                prop_assert_eq!(cpu.read_reg(10), value as u64);
                return Ok(());
            }
        }
        prop_assert!(false, "li sequence did not converge");
    }
}
