//! Self-modifying-code regression tests for the decoded-instruction cache.
//!
//! A guest program patches an instruction it has already executed (and
//! which is therefore hot in the decode cache), then executes the patch
//! site again. The architectural contract (RISC-V unprivileged spec,
//! Zifencei) only requires the *new* instruction to be observed after a
//! `FENCE.I`; this simulator is stricter — every store bumps a
//! page-granular generation counter checked on each cache lookup, so stale
//! decodes are never served even without the fence. Both variants must
//! therefore execute the patched instruction and match the uncached
//! interpreter bit-for-bit.

use firesim_riscv::asm::Assembler;
use firesim_riscv::encode::encode;
use firesim_riscv::exec::{Cpu, StepOutcome};
use firesim_riscv::inst::{AluOp, Inst};
use firesim_riscv::mem::Memory;
use firesim_riscv::DecodeCache;

const BASE: u64 = 0x8000_0000;
const MEM_BYTES: usize = 64 * 1024;
const MAX_STEPS: usize = 256;

/// Builds a program that repeatedly calls a one-instruction subroutine
/// (`addi x10, x10, 1`) until it is hot in the decode cache, overwrites
/// that instruction with `addi x10, x10, 100`, and calls it again.
/// Correct invalidation leaves `x10 == 103`; serving the stale decode
/// would leave `x10 == 4`.
fn smc_program(with_fence_i: bool) -> Vec<u8> {
    let patched = encode(&Inst::OpImm {
        op: AluOp::Add,
        rd: 10,
        rs1: 10,
        imm: 100,
        word: false,
    });
    let mut a = Assembler::new(BASE);
    a.li(10, 0);
    a.li(11, 3);
    a.la(5, "site");
    // Warm the decode cache: the loop body and the subroutine are all
    // cached (and hit) by the second iteration.
    a.label("warm");
    a.call("site");
    a.addi(11, 11, -1);
    a.bnez(11, "warm");
    a.li(7, i64::from(patched));
    a.sw(7, 5, 0); // patch the instruction we just executed
    if with_fence_i {
        a.fence_i();
    }
    a.call("site"); // must execute the *patched* instruction
    a.wfi();
    a.label("site");
    a.addi(10, 10, 1);
    a.ret();
    a.assemble().unwrap()
}

/// Runs `image` to its `wfi`, returning the final `x10` plus retired-step
/// count. `cache` selects the fast path; `None` runs the plain
/// interpreter.
fn run(image: &[u8], mut cache: Option<&mut DecodeCache>) -> (u64, usize) {
    let mut mem = Memory::new(BASE, MEM_BYTES);
    mem.write_bytes(BASE, image).unwrap();
    let mut cpu = Cpu::new(0, BASE);
    for step in 0..MAX_STEPS {
        let outcome = match cache.as_deref_mut() {
            Some(c) => cpu.step_cached(&mut mem, c),
            None => cpu.step(&mut mem),
        }
        .unwrap();
        if matches!(outcome, StepOutcome::Wfi) {
            return (cpu.read_reg(10), step);
        }
    }
    panic!("program did not reach wfi in {MAX_STEPS} steps");
}

fn check_variant(with_fence_i: bool) {
    let image = smc_program(with_fence_i);
    let mut cache = DecodeCache::new();
    let (cached_x10, cached_steps) = run(&image, Some(&mut cache));
    let (interp_x10, interp_steps) = run(&image, None);

    assert_eq!(
        cached_x10, 103,
        "patched instruction must execute (fence.i: {with_fence_i})"
    );
    assert_eq!(
        (cached_x10, cached_steps),
        (interp_x10, interp_steps),
        "cached run diverged from the interpreter (fence.i: {with_fence_i})"
    );

    let stats = cache.stats();
    assert!(
        stats.invalidations >= 1,
        "patching a cached instruction must be observed as an invalidation \
         (fence.i: {with_fence_i}, stats: {stats:?})"
    );
    assert!(stats.hits > 0, "the subroutine call never hit the cache");
}

#[test]
fn patched_instruction_executes_after_fence_i() {
    check_variant(true);
}

#[test]
fn patched_instruction_executes_without_fence_i() {
    check_variant(false);
}
