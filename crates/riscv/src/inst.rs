//! The decoded RV64IMA + Zicsr instruction set.
//!
//! Instructions are grouped by execution class rather than one variant per
//! mnemonic; this keeps the decoder, executor, and timing model compact
//! while still covering the full ISA the simulated software uses.

use core::fmt;

/// ALU operation selector (shared by register-register and immediate
/// forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (`add`, `addi`; subtraction is `Sub`).
    Add,
    /// Subtraction (register form only).
    Sub,
    /// Logical left shift.
    Sll,
    /// Set-less-than, signed.
    Slt,
    /// Set-less-than, unsigned.
    Sltu,
    /// Bitwise exclusive or.
    Xor,
    /// Logical right shift.
    Srl,
    /// Arithmetic right shift.
    Sra,
    /// Bitwise or.
    Or,
    /// Bitwise and.
    And,
}

/// Multiply/divide operation selector (the M extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulDivOp {
    /// Low 64 bits of the product.
    Mul,
    /// High bits, signed x signed.
    Mulh,
    /// High bits, signed x unsigned.
    Mulhsu,
    /// High bits, unsigned x unsigned.
    Mulhu,
    /// Signed division.
    Div,
    /// Unsigned division.
    Divu,
    /// Signed remainder.
    Rem,
    /// Unsigned remainder.
    Remu,
}

/// Branch condition selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than, signed.
    Lt,
    /// Greater or equal, signed.
    Ge,
    /// Less than, unsigned.
    Ltu,
    /// Greater or equal, unsigned.
    Geu,
}

/// Memory access width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 1 byte.
    B,
    /// 2 bytes.
    H,
    /// 4 bytes.
    W,
    /// 8 bytes.
    D,
}

impl MemWidth {
    /// Width in bytes.
    pub fn bytes(self) -> usize {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
            MemWidth::D => 8,
        }
    }
}

/// Atomic memory operation selector (the A extension).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmoOp {
    /// Load-reserved.
    Lr,
    /// Store-conditional.
    Sc,
    /// Atomic swap.
    Swap,
    /// Atomic add.
    Add,
    /// Atomic xor.
    Xor,
    /// Atomic and.
    And,
    /// Atomic or.
    Or,
    /// Atomic signed minimum.
    Min,
    /// Atomic signed maximum.
    Max,
    /// Atomic unsigned minimum.
    Minu,
    /// Atomic unsigned maximum.
    Maxu,
}

/// CSR access operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrOp {
    /// Read-write (`csrrw`/`csrrwi`).
    Rw,
    /// Read-set (`csrrs`/`csrrsi`).
    Rs,
    /// Read-clear (`csrrc`/`csrrci`).
    Rc,
}

/// Source operand for a CSR instruction: a register or a 5-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrSrc {
    /// Register index.
    Reg(u8),
    /// Zero-extended 5-bit immediate.
    Imm(u8),
}

/// A decoded RV64IMA + Zicsr instruction.
///
/// Register fields are 0..=31; immediates are sign-extended to `i64` at
/// decode time (shift amounts are kept raw in `imm`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings follow the RISC-V spec directly
pub enum Inst {
    /// Load upper immediate.
    Lui { rd: u8, imm: i64 },
    /// Add upper immediate to PC.
    Auipc { rd: u8, imm: i64 },
    /// Jump and link.
    Jal { rd: u8, imm: i64 },
    /// Jump and link register.
    Jalr { rd: u8, rs1: u8, imm: i64 },
    /// Conditional branch.
    Branch {
        cond: BranchCond,
        rs1: u8,
        rs2: u8,
        imm: i64,
    },
    /// Load from memory. `signed` selects sign- vs zero-extension.
    Load {
        width: MemWidth,
        signed: bool,
        rd: u8,
        rs1: u8,
        imm: i64,
    },
    /// Store to memory.
    Store {
        width: MemWidth,
        rs2: u8,
        rs1: u8,
        imm: i64,
    },
    /// ALU with immediate. `word` selects the 32-bit (`*W`) form.
    OpImm {
        op: AluOp,
        rd: u8,
        rs1: u8,
        imm: i64,
        word: bool,
    },
    /// ALU register-register. `word` selects the 32-bit (`*W`) form.
    Op {
        op: AluOp,
        rd: u8,
        rs1: u8,
        rs2: u8,
        word: bool,
    },
    /// Multiply/divide. `word` selects the 32-bit (`*W`) form.
    MulDiv {
        op: MulDivOp,
        rd: u8,
        rs1: u8,
        rs2: u8,
        word: bool,
    },
    /// Atomic memory operation (including LR/SC). Width is W or D only.
    Amo {
        op: AmoOp,
        width: MemWidth,
        rd: u8,
        rs1: u8,
        rs2: u8,
    },
    /// CSR read-modify-write.
    Csr {
        op: CsrOp,
        rd: u8,
        csr: u16,
        src: CsrSrc,
    },
    /// Memory fence (a no-op in this memory model, retained for timing).
    Fence,
    /// Instruction-stream fence.
    FenceI,
    /// Environment call (machine mode).
    Ecall,
    /// Breakpoint.
    Ebreak,
    /// Return from machine-mode trap.
    Mret,
    /// Wait for interrupt.
    Wfi,
}

impl Inst {
    /// The destination register written by this instruction, if any.
    pub fn rd(&self) -> Option<u8> {
        match *self {
            Inst::Lui { rd, .. }
            | Inst::Auipc { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::OpImm { rd, .. }
            | Inst::Op { rd, .. }
            | Inst::MulDiv { rd, .. }
            | Inst::Amo { rd, .. }
            | Inst::Csr { rd, .. } => Some(rd),
            _ => None,
        }
    }

    /// True for control-flow instructions (jumps and branches).
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Branch { .. }
        )
    }

    /// True for instructions that access memory.
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::Store { .. } | Inst::Amo { .. }
        )
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // A compact disassembly, close to standard mnemonics.
        match *self {
            Inst::Lui { rd, imm } => write!(f, "lui x{rd}, {:#x}", imm),
            Inst::Auipc { rd, imm } => write!(f, "auipc x{rd}, {:#x}", imm),
            Inst::Jal { rd, imm } => write!(f, "jal x{rd}, {imm}"),
            Inst::Jalr { rd, rs1, imm } => write!(f, "jalr x{rd}, {imm}(x{rs1})"),
            Inst::Branch {
                cond,
                rs1,
                rs2,
                imm,
            } => write!(f, "b{:?} x{rs1}, x{rs2}, {imm}", cond),
            Inst::Load {
                width,
                signed,
                rd,
                rs1,
                imm,
            } => write!(
                f,
                "l{:?}{} x{rd}, {imm}(x{rs1})",
                width,
                if signed { "" } else { "u" }
            ),
            Inst::Store {
                width,
                rs2,
                rs1,
                imm,
            } => write!(f, "s{:?} x{rs2}, {imm}(x{rs1})", width),
            Inst::OpImm {
                op,
                rd,
                rs1,
                imm,
                word,
            } => write!(
                f,
                "{:?}i{} x{rd}, x{rs1}, {imm}",
                op,
                if word { "w" } else { "" }
            ),
            Inst::Op {
                op,
                rd,
                rs1,
                rs2,
                word,
            } => write!(
                f,
                "{:?}{} x{rd}, x{rs1}, x{rs2}",
                op,
                if word { "w" } else { "" }
            ),
            Inst::MulDiv {
                op,
                rd,
                rs1,
                rs2,
                word,
            } => write!(
                f,
                "{:?}{} x{rd}, x{rs1}, x{rs2}",
                op,
                if word { "w" } else { "" }
            ),
            Inst::Amo {
                op,
                width,
                rd,
                rs1,
                rs2,
            } => write!(f, "amo{:?}.{:?} x{rd}, x{rs2}, (x{rs1})", op, width),
            Inst::Csr { op, rd, csr, src } => {
                write!(f, "csr{:?} x{rd}, {csr:#x}, {:?}", op, src)
            }
            Inst::Fence => write!(f, "fence"),
            Inst::FenceI => write!(f, "fence.i"),
            Inst::Ecall => write!(f, "ecall"),
            Inst::Ebreak => write!(f, "ebreak"),
            Inst::Mret => write!(f, "mret"),
            Inst::Wfi => write!(f, "wfi"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rd_extraction() {
        assert_eq!(Inst::Lui { rd: 3, imm: 0 }.rd(), Some(3));
        assert_eq!(
            Inst::Store {
                width: MemWidth::D,
                rs2: 1,
                rs1: 2,
                imm: 0
            }
            .rd(),
            None
        );
        assert_eq!(Inst::Ecall.rd(), None);
    }

    #[test]
    fn classification() {
        assert!(Inst::Jal { rd: 0, imm: 8 }.is_control_flow());
        assert!(!Inst::Fence.is_control_flow());
        assert!(Inst::Amo {
            op: AmoOp::Add,
            width: MemWidth::W,
            rd: 1,
            rs1: 2,
            rs2: 3
        }
        .is_mem());
        assert!(!Inst::Wfi.is_mem());
    }

    #[test]
    fn widths() {
        assert_eq!(MemWidth::B.bytes(), 1);
        assert_eq!(MemWidth::H.bytes(), 2);
        assert_eq!(MemWidth::W.bytes(), 4);
        assert_eq!(MemWidth::D.bytes(), 8);
    }

    #[test]
    fn display_is_nonempty() {
        let insts = [
            Inst::Lui { rd: 1, imm: 4096 },
            Inst::Wfi,
            Inst::Csr {
                op: CsrOp::Rw,
                rd: 0,
                csr: 0x305,
                src: CsrSrc::Reg(5),
            },
        ];
        for i in insts {
            assert!(!i.to_string().is_empty());
        }
    }
}
