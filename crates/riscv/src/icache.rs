//! Host-side decoded-instruction cache with superblock dispatch.
//!
//! The functional interpreter re-fetches and re-decodes every instruction
//! on every [`Cpu::step`](crate::exec::Cpu::step); on instruction-dense
//! workloads that is most of the per-step host cost. [`DecodeCache`] is a
//! direct-mapped cache of pre-decoded [`Inst`] entries keyed by physical
//! PC, consulted by [`Cpu::step_cached`](crate::exec::Cpu::step_cached):
//! a hit skips the fetch *and* the decode; a miss fills the entry.
//!
//! # Invalidation
//!
//! A cached decode is stale the moment the word it came from is
//! overwritten — by a guest store, an AMO, or device DMA. Rather than
//! snooping every write against every entry, validity is proved lazily
//! with generation counters:
//!
//! * the bus exposes a per-page counter
//!   ([`Bus::code_generation`]) bumped by every write into the page, and
//!   a global counter ([`Bus::write_generation`]) bumped by every write
//!   anywhere;
//! * each entry records `page_gen + fence_gen` at fill time and is valid
//!   only while that sum is unchanged (`fence_gen` is the cache's own
//!   counter, bumped by `FENCE.I`, which flushes everything at once).
//!   Both terms are monotone, so the sum can never return to a stale
//!   value.
//!
//! # Superblock dispatch
//!
//! Straight-line runs skip even the per-page lookup: after an
//! instruction at `pc` retires into `pc + 4` on the same page, the
//! cursor remembers the successor PC, the generation just validated, and
//! the global write generation at validation time. The next lookup then
//! needs only three compares — "expected PC, nothing written since, same
//! generation" — to prove the entry valid. Any store (including by the
//! previous instruction itself) bumps the write generation and drops the
//! cursor back to the page-validated path; taken branches, traps, and
//! WFI end the superblock. Interrupt-poll points are *not* skipped:
//! `step_cached` polls pending interrupts before every instruction,
//! exactly like the interpreter, so interrupt timing is bit-identical.
//!
//! # Checkpoints
//!
//! The cache is deliberately **outside** checkpoint state: it is pure
//! host-side memoization of `fetch + decode`, reconstructible from
//! memory at any time. Excluding it keeps `FSCKPT01` snapshots
//! bit-identical whether the cache is enabled or not; after a restore
//! the memory's generations are bumped, so every stale entry dies and
//! the cache refills cold.

use crate::decode::decode;
use crate::inst::Inst;
use crate::mem::Bus;

/// Number of entries in a [`DecodeCache`] (must be a power of two).
/// 1024 entries ≈ 48 KiB per hart: big enough to hold the hot loops of
/// the bare-metal workloads, small enough that 1024-blade simulations
/// stay reasonable.
pub const DEFAULT_ENTRIES: usize = 1024;

/// One direct-mapped slot: the decoded instruction plus everything
/// needed to prove it is still what memory holds.
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Full PC of the cached word; `u64::MAX` marks an empty slot (no
    /// fetchable PC is ever `u64::MAX` — fills are 4-byte aligned).
    tag: u64,
    /// `page_generation + fence_generation` at fill time.
    gen: u64,
    /// The raw instruction word (the `Csr` execute arm needs it for the
    /// `mtval` of an illegal-CSR trap).
    word: u32,
    /// Client scratch riding along with the decode (0 = unset); the
    /// timing layer memoizes static instruction costs here. Reset on
    /// every fill, so an annotation is only ever observed alongside the
    /// exact `inst` it was computed from.
    annot: u16,
    /// The pre-decoded instruction.
    inst: Inst,
}

const EMPTY: Entry = Entry {
    tag: u64::MAX,
    gen: 0,
    word: 0,
    annot: 0,
    inst: Inst::Fence,
};

/// Hit/miss/invalidation counters, cumulative since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeCacheStats {
    /// Lookups served from the cache (cursor or page-validated).
    pub hits: u64,
    /// Lookups that re-fetched and re-decoded (cold or evicted slots).
    pub misses: u64,
    /// Stale entries discarded — a tag-matching slot whose generation
    /// no longer matched memory, plus one per `FENCE.I` flush.
    pub invalidations: u64,
}

/// A per-hart direct-mapped cache of decoded instructions.
///
/// See the [module docs](self) for the validity and superblock rules.
#[derive(Debug, Clone)]
pub struct DecodeCache {
    entries: Vec<Entry>,
    /// `FENCE.I` counter folded into every entry generation; bumping it
    /// invalidates the whole cache in O(1).
    fence_gen: u64,
    /// Superblock cursor: the PC the next lookup is expected to hit
    /// (`u64::MAX` = no open superblock).
    cursor_pc: u64,
    /// Generation proven valid for the cursor's page.
    cursor_gen: u64,
    /// Global write generation at the time `cursor_gen` was proven.
    cursor_write_gen: u64,
    /// Generation validated by the most recent successful lookup, used
    /// by [`advance_cursor`](Self::advance_cursor).
    last_gen: u64,
    /// Global write generation observed by that lookup.
    last_write_gen: u64,
    stats: DecodeCacheStats,
}

impl Default for DecodeCache {
    fn default() -> Self {
        Self::new()
    }
}

impl DecodeCache {
    /// A cache with [`DEFAULT_ENTRIES`] slots.
    pub fn new() -> Self {
        Self::with_entries(DEFAULT_ENTRIES)
    }

    /// A cache with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a nonzero power of two.
    pub fn with_entries(entries: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "decode cache size must be a power of two, got {entries}"
        );
        DecodeCache {
            entries: vec![EMPTY; entries],
            fence_gen: 0,
            cursor_pc: u64::MAX,
            cursor_gen: 0,
            cursor_write_gen: 0,
            last_gen: 0,
            last_write_gen: 0,
            stats: DecodeCacheStats::default(),
        }
    }

    /// Cumulative hit/miss/invalidation counters.
    pub fn stats(&self) -> DecodeCacheStats {
        self.stats
    }

    /// Looks up (filling on miss) the decoded instruction at `pc`,
    /// returning `(word, inst, annotation)` — the annotation rides along
    /// from the serving slot (0 on a fresh fill) so timing layers get
    /// their memoized static cost without a second slot probe.
    ///
    /// `None` means the PC cannot be served from the cache — an
    /// uncacheable address (MMIO, unmapped), a fetch fault, or an
    /// undecodable word — and the caller must take the interpreter slow
    /// path, which re-runs fetch/decode and raises the architectural
    /// trap. `pc` must be 4-byte aligned (the caller traps misaligned
    /// PCs before consulting the cache).
    #[inline]
    pub fn lookup<B: Bus + ?Sized>(&mut self, pc: u64, bus: &mut B) -> Option<(u32, Inst, u16)> {
        debug_assert!(pc.is_multiple_of(4), "misaligned pc {pc:#x} in lookup");
        let idx = (pc >> 2) as usize & (self.entries.len() - 1);

        // Superblock fast path: the straight-line successor, with no
        // write anywhere since its page generation was last proven.
        if pc == self.cursor_pc && bus.write_generation() == self.cursor_write_gen {
            let e = self.entries[idx];
            if e.tag == pc && e.gen == self.cursor_gen {
                self.stats.hits += 1;
                self.last_gen = e.gen;
                self.last_write_gen = self.cursor_write_gen;
                return Some((e.word, e.inst, e.annot));
            }
        }

        // Page-validated path.
        let gen = bus.code_generation(pc)?.wrapping_add(self.fence_gen);
        let e = self.entries[idx];
        if e.tag == pc {
            if e.gen == gen {
                self.stats.hits += 1;
                self.last_gen = gen;
                self.last_write_gen = bus.write_generation();
                return Some((e.word, e.inst, e.annot));
            }
            // A write touched the page (or FENCE.I flushed) since fill.
            self.stats.invalidations += 1;
        }

        // Miss: fetch, decode, fill. Faults and illegal words are left
        // for the slow path so all trap logic stays in the interpreter.
        self.stats.misses += 1;
        let word = bus.fetch(pc).ok()?;
        let inst = decode(word).ok()?;
        self.entries[idx] = Entry {
            tag: pc,
            gen,
            word,
            annot: 0,
            inst,
        };
        self.last_gen = gen;
        self.last_write_gen = bus.write_generation();
        Some((word, inst, 0))
    }

    /// Opens (or extends) a superblock: the instruction just served by
    /// [`lookup`](Self::lookup) retired straight-line into `next_pc`.
    /// Only sound when `next_pc` is on the same page as the served PC —
    /// the caller checks that — because the cursor reuses the served
    /// page's proven generation.
    #[inline]
    pub fn advance_cursor(&mut self, next_pc: u64) {
        self.cursor_pc = next_pc;
        self.cursor_gen = self.last_gen;
        self.cursor_write_gen = self.last_write_gen;
    }

    /// Ends the current superblock (taken branch, trap, WFI, or a
    /// lookup that fell to the slow path).
    #[inline]
    pub fn end_superblock(&mut self) {
        self.cursor_pc = u64::MAX;
    }

    /// The annotation stored for the entry currently caching `pc`, or 0
    /// when the slot holds a different PC (or nothing). Annotations are
    /// pure host-side memoization: a fill resets the slot's annotation,
    /// so a nonzero value always describes the `inst` most recently
    /// served for `pc` by [`lookup`](Self::lookup).
    ///
    /// Callers may only rely on an annotation for instructions that were
    /// actually served from the cache this step — for those, the slot
    /// provably still tags `pc`.
    #[inline]
    pub fn annotation(&self, pc: u64) -> u16 {
        let idx = (pc >> 2) as usize & (self.entries.len() - 1);
        let e = &self.entries[idx];
        if e.tag == pc {
            e.annot
        } else {
            0
        }
    }

    /// Stores `annot` for `pc` if (and only if) the slot currently
    /// caches `pc`; silently dropped otherwise. 0 means "unset".
    #[inline]
    pub fn set_annotation(&mut self, pc: u64, annot: u16) {
        let idx = (pc >> 2) as usize & (self.entries.len() - 1);
        let e = &mut self.entries[idx];
        if e.tag == pc {
            e.annot = annot;
        }
    }

    /// `FENCE.I`: discards every cached decode (O(1) generation bump).
    pub fn fence_i(&mut self) {
        self.fence_gen = self.fence_gen.wrapping_add(1);
        self.stats.invalidations += 1;
        self.end_superblock();
    }

    /// Discards every cached decode and closes the superblock — called
    /// after a checkpoint restore, when memory contents were replaced
    /// wholesale. (Restoring also bumps the memory generations, so this
    /// is belt-and-braces for buses whose generations are external.)
    pub fn invalidate_all(&mut self) {
        self.fence_gen = self.fence_gen.wrapping_add(1);
        self.end_superblock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::mem::Memory;

    const BASE: u64 = 0x8000_0000;

    fn mem_with(words: &[(u64, u32)]) -> Memory {
        let mut m = Memory::new(BASE, 1 << 16);
        for &(addr, w) in words {
            m.write_bytes(addr, &w.to_le_bytes()).unwrap();
        }
        m
    }

    #[test]
    fn hit_after_miss_and_counters() {
        let addi = {
            let mut a = Assembler::new(BASE);
            a.addi(1, 0, 5);
            let img = a.assemble().unwrap();
            u32::from_le_bytes(img[0..4].try_into().unwrap())
        };
        let mut mem = mem_with(&[(BASE, addi)]);
        let mut c = DecodeCache::new();
        let (w1, i1, _) = c.lookup(BASE, &mut mem).unwrap();
        let (w2, i2, _) = c.lookup(BASE, &mut mem).unwrap();
        assert_eq!((w1, i1), (w2, i2));
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn store_to_page_invalidates() {
        let mut a = Assembler::new(BASE);
        a.addi(1, 0, 5);
        let img = a.assemble().unwrap();
        let w = u32::from_le_bytes(img[0..4].try_into().unwrap());
        let mut mem = mem_with(&[(BASE, w)]);
        let mut c = DecodeCache::new();
        let (_, before, _) = c.lookup(BASE, &mut mem).unwrap();

        // Overwrite the word with a different instruction.
        let mut a2 = Assembler::new(BASE);
        a2.addi(2, 0, 9);
        let img2 = a2.assemble().unwrap();
        mem.write_bytes(BASE, &img2[0..4]).unwrap();

        let (_, after, _) = c.lookup(BASE, &mut mem).unwrap();
        assert_ne!(before, after, "stale decode served after store");
        assert_eq!(c.stats().invalidations, 1);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn fence_i_flushes_everything() {
        let mut a = Assembler::new(BASE);
        a.addi(1, 0, 5);
        a.addi(2, 0, 6);
        let img = a.assemble().unwrap();
        let mut mem = Memory::new(BASE, 1 << 16);
        mem.write_bytes(BASE, &img).unwrap();
        let mut c = DecodeCache::new();
        c.lookup(BASE, &mut mem).unwrap();
        c.lookup(BASE + 4, &mut mem).unwrap();
        assert_eq!(c.stats().misses, 2);
        c.fence_i();
        c.lookup(BASE, &mut mem).unwrap();
        c.lookup(BASE + 4, &mut mem).unwrap();
        assert_eq!(c.stats().misses, 4, "fence.i must flush all entries");
    }

    #[test]
    fn unmapped_is_uncacheable() {
        let mut mem = Memory::new(BASE, 1 << 16);
        let mut c = DecodeCache::new();
        assert_eq!(c.lookup(0x1000, &mut mem), None);
    }

    #[test]
    fn annotations_die_with_their_fill() {
        let mut a = Assembler::new(BASE);
        a.addi(1, 0, 5);
        let img = a.assemble().unwrap();
        let mut mem = mem_with(&[(BASE, u32::from_le_bytes(img[0..4].try_into().unwrap()))]);
        let mut c = DecodeCache::new();
        // Unfilled slot: reads return 0, writes are dropped.
        assert_eq!(c.annotation(BASE), 0);
        c.set_annotation(BASE, 9);
        assert_eq!(c.annotation(BASE), 0);

        c.lookup(BASE, &mut mem).unwrap();
        c.set_annotation(BASE, 9);
        assert_eq!(c.annotation(BASE), 9);
        // A different PC mapping to the same slot reads 0.
        let alias = BASE + 4 * DEFAULT_ENTRIES as u64;
        assert_eq!(c.annotation(alias), 0);

        // Refill after a store resets the annotation.
        let mut a2 = Assembler::new(BASE);
        a2.addi(2, 0, 9);
        let img2 = a2.assemble().unwrap();
        mem.write_bytes(BASE, &img2[0..4]).unwrap();
        c.lookup(BASE, &mut mem).unwrap();
        assert_eq!(c.annotation(BASE), 0, "fill must clear the annotation");
    }

    #[test]
    fn cursor_does_not_serve_stale_entry_after_store() {
        // Regression for the subtle superblock case: an entry goes
        // stale while execution is elsewhere; later a straight-line run
        // walks into it. The cursor must not skip revalidation.
        let mut a = Assembler::new(BASE);
        a.addi(1, 0, 1); // BASE
        a.addi(2, 0, 2); // BASE + 4
        let img = a.assemble().unwrap();
        let mut mem = Memory::new(BASE, 1 << 16);
        mem.write_bytes(BASE, &img).unwrap();
        let mut c = DecodeCache::new();

        // Fill both entries.
        c.lookup(BASE, &mut mem).unwrap();
        let (_, stale, _) = c.lookup(BASE + 4, &mut mem).unwrap();
        // BASE+4 is overwritten (write gen + page gen bump).
        let mut a2 = Assembler::new(BASE + 4);
        a2.addi(3, 0, 7);
        let img2 = a2.assemble().unwrap();
        mem.write_bytes(BASE + 4, &img2[0..4]).unwrap();
        // Straight-line run from BASE: lookup BASE (revalidates page),
        // open superblock into BASE+4, then look BASE+4 up via cursor.
        c.lookup(BASE, &mut mem).unwrap();
        c.advance_cursor(BASE + 4);
        let (_, fresh, _) = c.lookup(BASE + 4, &mut mem).unwrap();
        assert_ne!(stale, fresh, "cursor served a stale decode");
    }
}
