//! Machine-code decoder for RV64IMA + Zicsr.

use core::fmt;

use crate::inst::{AluOp, AmoOp, BranchCond, CsrOp, CsrSrc, Inst, MemWidth, MulDivOp};

/// Error returned for encodings this implementation does not recognise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The unrecognised instruction word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal or unsupported instruction {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

#[inline]
fn rd(w: u32) -> u8 {
    ((w >> 7) & 0x1f) as u8
}
#[inline]
fn rs1(w: u32) -> u8 {
    ((w >> 15) & 0x1f) as u8
}
#[inline]
fn rs2(w: u32) -> u8 {
    ((w >> 20) & 0x1f) as u8
}
#[inline]
fn funct3(w: u32) -> u32 {
    (w >> 12) & 0x7
}
#[inline]
fn funct7(w: u32) -> u32 {
    w >> 25
}

#[inline]
fn imm_i(w: u32) -> i64 {
    ((w as i32) >> 20) as i64
}

#[inline]
fn imm_s(w: u32) -> i64 {
    let hi = ((w as i32) >> 25) as i64; // sign-extended [31:25]
    let lo = ((w >> 7) & 0x1f) as i64;
    (hi << 5) | lo
}

#[inline]
fn imm_b(w: u32) -> i64 {
    let sign = ((w as i32) >> 31) as i64; // bit 31 -> imm[12]
    let b11 = ((w >> 7) & 1) as i64;
    let hi = ((w >> 25) & 0x3f) as i64; // imm[10:5]
    let lo = ((w >> 8) & 0xf) as i64; // imm[4:1]
    (sign << 12) | (b11 << 11) | (hi << 5) | (lo << 1)
}

#[inline]
fn imm_u(w: u32) -> i64 {
    ((w & 0xffff_f000) as i32) as i64
}

#[inline]
fn imm_j(w: u32) -> i64 {
    let sign = ((w as i32) >> 31) as i64; // imm[20]
    let b19_12 = ((w >> 12) & 0xff) as i64;
    let b11 = ((w >> 20) & 1) as i64;
    let b10_1 = ((w >> 21) & 0x3ff) as i64;
    (sign << 20) | (b19_12 << 12) | (b11 << 11) | (b10_1 << 1)
}

/// Decodes one 32-bit instruction word.
///
/// # Errors
///
/// Returns [`DecodeError`] for encodings outside RV64IMA + Zicsr +
/// `mret`/`wfi` (which the executor converts into an illegal-instruction
/// trap).
///
/// # Examples
///
/// ```
/// use firesim_riscv::{decode, Inst};
///
/// // addi x1, x0, 5
/// match decode(0x0050_0093).unwrap() {
///     Inst::OpImm { rd: 1, rs1: 0, imm: 5, .. } => {}
///     other => panic!("{other}"),
/// }
/// ```
pub fn decode(w: u32) -> Result<Inst, DecodeError> {
    let opcode = w & 0x7f;
    let err = || DecodeError { word: w };
    let inst = match opcode {
        0x37 => Inst::Lui {
            rd: rd(w),
            imm: imm_u(w),
        },
        0x17 => Inst::Auipc {
            rd: rd(w),
            imm: imm_u(w),
        },
        0x6f => Inst::Jal {
            rd: rd(w),
            imm: imm_j(w),
        },
        0x67 => {
            if funct3(w) != 0 {
                return Err(err());
            }
            Inst::Jalr {
                rd: rd(w),
                rs1: rs1(w),
                imm: imm_i(w),
            }
        }
        0x63 => {
            let cond = match funct3(w) {
                0 => BranchCond::Eq,
                1 => BranchCond::Ne,
                4 => BranchCond::Lt,
                5 => BranchCond::Ge,
                6 => BranchCond::Ltu,
                7 => BranchCond::Geu,
                _ => return Err(err()),
            };
            Inst::Branch {
                cond,
                rs1: rs1(w),
                rs2: rs2(w),
                imm: imm_b(w),
            }
        }
        0x03 => {
            let (width, signed) = match funct3(w) {
                0 => (MemWidth::B, true),
                1 => (MemWidth::H, true),
                2 => (MemWidth::W, true),
                3 => (MemWidth::D, true),
                4 => (MemWidth::B, false),
                5 => (MemWidth::H, false),
                6 => (MemWidth::W, false),
                _ => return Err(err()),
            };
            Inst::Load {
                width,
                signed,
                rd: rd(w),
                rs1: rs1(w),
                imm: imm_i(w),
            }
        }
        0x23 => {
            let width = match funct3(w) {
                0 => MemWidth::B,
                1 => MemWidth::H,
                2 => MemWidth::W,
                3 => MemWidth::D,
                _ => return Err(err()),
            };
            Inst::Store {
                width,
                rs2: rs2(w),
                rs1: rs1(w),
                imm: imm_s(w),
            }
        }
        0x13 => {
            let (op, imm) = match funct3(w) {
                0 => (AluOp::Add, imm_i(w)),
                2 => (AluOp::Slt, imm_i(w)),
                3 => (AluOp::Sltu, imm_i(w)),
                4 => (AluOp::Xor, imm_i(w)),
                6 => (AluOp::Or, imm_i(w)),
                7 => (AluOp::And, imm_i(w)),
                1 => {
                    if funct7(w) & !1 != 0 {
                        return Err(err());
                    }
                    (AluOp::Sll, ((w >> 20) & 0x3f) as i64)
                }
                5 => {
                    let shamt = ((w >> 20) & 0x3f) as i64;
                    match funct7(w) & !1 {
                        0x00 => (AluOp::Srl, shamt),
                        0x20 => (AluOp::Sra, shamt),
                        _ => return Err(err()),
                    }
                }
                _ => unreachable!(),
            };
            Inst::OpImm {
                op,
                rd: rd(w),
                rs1: rs1(w),
                imm,
                word: false,
            }
        }
        0x1b => {
            let (op, imm) = match funct3(w) {
                0 => (AluOp::Add, imm_i(w)),
                1 => {
                    if funct7(w) != 0 {
                        return Err(err());
                    }
                    (AluOp::Sll, ((w >> 20) & 0x1f) as i64)
                }
                5 => {
                    let shamt = ((w >> 20) & 0x1f) as i64;
                    match funct7(w) {
                        0x00 => (AluOp::Srl, shamt),
                        0x20 => (AluOp::Sra, shamt),
                        _ => return Err(err()),
                    }
                }
                _ => return Err(err()),
            };
            Inst::OpImm {
                op,
                rd: rd(w),
                rs1: rs1(w),
                imm,
                word: true,
            }
        }
        0x33 | 0x3b => {
            let word = opcode == 0x3b;
            if funct7(w) == 0x01 {
                let op = match funct3(w) {
                    0 => MulDivOp::Mul,
                    1 => MulDivOp::Mulh,
                    2 => MulDivOp::Mulhsu,
                    3 => MulDivOp::Mulhu,
                    4 => MulDivOp::Div,
                    5 => MulDivOp::Divu,
                    6 => MulDivOp::Rem,
                    7 => MulDivOp::Remu,
                    _ => unreachable!(),
                };
                if word
                    && !matches!(
                        op,
                        MulDivOp::Mul
                            | MulDivOp::Div
                            | MulDivOp::Divu
                            | MulDivOp::Rem
                            | MulDivOp::Remu
                    )
                {
                    return Err(err());
                }
                Inst::MulDiv {
                    op,
                    rd: rd(w),
                    rs1: rs1(w),
                    rs2: rs2(w),
                    word,
                }
            } else {
                let op = match (funct3(w), funct7(w)) {
                    (0, 0x00) => AluOp::Add,
                    (0, 0x20) => AluOp::Sub,
                    (1, 0x00) => AluOp::Sll,
                    (2, 0x00) if !word => AluOp::Slt,
                    (3, 0x00) if !word => AluOp::Sltu,
                    (4, 0x00) if !word => AluOp::Xor,
                    (5, 0x00) => AluOp::Srl,
                    (5, 0x20) => AluOp::Sra,
                    (6, 0x00) if !word => AluOp::Or,
                    (7, 0x00) if !word => AluOp::And,
                    _ => return Err(err()),
                };
                Inst::Op {
                    op,
                    rd: rd(w),
                    rs1: rs1(w),
                    rs2: rs2(w),
                    word,
                }
            }
        }
        0x2f => {
            let width = match funct3(w) {
                2 => MemWidth::W,
                3 => MemWidth::D,
                _ => return Err(err()),
            };
            let op = match funct7(w) >> 2 {
                0x02 => AmoOp::Lr,
                0x03 => AmoOp::Sc,
                0x01 => AmoOp::Swap,
                0x00 => AmoOp::Add,
                0x04 => AmoOp::Xor,
                0x0c => AmoOp::And,
                0x08 => AmoOp::Or,
                0x10 => AmoOp::Min,
                0x14 => AmoOp::Max,
                0x18 => AmoOp::Minu,
                0x1c => AmoOp::Maxu,
                _ => return Err(err()),
            };
            if op == AmoOp::Lr && rs2(w) != 0 {
                return Err(err());
            }
            Inst::Amo {
                op,
                width,
                rd: rd(w),
                rs1: rs1(w),
                rs2: rs2(w),
            }
        }
        0x0f => match funct3(w) {
            0 => Inst::Fence,
            1 => Inst::FenceI,
            _ => return Err(err()),
        },
        0x73 => match funct3(w) {
            0 => match w >> 20 {
                0x000 if rs1(w) == 0 && rd(w) == 0 => Inst::Ecall,
                0x001 if rs1(w) == 0 && rd(w) == 0 => Inst::Ebreak,
                0x302 if rs1(w) == 0 && rd(w) == 0 => Inst::Mret,
                0x105 if rs1(w) == 0 && rd(w) == 0 => Inst::Wfi,
                _ => return Err(err()),
            },
            f3 @ (1..=3 | 5..=7) => {
                let op = match f3 & 0x3 {
                    1 => CsrOp::Rw,
                    2 => CsrOp::Rs,
                    3 => CsrOp::Rc,
                    _ => return Err(err()),
                };
                let src = if f3 >= 5 {
                    CsrSrc::Imm(rs1(w))
                } else {
                    CsrSrc::Reg(rs1(w))
                };
                Inst::Csr {
                    op,
                    rd: rd(w),
                    csr: (w >> 20) as u16,
                    src,
                }
            }
            _ => return Err(err()),
        },
        _ => return Err(err()),
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_encodings() {
        // addi x1, x0, 5
        assert_eq!(
            decode(0x0050_0093).unwrap(),
            Inst::OpImm {
                op: AluOp::Add,
                rd: 1,
                rs1: 0,
                imm: 5,
                word: false
            }
        );
        // add x1, x2, x3
        assert_eq!(
            decode(0x0031_00b3).unwrap(),
            Inst::Op {
                op: AluOp::Add,
                rd: 1,
                rs1: 2,
                rs2: 3,
                word: false
            }
        );
        // lui x5, 0x12345
        assert_eq!(
            decode(0x1234_52b7).unwrap(),
            Inst::Lui {
                rd: 5,
                imm: 0x1234_5000
            }
        );
        // jal x1, 0
        assert_eq!(decode(0x0000_00ef).unwrap(), Inst::Jal { rd: 1, imm: 0 });
        // ecall / ebreak / mret / wfi
        assert_eq!(decode(0x0000_0073).unwrap(), Inst::Ecall);
        assert_eq!(decode(0x0010_0073).unwrap(), Inst::Ebreak);
        assert_eq!(decode(0x3020_0073).unwrap(), Inst::Mret);
        assert_eq!(decode(0x1050_0073).unwrap(), Inst::Wfi);
        // ld x7, 16(x2) : imm 16, rs1 2, f3 3, rd 7, op 0x03
        assert_eq!(
            decode(0x0101_3383).unwrap(),
            Inst::Load {
                width: MemWidth::D,
                signed: true,
                rd: 7,
                rs1: 2,
                imm: 16
            }
        );
        // sd x7, -8(x2): S-imm -8 -> hi=0x7f sign bits... check round trip
        // via encoder tests instead; here check a known word: 0xfe713c23
        assert_eq!(
            decode(0xfe71_3c23).unwrap(),
            Inst::Store {
                width: MemWidth::D,
                rs2: 7,
                rs1: 2,
                imm: -8
            }
        );
    }

    #[test]
    fn negative_immediates_sign_extend() {
        // addi x1, x1, -1 = 0xfff08093
        assert_eq!(
            decode(0xfff0_8093).unwrap(),
            Inst::OpImm {
                op: AluOp::Add,
                rd: 1,
                rs1: 1,
                imm: -1,
                word: false
            }
        );
    }

    #[test]
    fn branch_negative_offset() {
        // bne x1, x2, -4 = 0xfe209ee3
        assert_eq!(
            decode(0xfe20_9ee3).unwrap(),
            Inst::Branch {
                cond: BranchCond::Ne,
                rs1: 1,
                rs2: 2,
                imm: -4
            }
        );
    }

    #[test]
    fn illegal_instructions_rejected() {
        for w in [0u32, 0xffff_ffff, 0x7f] {
            // 0 and all-ones are canonical illegal encodings.
            if let Ok(i) = decode(w) {
                panic!("decoded {w:#x} as {i:?}");
            }
        }
    }

    #[test]
    fn amo_lr_requires_rs2_zero() {
        // lr.d x1, (x2): funct5 0x02 -> funct7 0x08, f3 3.
        let lr = 0x2f | (1 << 7) | (3 << 12) | (2 << 15) | (0x08 << 25);
        assert!(matches!(
            decode(lr).unwrap(),
            Inst::Amo { op: AmoOp::Lr, .. }
        ));
        let bad = lr | (1 << 20); // rs2 = 1
        assert!(decode(bad).is_err());
    }

    #[test]
    fn word_shifts_have_5bit_shamt() {
        // slliw x1, x1, 31 ok; shamt bit 5 set -> illegal
        let slliw = 0x1b | (1 << 7) | (1 << 12) | (1 << 15) | (31 << 20);
        assert!(decode(slliw).is_ok());
        let bad = 0x1b | (1 << 7) | (1 << 12) | (1 << 15) | (32 << 20);
        assert!(decode(bad).is_err());
    }
}
