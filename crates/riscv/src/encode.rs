//! Machine-code encoder: the inverse of [`crate::decode::decode`].
//!
//! Every function returns a raw 32-bit instruction word. The higher-level
//! [`crate::asm::Assembler`] builds on these to provide labels and
//! pseudo-instructions for writing the bare-metal benchmark programs.

use crate::inst::{AluOp, AmoOp, BranchCond, CsrOp, CsrSrc, Inst, MemWidth, MulDivOp};

#[inline]
fn r_type(funct7: u32, rs2: u8, rs1: u8, funct3: u32, rd: u8, opcode: u32) -> u32 {
    (funct7 << 25)
        | (u32::from(rs2) << 20)
        | (u32::from(rs1) << 15)
        | (funct3 << 12)
        | (u32::from(rd) << 7)
        | opcode
}

#[inline]
fn i_type(imm: i64, rs1: u8, funct3: u32, rd: u8, opcode: u32) -> u32 {
    debug_assert!((-2048..=2047).contains(&imm), "I imm out of range: {imm}");
    (((imm as u32) & 0xfff) << 20)
        | (u32::from(rs1) << 15)
        | (funct3 << 12)
        | (u32::from(rd) << 7)
        | opcode
}

#[inline]
fn s_type(imm: i64, rs2: u8, rs1: u8, funct3: u32, opcode: u32) -> u32 {
    debug_assert!((-2048..=2047).contains(&imm), "S imm out of range: {imm}");
    let imm = (imm as u32) & 0xfff;
    ((imm >> 5) << 25)
        | (u32::from(rs2) << 20)
        | (u32::from(rs1) << 15)
        | (funct3 << 12)
        | ((imm & 0x1f) << 7)
        | opcode
}

#[inline]
fn b_type(imm: i64, rs2: u8, rs1: u8, funct3: u32, opcode: u32) -> u32 {
    debug_assert!(
        (-4096..=4094).contains(&imm) && imm % 2 == 0,
        "B imm out of range: {imm}"
    );
    let imm = (imm as u32) & 0x1fff;
    (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3f) << 25)
        | (u32::from(rs2) << 20)
        | (u32::from(rs1) << 15)
        | (funct3 << 12)
        | (((imm >> 1) & 0xf) << 8)
        | (((imm >> 11) & 1) << 7)
        | opcode
}

#[inline]
fn u_type(imm: i64, rd: u8, opcode: u32) -> u32 {
    debug_assert!(imm % 4096 == 0, "U imm must be 4 KiB aligned: {imm:#x}");
    ((imm as u32) & 0xffff_f000) | (u32::from(rd) << 7) | opcode
}

#[inline]
fn j_type(imm: i64, rd: u8, opcode: u32) -> u32 {
    debug_assert!(
        (-(1 << 20)..(1 << 20)).contains(&imm) && imm % 2 == 0,
        "J imm out of range: {imm}"
    );
    let imm = (imm as u32) & 0x1f_ffff;
    (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xff) << 12)
        | (u32::from(rd) << 7)
        | opcode
}

fn alu_funct3(op: AluOp) -> u32 {
    match op {
        AluOp::Add | AluOp::Sub => 0,
        AluOp::Sll => 1,
        AluOp::Slt => 2,
        AluOp::Sltu => 3,
        AluOp::Xor => 4,
        AluOp::Srl | AluOp::Sra => 5,
        AluOp::Or => 6,
        AluOp::And => 7,
    }
}

fn muldiv_funct3(op: MulDivOp) -> u32 {
    match op {
        MulDivOp::Mul => 0,
        MulDivOp::Mulh => 1,
        MulDivOp::Mulhsu => 2,
        MulDivOp::Mulhu => 3,
        MulDivOp::Div => 4,
        MulDivOp::Divu => 5,
        MulDivOp::Rem => 6,
        MulDivOp::Remu => 7,
    }
}

fn branch_funct3(cond: BranchCond) -> u32 {
    match cond {
        BranchCond::Eq => 0,
        BranchCond::Ne => 1,
        BranchCond::Lt => 4,
        BranchCond::Ge => 5,
        BranchCond::Ltu => 6,
        BranchCond::Geu => 7,
    }
}

fn amo_funct5(op: AmoOp) -> u32 {
    match op {
        AmoOp::Lr => 0x02,
        AmoOp::Sc => 0x03,
        AmoOp::Swap => 0x01,
        AmoOp::Add => 0x00,
        AmoOp::Xor => 0x04,
        AmoOp::And => 0x0c,
        AmoOp::Or => 0x08,
        AmoOp::Min => 0x10,
        AmoOp::Max => 0x14,
        AmoOp::Minu => 0x18,
        AmoOp::Maxu => 0x1c,
    }
}

/// Encodes a decoded instruction back to its 32-bit word.
///
/// Round-trips with [`crate::decode::decode`]: `decode(encode(&i)) == Ok(i)` for
/// every valid instruction (property-tested).
///
/// # Panics
///
/// Debug-asserts that immediates are in range for their format.
pub fn encode(inst: &Inst) -> u32 {
    match *inst {
        Inst::Lui { rd, imm } => u_type(imm, rd, 0x37),
        Inst::Auipc { rd, imm } => u_type(imm, rd, 0x17),
        Inst::Jal { rd, imm } => j_type(imm, rd, 0x6f),
        Inst::Jalr { rd, rs1, imm } => i_type(imm, rs1, 0, rd, 0x67),
        Inst::Branch {
            cond,
            rs1,
            rs2,
            imm,
        } => b_type(imm, rs2, rs1, branch_funct3(cond), 0x63),
        Inst::Load {
            width,
            signed,
            rd,
            rs1,
            imm,
        } => {
            let funct3 = match (width, signed) {
                (MemWidth::B, true) => 0,
                (MemWidth::H, true) => 1,
                (MemWidth::W, true) => 2,
                (MemWidth::D, true) => 3,
                (MemWidth::B, false) => 4,
                (MemWidth::H, false) => 5,
                (MemWidth::W, false) => 6,
                (MemWidth::D, false) => panic!("ldu does not exist"),
            };
            i_type(imm, rs1, funct3, rd, 0x03)
        }
        Inst::Store {
            width,
            rs2,
            rs1,
            imm,
        } => {
            let funct3 = match width {
                MemWidth::B => 0,
                MemWidth::H => 1,
                MemWidth::W => 2,
                MemWidth::D => 3,
            };
            s_type(imm, rs2, rs1, funct3, 0x23)
        }
        Inst::OpImm {
            op,
            rd,
            rs1,
            imm,
            word,
        } => {
            let opcode = if word { 0x1b } else { 0x13 };
            match op {
                AluOp::Sll => {
                    let max = if word { 31 } else { 63 };
                    assert!((0..=max).contains(&imm), "shift amount out of range");
                    i_type(imm, rs1, 1, rd, opcode)
                }
                AluOp::Srl | AluOp::Sra => {
                    let max = if word { 31 } else { 63 };
                    assert!((0..=max).contains(&imm), "shift amount out of range");
                    let marker = if op == AluOp::Sra { 0x400 } else { 0 };
                    i_type(imm | marker, rs1, 5, rd, opcode)
                }
                AluOp::Sub => panic!("subi does not exist"),
                op => i_type(imm, rs1, alu_funct3(op), rd, opcode),
            }
        }
        Inst::Op {
            op,
            rd,
            rs1,
            rs2,
            word,
        } => {
            let opcode = if word { 0x3b } else { 0x33 };
            let funct7 = match op {
                AluOp::Sub | AluOp::Sra => 0x20,
                _ => 0x00,
            };
            r_type(funct7, rs2, rs1, alu_funct3(op), rd, opcode)
        }
        Inst::MulDiv {
            op,
            rd,
            rs1,
            rs2,
            word,
        } => {
            let opcode = if word { 0x3b } else { 0x33 };
            r_type(0x01, rs2, rs1, muldiv_funct3(op), rd, opcode)
        }
        Inst::Amo {
            op,
            width,
            rd,
            rs1,
            rs2,
        } => {
            let funct3 = match width {
                MemWidth::W => 2,
                MemWidth::D => 3,
                _ => panic!("AMO width must be W or D"),
            };
            r_type(amo_funct5(op) << 2, rs2, rs1, funct3, rd, 0x2f)
        }
        Inst::Csr { op, rd, csr, src } => {
            let base = match op {
                CsrOp::Rw => 1,
                CsrOp::Rs => 2,
                CsrOp::Rc => 3,
            };
            let (funct3, rs1) = match src {
                CsrSrc::Reg(r) => (base, r),
                CsrSrc::Imm(z) => (base + 4, z),
            };
            (u32::from(csr) << 20)
                | (u32::from(rs1) << 15)
                | (funct3 << 12)
                | (u32::from(rd) << 7)
                | 0x73
        }
        Inst::Fence => 0x0000_000f,
        Inst::FenceI => 0x0000_100f,
        Inst::Ecall => 0x0000_0073,
        Inst::Ebreak => 0x0010_0073,
        Inst::Mret => 0x3020_0073,
        Inst::Wfi => 0x1050_0073,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    #[test]
    fn golden_round_trip() {
        let insts = [
            Inst::OpImm {
                op: AluOp::Add,
                rd: 1,
                rs1: 0,
                imm: 5,
                word: false,
            },
            Inst::Op {
                op: AluOp::Add,
                rd: 1,
                rs1: 2,
                rs2: 3,
                word: false,
            },
        ];
        assert_eq!(encode(&insts[0]), 0x0050_0093);
        assert_eq!(encode(&insts[1]), 0x0031_00b3);
        for i in insts {
            assert_eq!(decode(encode(&i)).unwrap(), i);
        }
    }

    #[test]
    fn store_negative_imm_round_trip() {
        let i = Inst::Store {
            width: MemWidth::D,
            rs2: 7,
            rs1: 2,
            imm: -8,
        };
        assert_eq!(encode(&i), 0xfe71_3c23);
        assert_eq!(decode(encode(&i)).unwrap(), i);
    }

    #[test]
    fn shift_encodings() {
        let srai = Inst::OpImm {
            op: AluOp::Sra,
            rd: 3,
            rs1: 3,
            imm: 63,
            word: false,
        };
        assert_eq!(decode(encode(&srai)).unwrap(), srai);
        let slliw = Inst::OpImm {
            op: AluOp::Sll,
            rd: 3,
            rs1: 3,
            imm: 31,
            word: true,
        };
        assert_eq!(decode(encode(&slliw)).unwrap(), slliw);
    }

    #[test]
    fn system_encodings() {
        for i in [
            Inst::Fence,
            Inst::FenceI,
            Inst::Ecall,
            Inst::Ebreak,
            Inst::Mret,
            Inst::Wfi,
        ] {
            assert_eq!(decode(encode(&i)).unwrap(), i);
        }
    }

    #[test]
    fn csr_imm_and_reg_forms() {
        let reg = Inst::Csr {
            op: CsrOp::Rs,
            rd: 5,
            csr: 0x304,
            src: CsrSrc::Reg(6),
        };
        let imm = Inst::Csr {
            op: CsrOp::Rw,
            rd: 0,
            csr: 0x305,
            src: CsrSrc::Imm(31),
        };
        assert_eq!(decode(encode(&reg)).unwrap(), reg);
        assert_eq!(decode(encode(&imm)).unwrap(), imm);
    }

    #[test]
    fn amo_round_trip() {
        for op in [
            AmoOp::Lr,
            AmoOp::Sc,
            AmoOp::Swap,
            AmoOp::Add,
            AmoOp::Xor,
            AmoOp::And,
            AmoOp::Or,
            AmoOp::Min,
            AmoOp::Max,
            AmoOp::Minu,
            AmoOp::Maxu,
        ] {
            for width in [MemWidth::W, MemWidth::D] {
                let rs2 = if op == AmoOp::Lr { 0 } else { 9 };
                let i = Inst::Amo {
                    op,
                    width,
                    rd: 4,
                    rs1: 8,
                    rs2,
                };
                assert_eq!(decode(encode(&i)).unwrap(), i, "{op:?} {width:?}");
            }
        }
    }
}
