//! # firesim-riscv
//!
//! A from-scratch RV64IMA + Zicsr (machine-mode) implementation: instruction
//! set definition, decoder, encoder/assembler, CSR file, and a functional
//! executor.
//!
//! In the FireSim paper, server blades are Rocket Chip SoCs — RV64 cores
//! generated from Chisel RTL and executed on FPGAs. FireSim-rs has no FPGA
//! or HDL flow, so the blade's core is a *software* model: this crate
//! provides the architectural (functional) layer, and `firesim-uarch` adds
//! the Rocket-like cycle timing on top. The split mirrors how an RTL core
//! separates architectural state from pipeline control.
//!
//! The bare-metal benchmark programs from the paper's evaluation (§IV-C's
//! NIC bandwidth saturation test and the ping responder) are written
//! against this crate's [`asm::Assembler`] and run on the simulated cores
//! instruction-for-instruction.
//!
//! ## Example
//!
//! ```
//! use firesim_riscv::asm::Assembler;
//! use firesim_riscv::exec::{Cpu, StepOutcome};
//! use firesim_riscv::mem::Memory;
//!
//! // A program that sums 1..=10 into x10 then parks in WFI.
//! let mut a = Assembler::new(0x8000_0000);
//! a.li(10, 0);         // acc = 0
//! a.li(5, 1);          // i = 1
//! a.li(6, 11);         // bound
//! a.label("loop");
//! a.add(10, 10, 5);
//! a.addi(5, 5, 1);
//! a.blt(5, 6, "loop");
//! a.wfi();
//! let image = a.assemble().unwrap();
//!
//! let mut mem = Memory::new(0x8000_0000, 64 * 1024);
//! mem.write_bytes(0x8000_0000, &image).unwrap();
//! let mut cpu = Cpu::new(0, 0x8000_0000);
//! loop {
//!     if let StepOutcome::Wfi = cpu.step(&mut mem).unwrap() {
//!         break;
//!     }
//! }
//! assert_eq!(cpu.read_reg(10), 55);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asm;
pub mod csr;
pub mod decode;
pub mod encode;
pub mod exec;
pub mod icache;
pub mod inst;
pub mod mem;

pub use csr::{CsrFile, Interrupt};
pub use decode::{decode, DecodeError};
pub use exec::{Cpu, MemAccess, StepOutcome, Trap};
pub use icache::{DecodeCache, DecodeCacheStats};
pub use inst::Inst;
pub use mem::{Bus, MemFault, Memory};

/// Default reset vector / DRAM base used by FireSim-rs SoCs, matching the
/// Rocket Chip convention.
pub const DRAM_BASE: u64 = 0x8000_0000;
