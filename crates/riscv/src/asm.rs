//! A small two-pass assembler with labels and standard pseudo-instructions.
//!
//! The paper's bare-metal benchmarks (NIC bandwidth saturation, ping
//! response) are real RISC-V programs; [`Assembler`] is how FireSim-rs
//! writes them. It supports the full RV64IMA + Zicsr instruction set via
//! mnemonic methods, labels with forward references, the `li`/`la`
//! constant-synthesis pseudo-instructions, and raw data words.
//!
//! # Examples
//!
//! ```
//! use firesim_riscv::asm::Assembler;
//!
//! let mut a = Assembler::new(0x8000_0000);
//! a.li(10, 0x1234_5678_9abc_def0u64 as i64);
//! a.label("spin");
//! a.j("spin");
//! let image = a.assemble().unwrap();
//! assert!(image.len() % 4 == 0);
//! ```

use core::fmt;
use std::collections::HashMap;

use crate::encode::encode;
use crate::inst::{AluOp, AmoOp, BranchCond, CsrOp, CsrSrc, Inst, MemWidth, MulDivOp};

/// Errors reported by [`Assembler::assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmError {
    /// A referenced label was never defined.
    UnknownLabel {
        /// The label name.
        label: String,
    },
    /// A label was defined twice.
    DuplicateLabel {
        /// The label name.
        label: String,
    },
    /// A branch target is beyond the ±4 KiB B-format range.
    BranchOutOfRange {
        /// The label name.
        label: String,
        /// The required displacement.
        delta: i64,
    },
    /// A jump target is beyond the ±1 MiB J-format range.
    JumpOutOfRange {
        /// The label name.
        label: String,
        /// The required displacement.
        delta: i64,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnknownLabel { label } => write!(f, "unknown label {label:?}"),
            AsmError::DuplicateLabel { label } => write!(f, "duplicate label {label:?}"),
            AsmError::BranchOutOfRange { label, delta } => {
                write!(f, "branch to {label:?} out of range ({delta} bytes)")
            }
            AsmError::JumpOutOfRange { label, delta } => {
                write!(f, "jump to {label:?} out of range ({delta} bytes)")
            }
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug)]
enum Fixup {
    Branch {
        cond: BranchCond,
        rs1: u8,
        rs2: u8,
    },
    Jal {
        rd: u8,
    },
    /// `auipc rd, %hi` at `at`, `addi rd, rd, %lo` at `at + 1`.
    La {
        rd: u8,
    },
}

/// The assembler. See the [module docs](self).
#[derive(Debug, Default)]
pub struct Assembler {
    base: u64,
    words: Vec<u32>,
    labels: HashMap<String, usize>,
    fixups: Vec<(usize, Fixup, String)>,
}

#[inline]
fn sign12(imm: i64) -> i64 {
    ((imm & 0xfff) ^ 0x800) - 0x800
}

impl Assembler {
    /// Creates an assembler whose first instruction will live at `base`.
    pub fn new(base: u64) -> Self {
        Assembler {
            base,
            ..Default::default()
        }
    }

    /// The address the *next* emitted word will occupy.
    pub fn here(&self) -> u64 {
        self.base + 4 * self.words.len() as u64
    }

    /// Defines a label at the current position.
    ///
    /// Duplicates are reported by [`assemble`](Assembler::assemble).
    pub fn label(&mut self, name: impl Into<String>) {
        let name = name.into();
        if self.labels.insert(name.clone(), self.words.len()).is_some() {
            // Remember the duplicate by poisoning with usize::MAX.
            self.labels.insert(name, usize::MAX);
        }
    }

    /// Emits a decoded instruction directly.
    pub fn inst(&mut self, inst: Inst) {
        self.words.push(encode(&inst));
    }

    /// Emits a raw 32-bit data word.
    pub fn word(&mut self, w: u32) {
        self.words.push(w);
    }

    /// Emits a raw 64-bit data word (little-endian, two words).
    pub fn dword(&mut self, w: u64) {
        self.words.push(w as u32);
        self.words.push((w >> 32) as u32);
    }

    /// Finalises: resolves all label references and returns the image.
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] for unknown/duplicate labels or out-of-range
    /// displacements.
    pub fn assemble(mut self) -> Result<Vec<u8>, AsmError> {
        for (name, &idx) in &self.labels {
            if idx == usize::MAX {
                return Err(AsmError::DuplicateLabel {
                    label: name.clone(),
                });
            }
        }
        for (at, fixup, label) in std::mem::take(&mut self.fixups) {
            let &target_idx = self.labels.get(&label).ok_or(AsmError::UnknownLabel {
                label: label.clone(),
            })?;
            let target = self.base + 4 * target_idx as u64;
            let pc = self.base + 4 * at as u64;
            let delta = target.wrapping_sub(pc) as i64;
            match fixup {
                Fixup::Branch { cond, rs1, rs2 } => {
                    if !(-4096..=4094).contains(&delta) {
                        return Err(AsmError::BranchOutOfRange { label, delta });
                    }
                    self.words[at] = encode(&Inst::Branch {
                        cond,
                        rs1,
                        rs2,
                        imm: delta,
                    });
                }
                Fixup::Jal { rd } => {
                    if !(-(1 << 20)..(1 << 20)).contains(&delta) {
                        return Err(AsmError::JumpOutOfRange { label, delta });
                    }
                    self.words[at] = encode(&Inst::Jal { rd, imm: delta });
                }
                Fixup::La { rd } => {
                    let lo = sign12(delta);
                    let hi = delta.wrapping_sub(lo);
                    self.words[at] = encode(&Inst::Auipc {
                        rd,
                        imm: (hi as i32) as i64,
                    });
                    self.words[at + 1] = encode(&Inst::OpImm {
                        op: AluOp::Add,
                        rd,
                        rs1: rd,
                        imm: lo,
                        word: false,
                    });
                }
            }
        }
        Ok(self.words.iter().flat_map(|w| w.to_le_bytes()).collect())
    }

    // ----- pseudo-instructions -----

    /// `nop`.
    pub fn nop(&mut self) {
        self.addi(0, 0, 0);
    }

    /// `mv rd, rs`.
    pub fn mv(&mut self, rd: u8, rs: u8) {
        self.addi(rd, rs, 0);
    }

    /// Loads an arbitrary 64-bit constant with the standard lui/addiw/
    /// slli/addi synthesis.
    pub fn li(&mut self, rd: u8, imm: i64) {
        if (-2048..=2047).contains(&imm) {
            self.addi(rd, 0, imm);
            return;
        }
        if imm == (imm as i32) as i64 {
            let lo = sign12(imm);
            let hi = imm.wrapping_sub(lo);
            // lui sign-extends its 32-bit immediate; addiw wraps the
            // 32-bit sum back, so edge cases like 0x7fffffff work.
            self.inst(Inst::Lui {
                rd,
                imm: (hi as i32) as i64,
            });
            if lo != 0 {
                self.addiw(rd, rd, lo);
            }
            return;
        }
        let lo12 = sign12(imm);
        self.li(rd, imm.wrapping_sub(lo12) >> 12);
        self.slli(rd, rd, 12);
        if lo12 != 0 {
            self.addi(rd, rd, lo12);
        }
    }

    /// `la rd, label` — PC-relative address of a label (auipc + addi).
    pub fn la(&mut self, rd: u8, label: impl Into<String>) {
        let at = self.words.len();
        self.fixups.push((at, Fixup::La { rd }, label.into()));
        self.words.push(0); // auipc placeholder
        self.words.push(0); // addi placeholder
    }

    /// `j label` (jal x0).
    pub fn j(&mut self, label: impl Into<String>) {
        self.jal(0, label);
    }

    /// `call label` (jal x1).
    pub fn call(&mut self, label: impl Into<String>) {
        self.jal(1, label);
    }

    /// `ret` (jalr x0, 0(x1)).
    pub fn ret(&mut self) {
        self.inst(Inst::Jalr {
            rd: 0,
            rs1: 1,
            imm: 0,
        });
    }

    /// `jal rd, label`.
    pub fn jal(&mut self, rd: u8, label: impl Into<String>) {
        let at = self.words.len();
        self.fixups.push((at, Fixup::Jal { rd }, label.into()));
        self.words.push(0);
    }

    /// `jalr rd, imm(rs1)`.
    pub fn jalr(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.inst(Inst::Jalr { rd, rs1, imm });
    }

    fn branch(&mut self, cond: BranchCond, rs1: u8, rs2: u8, label: impl Into<String>) {
        let at = self.words.len();
        self.fixups
            .push((at, Fixup::Branch { cond, rs1, rs2 }, label.into()));
        self.words.push(0);
    }

    // ----- branches -----

    /// `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: u8, rs2: u8, label: impl Into<String>) {
        self.branch(BranchCond::Eq, rs1, rs2, label);
    }
    /// `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: u8, rs2: u8, label: impl Into<String>) {
        self.branch(BranchCond::Ne, rs1, rs2, label);
    }
    /// `blt rs1, rs2, label`.
    pub fn blt(&mut self, rs1: u8, rs2: u8, label: impl Into<String>) {
        self.branch(BranchCond::Lt, rs1, rs2, label);
    }
    /// `bge rs1, rs2, label`.
    pub fn bge(&mut self, rs1: u8, rs2: u8, label: impl Into<String>) {
        self.branch(BranchCond::Ge, rs1, rs2, label);
    }
    /// `bltu rs1, rs2, label`.
    pub fn bltu(&mut self, rs1: u8, rs2: u8, label: impl Into<String>) {
        self.branch(BranchCond::Ltu, rs1, rs2, label);
    }
    /// `bgeu rs1, rs2, label`.
    pub fn bgeu(&mut self, rs1: u8, rs2: u8, label: impl Into<String>) {
        self.branch(BranchCond::Geu, rs1, rs2, label);
    }
    /// `ble rs1, rs2, label` (pseudo: bge rs2, rs1).
    pub fn ble(&mut self, rs1: u8, rs2: u8, label: impl Into<String>) {
        self.branch(BranchCond::Ge, rs2, rs1, label);
    }
    /// `bgt rs1, rs2, label` (pseudo: blt rs2, rs1).
    pub fn bgt(&mut self, rs1: u8, rs2: u8, label: impl Into<String>) {
        self.branch(BranchCond::Lt, rs2, rs1, label);
    }
    /// `beqz rs, label`.
    pub fn beqz(&mut self, rs: u8, label: impl Into<String>) {
        self.beq(rs, 0, label);
    }
    /// `bnez rs, label`.
    pub fn bnez(&mut self, rs: u8, label: impl Into<String>) {
        self.bne(rs, 0, label);
    }

    // ----- loads/stores: rd/rs2 first, then base register, then offset -----

    /// `lb rd, off(base)`.
    pub fn lb(&mut self, rd: u8, base: u8, off: i64) {
        self.inst(Inst::Load {
            width: MemWidth::B,
            signed: true,
            rd,
            rs1: base,
            imm: off,
        });
    }
    /// `lh rd, off(base)`.
    pub fn lh(&mut self, rd: u8, base: u8, off: i64) {
        self.inst(Inst::Load {
            width: MemWidth::H,
            signed: true,
            rd,
            rs1: base,
            imm: off,
        });
    }
    /// `lw rd, off(base)`.
    pub fn lw(&mut self, rd: u8, base: u8, off: i64) {
        self.inst(Inst::Load {
            width: MemWidth::W,
            signed: true,
            rd,
            rs1: base,
            imm: off,
        });
    }
    /// `ld rd, off(base)`.
    pub fn ld(&mut self, rd: u8, base: u8, off: i64) {
        self.inst(Inst::Load {
            width: MemWidth::D,
            signed: true,
            rd,
            rs1: base,
            imm: off,
        });
    }
    /// `lbu rd, off(base)`.
    pub fn lbu(&mut self, rd: u8, base: u8, off: i64) {
        self.inst(Inst::Load {
            width: MemWidth::B,
            signed: false,
            rd,
            rs1: base,
            imm: off,
        });
    }
    /// `lhu rd, off(base)`.
    pub fn lhu(&mut self, rd: u8, base: u8, off: i64) {
        self.inst(Inst::Load {
            width: MemWidth::H,
            signed: false,
            rd,
            rs1: base,
            imm: off,
        });
    }
    /// `lwu rd, off(base)`.
    pub fn lwu(&mut self, rd: u8, base: u8, off: i64) {
        self.inst(Inst::Load {
            width: MemWidth::W,
            signed: false,
            rd,
            rs1: base,
            imm: off,
        });
    }
    /// `sb rs2, off(base)`.
    pub fn sb(&mut self, rs2: u8, base: u8, off: i64) {
        self.inst(Inst::Store {
            width: MemWidth::B,
            rs2,
            rs1: base,
            imm: off,
        });
    }
    /// `sh rs2, off(base)`.
    pub fn sh(&mut self, rs2: u8, base: u8, off: i64) {
        self.inst(Inst::Store {
            width: MemWidth::H,
            rs2,
            rs1: base,
            imm: off,
        });
    }
    /// `sw rs2, off(base)`.
    pub fn sw(&mut self, rs2: u8, base: u8, off: i64) {
        self.inst(Inst::Store {
            width: MemWidth::W,
            rs2,
            rs1: base,
            imm: off,
        });
    }
    /// `sd rs2, off(base)`.
    pub fn sd(&mut self, rs2: u8, base: u8, off: i64) {
        self.inst(Inst::Store {
            width: MemWidth::D,
            rs2,
            rs1: base,
            imm: off,
        });
    }

    // ----- ALU immediate -----

    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.inst(Inst::OpImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
            word: false,
        });
    }
    /// `addiw rd, rs1, imm`.
    pub fn addiw(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.inst(Inst::OpImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
            word: true,
        });
    }
    /// `slti rd, rs1, imm`.
    pub fn slti(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.inst(Inst::OpImm {
            op: AluOp::Slt,
            rd,
            rs1,
            imm,
            word: false,
        });
    }
    /// `sltiu rd, rs1, imm`.
    pub fn sltiu(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.inst(Inst::OpImm {
            op: AluOp::Sltu,
            rd,
            rs1,
            imm,
            word: false,
        });
    }
    /// `xori rd, rs1, imm`.
    pub fn xori(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.inst(Inst::OpImm {
            op: AluOp::Xor,
            rd,
            rs1,
            imm,
            word: false,
        });
    }
    /// `ori rd, rs1, imm`.
    pub fn ori(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.inst(Inst::OpImm {
            op: AluOp::Or,
            rd,
            rs1,
            imm,
            word: false,
        });
    }
    /// `andi rd, rs1, imm`.
    pub fn andi(&mut self, rd: u8, rs1: u8, imm: i64) {
        self.inst(Inst::OpImm {
            op: AluOp::And,
            rd,
            rs1,
            imm,
            word: false,
        });
    }
    /// `slli rd, rs1, shamt`.
    pub fn slli(&mut self, rd: u8, rs1: u8, shamt: i64) {
        self.inst(Inst::OpImm {
            op: AluOp::Sll,
            rd,
            rs1,
            imm: shamt,
            word: false,
        });
    }
    /// `srli rd, rs1, shamt`.
    pub fn srli(&mut self, rd: u8, rs1: u8, shamt: i64) {
        self.inst(Inst::OpImm {
            op: AluOp::Srl,
            rd,
            rs1,
            imm: shamt,
            word: false,
        });
    }
    /// `srai rd, rs1, shamt`.
    pub fn srai(&mut self, rd: u8, rs1: u8, shamt: i64) {
        self.inst(Inst::OpImm {
            op: AluOp::Sra,
            rd,
            rs1,
            imm: shamt,
            word: false,
        });
    }
    /// `slliw rd, rs1, shamt`.
    pub fn slliw(&mut self, rd: u8, rs1: u8, shamt: i64) {
        self.inst(Inst::OpImm {
            op: AluOp::Sll,
            rd,
            rs1,
            imm: shamt,
            word: true,
        });
    }
    /// `srliw rd, rs1, shamt`.
    pub fn srliw(&mut self, rd: u8, rs1: u8, shamt: i64) {
        self.inst(Inst::OpImm {
            op: AluOp::Srl,
            rd,
            rs1,
            imm: shamt,
            word: true,
        });
    }
    /// `sraiw rd, rs1, shamt`.
    pub fn sraiw(&mut self, rd: u8, rs1: u8, shamt: i64) {
        self.inst(Inst::OpImm {
            op: AluOp::Sra,
            rd,
            rs1,
            imm: shamt,
            word: true,
        });
    }

    // ----- ALU register -----

    /// `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.inst(Inst::Op {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
            word: false,
        });
    }
    /// `sub rd, rs1, rs2`.
    pub fn sub(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.inst(Inst::Op {
            op: AluOp::Sub,
            rd,
            rs1,
            rs2,
            word: false,
        });
    }
    /// `sll rd, rs1, rs2`.
    pub fn sll(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.inst(Inst::Op {
            op: AluOp::Sll,
            rd,
            rs1,
            rs2,
            word: false,
        });
    }
    /// `slt rd, rs1, rs2`.
    pub fn slt(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.inst(Inst::Op {
            op: AluOp::Slt,
            rd,
            rs1,
            rs2,
            word: false,
        });
    }
    /// `sltu rd, rs1, rs2`.
    pub fn sltu(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.inst(Inst::Op {
            op: AluOp::Sltu,
            rd,
            rs1,
            rs2,
            word: false,
        });
    }
    /// `xor rd, rs1, rs2`.
    pub fn xor(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.inst(Inst::Op {
            op: AluOp::Xor,
            rd,
            rs1,
            rs2,
            word: false,
        });
    }
    /// `srl rd, rs1, rs2`.
    pub fn srl(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.inst(Inst::Op {
            op: AluOp::Srl,
            rd,
            rs1,
            rs2,
            word: false,
        });
    }
    /// `sra rd, rs1, rs2`.
    pub fn sra(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.inst(Inst::Op {
            op: AluOp::Sra,
            rd,
            rs1,
            rs2,
            word: false,
        });
    }
    /// `or rd, rs1, rs2`.
    pub fn or(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.inst(Inst::Op {
            op: AluOp::Or,
            rd,
            rs1,
            rs2,
            word: false,
        });
    }
    /// `and rd, rs1, rs2`.
    pub fn and(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.inst(Inst::Op {
            op: AluOp::And,
            rd,
            rs1,
            rs2,
            word: false,
        });
    }
    /// `addw rd, rs1, rs2`.
    pub fn addw(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.inst(Inst::Op {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
            word: true,
        });
    }
    /// `subw rd, rs1, rs2`.
    pub fn subw(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.inst(Inst::Op {
            op: AluOp::Sub,
            rd,
            rs1,
            rs2,
            word: true,
        });
    }
    /// `sllw rd, rs1, rs2`.
    pub fn sllw(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.inst(Inst::Op {
            op: AluOp::Sll,
            rd,
            rs1,
            rs2,
            word: true,
        });
    }
    /// `srlw rd, rs1, rs2`.
    pub fn srlw(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.inst(Inst::Op {
            op: AluOp::Srl,
            rd,
            rs1,
            rs2,
            word: true,
        });
    }
    /// `sraw rd, rs1, rs2`.
    pub fn sraw(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.inst(Inst::Op {
            op: AluOp::Sra,
            rd,
            rs1,
            rs2,
            word: true,
        });
    }

    // ----- multiply/divide -----

    /// `mul rd, rs1, rs2`.
    pub fn mul(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.inst(Inst::MulDiv {
            op: MulDivOp::Mul,
            rd,
            rs1,
            rs2,
            word: false,
        });
    }
    /// `mulh rd, rs1, rs2`.
    pub fn mulh(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.inst(Inst::MulDiv {
            op: MulDivOp::Mulh,
            rd,
            rs1,
            rs2,
            word: false,
        });
    }
    /// `mulhu rd, rs1, rs2`.
    pub fn mulhu(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.inst(Inst::MulDiv {
            op: MulDivOp::Mulhu,
            rd,
            rs1,
            rs2,
            word: false,
        });
    }
    /// `div rd, rs1, rs2`.
    pub fn div(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.inst(Inst::MulDiv {
            op: MulDivOp::Div,
            rd,
            rs1,
            rs2,
            word: false,
        });
    }
    /// `divu rd, rs1, rs2`.
    pub fn divu(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.inst(Inst::MulDiv {
            op: MulDivOp::Divu,
            rd,
            rs1,
            rs2,
            word: false,
        });
    }
    /// `rem rd, rs1, rs2`.
    pub fn rem(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.inst(Inst::MulDiv {
            op: MulDivOp::Rem,
            rd,
            rs1,
            rs2,
            word: false,
        });
    }
    /// `remu rd, rs1, rs2`.
    pub fn remu(&mut self, rd: u8, rs1: u8, rs2: u8) {
        self.inst(Inst::MulDiv {
            op: MulDivOp::Remu,
            rd,
            rs1,
            rs2,
            word: false,
        });
    }

    // ----- upper immediates -----

    /// `lui rd, imm` (`imm` must be 4 KiB aligned).
    pub fn lui(&mut self, rd: u8, imm: i64) {
        self.inst(Inst::Lui { rd, imm });
    }
    /// `auipc rd, imm` (`imm` must be 4 KiB aligned).
    pub fn auipc(&mut self, rd: u8, imm: i64) {
        self.inst(Inst::Auipc { rd, imm });
    }

    // ----- atomics -----

    /// `lr.w rd, (base)`.
    pub fn lr_w(&mut self, rd: u8, base: u8) {
        self.inst(Inst::Amo {
            op: AmoOp::Lr,
            width: MemWidth::W,
            rd,
            rs1: base,
            rs2: 0,
        });
    }
    /// `lr.d rd, (base)`.
    pub fn lr_d(&mut self, rd: u8, base: u8) {
        self.inst(Inst::Amo {
            op: AmoOp::Lr,
            width: MemWidth::D,
            rd,
            rs1: base,
            rs2: 0,
        });
    }
    /// `sc.w rd, rs2, (base)`.
    pub fn sc_w(&mut self, rd: u8, rs2: u8, base: u8) {
        self.inst(Inst::Amo {
            op: AmoOp::Sc,
            width: MemWidth::W,
            rd,
            rs1: base,
            rs2,
        });
    }
    /// `sc.d rd, rs2, (base)`.
    pub fn sc_d(&mut self, rd: u8, rs2: u8, base: u8) {
        self.inst(Inst::Amo {
            op: AmoOp::Sc,
            width: MemWidth::D,
            rd,
            rs1: base,
            rs2,
        });
    }
    /// `amoswap.d rd, rs2, (base)`.
    pub fn amoswap_d(&mut self, rd: u8, rs2: u8, base: u8) {
        self.inst(Inst::Amo {
            op: AmoOp::Swap,
            width: MemWidth::D,
            rd,
            rs1: base,
            rs2,
        });
    }
    /// `amoadd.w rd, rs2, (base)`.
    pub fn amoadd_w(&mut self, rd: u8, rs2: u8, base: u8) {
        self.inst(Inst::Amo {
            op: AmoOp::Add,
            width: MemWidth::W,
            rd,
            rs1: base,
            rs2,
        });
    }
    /// `amoadd.d rd, rs2, (base)`.
    pub fn amoadd_d(&mut self, rd: u8, rs2: u8, base: u8) {
        self.inst(Inst::Amo {
            op: AmoOp::Add,
            width: MemWidth::D,
            rd,
            rs1: base,
            rs2,
        });
    }
    /// `amoor.d rd, rs2, (base)`.
    pub fn amoor_d(&mut self, rd: u8, rs2: u8, base: u8) {
        self.inst(Inst::Amo {
            op: AmoOp::Or,
            width: MemWidth::D,
            rd,
            rs1: base,
            rs2,
        });
    }

    // ----- CSRs -----

    /// `csrrw rd, csr, rs1`.
    pub fn csrrw(&mut self, rd: u8, csr: u16, rs1: u8) {
        self.inst(Inst::Csr {
            op: CsrOp::Rw,
            rd,
            csr,
            src: CsrSrc::Reg(rs1),
        });
    }
    /// `csrrs rd, csr, rs1`.
    pub fn csrrs(&mut self, rd: u8, csr: u16, rs1: u8) {
        self.inst(Inst::Csr {
            op: CsrOp::Rs,
            rd,
            csr,
            src: CsrSrc::Reg(rs1),
        });
    }
    /// `csrr rd, csr` (read).
    pub fn csrr(&mut self, rd: u8, csr: u16) {
        self.csrrs(rd, csr, 0);
    }
    /// `csrw csr, rs` (write, discarding old value).
    pub fn csrw(&mut self, csr: u16, rs: u8) {
        self.csrrw(0, csr, rs);
    }
    /// `csrs csr, rs` (set bits).
    pub fn csrs(&mut self, csr: u16, rs: u8) {
        self.csrrs(0, csr, rs);
    }
    /// `csrc csr, rs` (clear bits).
    pub fn csrc(&mut self, csr: u16, rs: u8) {
        self.inst(Inst::Csr {
            op: CsrOp::Rc,
            rd: 0,
            csr,
            src: CsrSrc::Reg(rs),
        });
    }
    /// `csrsi csr, imm` (set bits, 5-bit immediate).
    pub fn csrsi(&mut self, csr: u16, imm: u8) {
        self.inst(Inst::Csr {
            op: CsrOp::Rs,
            rd: 0,
            csr,
            src: CsrSrc::Imm(imm),
        });
    }
    /// `csrci csr, imm` (clear bits, 5-bit immediate).
    pub fn csrci(&mut self, csr: u16, imm: u8) {
        self.inst(Inst::Csr {
            op: CsrOp::Rc,
            rd: 0,
            csr,
            src: CsrSrc::Imm(imm),
        });
    }

    // ----- system -----

    /// `ecall`.
    pub fn ecall(&mut self) {
        self.inst(Inst::Ecall);
    }
    /// `ebreak`.
    pub fn ebreak(&mut self) {
        self.inst(Inst::Ebreak);
    }
    /// `mret`.
    pub fn mret(&mut self) {
        self.inst(Inst::Mret);
    }
    /// `wfi`.
    pub fn wfi(&mut self) {
        self.inst(Inst::Wfi);
    }
    /// `fence`.
    pub fn fence(&mut self) {
        self.inst(Inst::Fence);
    }
    /// `fence.i` — instruction-stream fence; required between writing
    /// code and executing it (flushes the host-side decode cache).
    pub fn fence_i(&mut self) {
        self.inst(Inst::FenceI);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Cpu, StepOutcome};
    use crate::mem::Memory;

    const BASE: u64 = 0x8000_0000;

    fn eval_li(imm: i64) -> u64 {
        let mut a = Assembler::new(BASE);
        a.li(10, imm);
        a.wfi();
        let image = a.assemble().unwrap();
        let mut mem = Memory::new(BASE, 4096);
        mem.write_bytes(BASE, &image).unwrap();
        let mut cpu = Cpu::new(0, BASE);
        for _ in 0..64 {
            if let StepOutcome::Wfi = cpu.step(&mut mem).unwrap() {
                return cpu.read_reg(10);
            }
        }
        panic!("li sequence too long for {imm:#x}");
    }

    #[test]
    fn li_covers_edge_constants() {
        for imm in [
            0i64,
            1,
            -1,
            2047,
            -2048,
            2048,
            -2049,
            0x7fff_ffff,
            -0x8000_0000,
            0x8000_0000,
            0x7fff_f800,
            0x1234_5678,
            -0x1234_5678,
            0x1234_5678_9abc_def0u64 as i64,
            i64::MAX,
            i64::MIN,
            u64::MAX as i64,
            0x8000_0000_0000_0000u64 as i64,
            0x0000_7fff_ffff_f000,
        ] {
            assert_eq!(eval_li(imm), imm as u64, "li {imm:#x}");
        }
    }

    #[test]
    fn forward_and_backward_labels() {
        let mut a = Assembler::new(BASE);
        a.j("fwd"); // forward reference
        a.label("back");
        a.li(1, 1);
        a.wfi();
        a.label("fwd");
        a.j("back"); // backward reference
        let image = a.assemble().unwrap();
        let mut mem = Memory::new(BASE, 4096);
        mem.write_bytes(BASE, &image).unwrap();
        let mut cpu = Cpu::new(0, BASE);
        for _ in 0..16 {
            if let StepOutcome::Wfi = cpu.step(&mut mem).unwrap() {
                assert_eq!(cpu.read_reg(1), 1);
                return;
            }
        }
        panic!("did not converge");
    }

    #[test]
    fn unknown_label_errors() {
        let mut a = Assembler::new(BASE);
        a.j("nowhere");
        assert!(matches!(a.assemble(), Err(AsmError::UnknownLabel { .. })));
    }

    #[test]
    fn duplicate_label_errors() {
        let mut a = Assembler::new(BASE);
        a.label("x");
        a.nop();
        a.label("x");
        assert!(matches!(a.assemble(), Err(AsmError::DuplicateLabel { .. })));
    }

    #[test]
    fn branch_out_of_range_errors() {
        let mut a = Assembler::new(BASE);
        a.beq(0, 0, "far");
        for _ in 0..2000 {
            a.nop();
        }
        a.label("far");
        assert!(matches!(
            a.assemble(),
            Err(AsmError::BranchOutOfRange { .. })
        ));
    }

    #[test]
    fn la_resolves_pc_relative() {
        let mut a = Assembler::new(BASE);
        a.la(5, "data");
        a.ld(6, 5, 0);
        a.wfi();
        a.label("data");
        a.dword(0xdead_beef_cafe_f00d);
        let image = a.assemble().unwrap();
        let mut mem = Memory::new(BASE, 4096);
        mem.write_bytes(BASE, &image).unwrap();
        let mut cpu = Cpu::new(0, BASE);
        for _ in 0..16 {
            if let StepOutcome::Wfi = cpu.step(&mut mem).unwrap() {
                assert_eq!(cpu.read_reg(6), 0xdead_beef_cafe_f00d);
                return;
            }
        }
        panic!("did not reach wfi");
    }

    #[test]
    fn here_tracks_position() {
        let mut a = Assembler::new(BASE);
        assert_eq!(a.here(), BASE);
        a.nop();
        a.nop();
        assert_eq!(a.here(), BASE + 8);
    }
}
