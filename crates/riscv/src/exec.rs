//! The functional executor: architectural state and instruction semantics.
//!
//! [`Cpu`] executes one instruction per [`step`](Cpu::step) against a
//! [`Bus`]. It is purely *functional* — cycle timing is layered on by
//! `firesim-uarch`, which inspects the [`StepOutcome`] (instruction class,
//! memory access, control flow) to charge cycles.

use crate::csr::CsrFile;
use crate::decode::decode;
use crate::icache::DecodeCache;
use crate::inst::{AluOp, AmoOp, BranchCond, CsrOp, CsrSrc, Inst, MulDivOp};
use crate::mem::{Bus, MemFault};

/// Exception causes (`mcause` values without the interrupt bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Trap {
    /// Instruction address misaligned (cause 0).
    InstMisaligned,
    /// Instruction access fault (cause 1).
    InstAccessFault,
    /// Illegal instruction (cause 2).
    IllegalInst,
    /// Breakpoint (cause 3).
    Breakpoint,
    /// Load access fault (cause 5).
    LoadAccessFault,
    /// Store/AMO access fault (cause 7).
    StoreAccessFault,
    /// Environment call from M-mode (cause 11).
    EcallM,
}

impl Trap {
    /// The `mcause` exception code.
    pub fn cause(self) -> u64 {
        match self {
            Trap::InstMisaligned => 0,
            Trap::InstAccessFault => 1,
            Trap::IllegalInst => 2,
            Trap::Breakpoint => 3,
            Trap::LoadAccessFault => 5,
            Trap::StoreAccessFault => 7,
            Trap::EcallM => 11,
        }
    }
}

/// A memory access performed by a retired instruction, for the timing
/// model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Physical address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: usize,
    /// True for stores and AMOs.
    pub is_store: bool,
    /// True for AMOs and LR/SC (read-modify-write traffic).
    pub is_amo: bool,
}

/// What happened during one [`Cpu::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// An instruction retired normally.
    Retired {
        /// PC of the retired instruction.
        pc: u64,
        /// The instruction.
        inst: Inst,
        /// PC of the next instruction.
        next_pc: u64,
        /// True when a conditional branch was taken.
        taken_branch: bool,
        /// Memory access performed, if any.
        mem: Option<MemAccess>,
    },
    /// A trap (exception or interrupt) redirected the PC to the handler.
    Trapped {
        /// The `mcause` value (interrupt bit included for interrupts).
        cause: u64,
        /// The handler address now in PC.
        handler: u64,
    },
    /// The core is parked in WFI with no enabled interrupt pending; the PC
    /// did not advance.
    Wfi,
}

/// Why a superblock dispatch ([`Cpu::run_cached`]) stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockStop {
    /// The instruction budget ran out mid-run (e.g. a token-window
    /// boundary); the core is ready to continue.
    Budget,
    /// A trap (exception or interrupt) redirected the PC to the handler.
    Trapped,
    /// The core parked in WFI with no enabled interrupt pending.
    Wfi,
}

/// Result of one superblock dispatch ([`Cpu::run_cached`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSummary {
    /// Instructions retired during the block (traps retire nothing).
    pub retired: u64,
    /// Why the block ended.
    pub stopped: BlockStop,
}

/// Timing verdict for one instruction retired inside
/// [`Cpu::run_timed`], returned by its cost callback.
#[derive(Debug, Clone, Copy)]
pub struct TimedStep {
    /// Stall cycles beyond the issue cycle (i.e. `cost - 1`).
    pub extra: u64,
    /// End the dispatch right after this instruction's issue cycle; the
    /// stall is handed back *unfolded* in [`TimedSummary::stall`].
    pub stop: bool,
    /// Nonzero: memoize this value into the decode-cache slot serving
    /// the instruction (the timing layer's static-cost annotation).
    pub annot: u16,
}

/// Why [`Cpu::run_timed`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimedStop {
    /// The cycle budget ran out; the core is ready to continue.
    Budget,
    /// The cost callback requested a stop ([`TimedStep::stop`]).
    Device,
    /// The core parked in WFI; the parking cycle is counted.
    Wfi,
}

/// Result of one [`Cpu::run_timed`] dispatch.
#[derive(Debug, Clone, Copy)]
pub struct TimedSummary {
    /// Target cycles consumed (`<= budget`).
    pub cycles: u64,
    /// Residual stall for the caller to carry into its stall state —
    /// nonzero when the budget ran out mid-stall or a stop left the
    /// offending instruction's stall unserved.
    pub stall: u64,
    /// Why the run ended.
    pub stopped: TimedStop,
}

/// Folds up to `extra` stall cycles into a [`Cpu::run_timed`] dispatch
/// right after an issue cycle, exactly as a per-cycle caller would:
/// `mcycle` advances with the folded span and the bus observes it as one
/// contiguous gap. Returns the part that overran the budget, which the
/// caller carries as residual stall.
#[inline]
fn fold_stall<B: Bus>(
    bus: &mut B,
    csrs: &mut CsrFile,
    cycles: &mut u64,
    budget: u64,
    extra: u64,
) -> u64 {
    let fold = extra.min(budget - *cycles);
    if fold > 0 {
        csrs.mcycle = csrs.mcycle.wrapping_add(fold);
        *cycles += fold;
        bus.elapse_timing_cycles(fold);
    }
    extra - fold
}

/// Architectural state of one RV64IMA hart.
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: [u64; 32],
    pc: u64,
    /// Machine-mode CSRs (public for platform wiring: interrupt lines,
    /// timer, counters).
    pub csrs: CsrFile,
    reservation: Option<u64>,
}

impl Cpu {
    /// Creates a hart with the given id, starting at `reset_pc`.
    pub fn new(hartid: u64, reset_pc: u64) -> Self {
        Cpu {
            regs: [0; 32],
            pc: reset_pc,
            csrs: CsrFile::new(hartid),
            reservation: None,
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Overrides the program counter (used by loaders and tests).
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
    }

    /// Reads register `x{idx}` (x0 is always zero).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 32`.
    pub fn read_reg(&self, idx: u8) -> u64 {
        self.regs[usize::from(idx)]
    }

    /// Writes register `x{idx}` (writes to x0 are ignored).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 32`.
    pub fn write_reg(&mut self, idx: u8, value: u64) {
        if idx != 0 {
            self.regs[usize::from(idx)] = value;
        }
    }

    /// Invalidates this hart's LR/SC reservation if it covers `addr`
    /// (called by the SoC when another hart stores to the line).
    pub fn clobber_reservation(&mut self, addr: u64) {
        if let Some(r) = self.reservation {
            // Reservation granularity: one 64-byte line.
            if r & !63 == addr & !63 {
                self.reservation = None;
            }
        }
    }

    /// True when the hart currently holds an LR reservation.
    pub fn has_reservation(&self) -> bool {
        self.reservation.is_some()
    }

    fn trap(&mut self, trap: Trap, tval: u64) -> StepOutcome {
        let cause = trap.cause();
        let handler = self.csrs.trap_enter(self.pc, cause, tval);
        self.pc = handler;
        self.reservation = None;
        StepOutcome::Trapped { cause, handler }
    }

    /// Executes one instruction (or takes one trap / parks in WFI).
    ///
    /// # Errors
    ///
    /// Never returns `Err` in the current implementation; the signature
    /// reserves room for co-simulation backends that can fail at the host
    /// level. All *architectural* failures become traps in the outcome.
    pub fn step<B: Bus>(&mut self, bus: &mut B) -> Result<StepOutcome, MemFault> {
        // 1. Interrupts, highest priority first.
        if let Some(line) = self.csrs.pending_interrupt() {
            let cause = line.cause();
            let handler = self.csrs.trap_enter(self.pc, cause, 0);
            self.pc = handler;
            return Ok(StepOutcome::Trapped { cause, handler });
        }

        Ok(self.fetch_decode_execute(bus))
    }

    /// Like [`step`](Self::step), but serves fetch + decode from a
    /// host-side [`DecodeCache`] and chains straight-line runs through
    /// its superblock cursor. Architecturally indistinguishable from
    /// `step`: interrupts are polled before every instruction, every
    /// trap goes through the interpreter path, and cache staleness is
    /// impossible by the generation argument in the
    /// [`icache`](crate::icache) module docs.
    ///
    /// # Errors
    ///
    /// Never returns `Err`, exactly as [`step`](Self::step).
    #[inline]
    pub fn step_cached<B: Bus>(
        &mut self,
        bus: &mut B,
        cache: &mut DecodeCache,
    ) -> Result<StepOutcome, MemFault> {
        // 1. Interrupts — polled every instruction, exactly like `step`.
        if let Some(line) = self.csrs.pending_interrupt() {
            let cause = line.cause();
            let handler = self.csrs.trap_enter(self.pc, cause, 0);
            self.pc = handler;
            cache.end_superblock();
            return Ok(StepOutcome::Trapped { cause, handler });
        }

        // 2+3. Fetch + decode through the cache; anything the cache
        // cannot serve (misaligned PC, MMIO fetch, fault, illegal word)
        // re-runs the interpreter path so trap logic stays in one place.
        let pc = self.pc;
        let outcome = if pc.is_multiple_of(4) {
            match cache.lookup(pc, bus) {
                Some((word, inst, _)) => self.execute(pc, word, inst, bus),
                None => {
                    cache.end_superblock();
                    self.fetch_decode_execute(bus)
                }
            }
        } else {
            cache.end_superblock();
            self.fetch_decode_execute(bus)
        };

        // 4. Superblock bookkeeping on the *architectural* outcome, so
        // it is identical whichever path produced it.
        Self::superblock_bookkeeping(cache, pc, &outcome);
        Ok(outcome)
    }

    /// Updates the superblock cursor after one instruction: the cursor
    /// survives only a fall-through retire onto the same page; a `FENCE.I`
    /// flushes the whole cache; anything else (taken branch, jump, trap,
    /// WFI) ends the superblock.
    #[inline]
    fn superblock_bookkeeping(cache: &mut DecodeCache, pc: u64, outcome: &StepOutcome) {
        match outcome {
            StepOutcome::Retired {
                inst: Inst::FenceI, ..
            } => cache.fence_i(),
            StepOutcome::Retired {
                next_pc,
                taken_branch: false,
                ..
            } if *next_pc == pc.wrapping_add(4)
                && *next_pc / crate::mem::PAGE_SIZE == pc / crate::mem::PAGE_SIZE =>
            {
                cache.advance_cursor(*next_pc);
            }
            _ => cache.end_superblock(),
        }
    }

    /// Runs up to `max_insts` instructions through the decode-cache fast
    /// path as one *superblock dispatch*: a tight loop that stays inside
    /// this call — no per-instruction outcome handed back to the caller —
    /// until the budget runs out, a trap (including a polled interrupt)
    /// redirects the PC, or the core parks in WFI.
    ///
    /// Semantics are identical to calling
    /// [`step_cached`](Self::step_cached) `max_insts` times and stopping
    /// at the first
    /// non-`Retired` outcome: interrupts are polled before every
    /// instruction and every instruction goes through the same execute
    /// path. Only the per-step outcome *reporting* is elided, which is
    /// what makes this the high-throughput entry point — use it when no
    /// per-instruction timing information is needed (functional warm-up,
    /// ISA-level benchmarking); use `step_cached` when a timing model
    /// consumes each [`StepOutcome`].
    pub fn run_cached<B: Bus>(
        &mut self,
        bus: &mut B,
        cache: &mut DecodeCache,
        max_insts: u64,
    ) -> BlockSummary {
        let mut retired = 0u64;
        // Instructions already counted into `minstret`; the hot arms defer
        // the increment and the difference `retired - flushed` is folded
        // in at every hot-loop exit. Sound because nothing inside a hot
        // run can observe `minstret`: only a CSR instruction reads it, and
        // CSR instructions take the `other` arm, which flushes first.
        let mut flushed = 0u64;
        // The interrupt poll is likewise hoisted out of the hot arms:
        // `self.csrs` is unreachable from the bus (a disjoint borrow,
        // wired to devices outside this call), so between two polls the
        // interrupt state can only change through the CPU's own CSR
        // instructions and traps — all of which leave the hot loop and
        // re-enter the poll before the next instruction. Polling once per
        // hot run is therefore observationally identical to
        // `step_cached`'s per-instruction poll.
        'poll: while retired < max_insts {
            if let Some(line) = self.csrs.pending_interrupt() {
                let cause = line.cause();
                let handler = self.csrs.trap_enter(self.pc, cause, 0);
                self.pc = handler;
                cache.end_superblock();
                self.csrs.minstret = self.csrs.minstret.wrapping_add(retired - flushed);
                return BlockSummary {
                    retired,
                    stopped: BlockStop::Trapped,
                };
            }

            while retired < max_insts {
                let pc = self.pc;
                let cached = if pc.is_multiple_of(4) {
                    cache.lookup(pc, bus)
                } else {
                    None
                };
                let Some((word, inst, _)) = cached else {
                    // Slow path: misaligned PC, uncacheable fetch, fault,
                    // or illegal word — one full interpreter step, which
                    // counts its own retire, so flush the deferred ones
                    // first.
                    cache.end_superblock();
                    self.csrs.minstret = self.csrs.minstret.wrapping_add(retired - flushed);
                    flushed = retired;
                    let outcome = self.fetch_decode_execute(bus);
                    Self::superblock_bookkeeping(cache, pc, &outcome);
                    match outcome {
                        StepOutcome::Retired { .. } => {
                            retired += 1;
                            flushed += 1;
                            continue 'poll;
                        }
                        StepOutcome::Trapped { .. } => {
                            return BlockSummary {
                                retired,
                                stopped: BlockStop::Trapped,
                            };
                        }
                        StepOutcome::Wfi => {
                            return BlockSummary {
                                retired,
                                stopped: BlockStop::Wfi,
                            };
                        }
                    }
                };

                // Lean dispatch of the hot arms: semantics are kept in
                // lockstep with `execute` (locked by the
                // `run_cached_matches_step_exactly` differential test);
                // only the per-instruction outcome reporting is elided.
                // Everything else funnels through `execute` itself.
                match inst {
                    Inst::OpImm {
                        op,
                        rd,
                        rs1,
                        imm,
                        word,
                    } => {
                        let v = alu(op, self.read_reg(rs1), imm as u64, word);
                        self.write_reg(rd, v);
                        self.retire_linear(cache, pc);
                    }
                    Inst::Op {
                        op,
                        rd,
                        rs1,
                        rs2,
                        word,
                    } => {
                        let v = alu(op, self.read_reg(rs1), self.read_reg(rs2), word);
                        self.write_reg(rd, v);
                        self.retire_linear(cache, pc);
                    }
                    Inst::MulDiv {
                        op,
                        rd,
                        rs1,
                        rs2,
                        word,
                    } => {
                        let v = muldiv(op, self.read_reg(rs1), self.read_reg(rs2), word);
                        self.write_reg(rd, v);
                        self.retire_linear(cache, pc);
                    }
                    Inst::Lui { rd, imm } => {
                        self.write_reg(rd, imm as u64);
                        self.retire_linear(cache, pc);
                    }
                    Inst::Auipc { rd, imm } => {
                        self.write_reg(rd, pc.wrapping_add(imm as u64));
                        self.retire_linear(cache, pc);
                    }
                    Inst::Jal { rd, imm } => {
                        self.write_reg(rd, pc.wrapping_add(4));
                        self.retire_jump(cache, pc.wrapping_add(imm as u64));
                    }
                    Inst::Jalr { rd, rs1, imm } => {
                        let target = self.read_reg(rs1).wrapping_add(imm as u64) & !1;
                        self.write_reg(rd, pc.wrapping_add(4));
                        self.retire_jump(cache, target);
                    }
                    Inst::Branch {
                        cond,
                        rs1,
                        rs2,
                        imm,
                    } => {
                        let a = self.read_reg(rs1);
                        let b = self.read_reg(rs2);
                        let take = match cond {
                            BranchCond::Eq => a == b,
                            BranchCond::Ne => a != b,
                            BranchCond::Lt => (a as i64) < (b as i64),
                            BranchCond::Ge => (a as i64) >= (b as i64),
                            BranchCond::Ltu => a < b,
                            BranchCond::Geu => a >= b,
                        };
                        if take {
                            self.retire_jump(cache, pc.wrapping_add(imm as u64));
                        } else {
                            self.retire_linear(cache, pc);
                        }
                    }
                    Inst::Load {
                        width,
                        signed,
                        rd,
                        rs1,
                        imm,
                    } => {
                        let addr = self.read_reg(rs1).wrapping_add(imm as u64);
                        let size = width.bytes();
                        match bus.load(addr, size) {
                            Ok(raw) => {
                                let value = if signed { sign_extend(raw, size) } else { raw };
                                self.write_reg(rd, value);
                                self.retire_linear(cache, pc);
                            }
                            Err(f) => {
                                self.trap(Trap::LoadAccessFault, f.addr);
                                cache.end_superblock();
                                self.csrs.minstret =
                                    self.csrs.minstret.wrapping_add(retired - flushed);
                                return BlockSummary {
                                    retired,
                                    stopped: BlockStop::Trapped,
                                };
                            }
                        }
                    }
                    Inst::Store {
                        width,
                        rs2,
                        rs1,
                        imm,
                    } => {
                        let addr = self.read_reg(rs1).wrapping_add(imm as u64);
                        let size = width.bytes();
                        match bus.store(addr, size, self.read_reg(rs2)) {
                            Ok(()) => self.retire_linear(cache, pc),
                            Err(f) => {
                                self.trap(Trap::StoreAccessFault, f.addr);
                                cache.end_superblock();
                                self.csrs.minstret =
                                    self.csrs.minstret.wrapping_add(retired - flushed);
                                return BlockSummary {
                                    retired,
                                    stopped: BlockStop::Trapped,
                                };
                            }
                        }
                    }
                    other => {
                        // Rare instructions (AMO, CSR, fences, system)
                        // keep the single source of truth in `execute`;
                        // it counts its own retire and may read or write
                        // any CSR, so flush first and re-poll after.
                        self.csrs.minstret = self.csrs.minstret.wrapping_add(retired - flushed);
                        flushed = retired;
                        let outcome = self.execute(pc, word, other, bus);
                        Self::superblock_bookkeeping(cache, pc, &outcome);
                        match outcome {
                            StepOutcome::Retired { .. } => {
                                retired += 1;
                                flushed += 1;
                                continue 'poll;
                            }
                            StepOutcome::Trapped { .. } => {
                                return BlockSummary {
                                    retired,
                                    stopped: BlockStop::Trapped,
                                };
                            }
                            StepOutcome::Wfi => {
                                return BlockSummary {
                                    retired,
                                    stopped: BlockStop::Wfi,
                                };
                            }
                        }
                    }
                }
                retired += 1;
            }
        }
        self.csrs.minstret = self.csrs.minstret.wrapping_add(retired - flushed);
        BlockSummary {
            retired,
            stopped: BlockStop::Budget,
        }
    }

    /// Runs up to `budget` *cycles* through the decode-cache fast path as
    /// one superblock dispatch, charging each instruction's cycle cost
    /// via `cost_of` — the timed sibling of [`run_cached`](Self::run_cached),
    /// built for single-issue timing layers that would otherwise pay a
    /// full [`step_cached`](Self::step_cached) round trip (outcome
    /// materialization included) per instruction.
    ///
    /// Semantics are bit-identical to a caller loop that, per cycle,
    /// bumps `mcycle`, calls `step_cached`, charges
    /// `cost_of(pc, inst, annot, taken_branch, mem, cycles_so_far)`
    /// for a retire (or `trap_extra` extra cycles for a trap), stalls
    /// `extra` cycles before the next issue, and calls
    /// [`Bus::elapse_timing_cycles`] once per issue cycle and once per
    /// contiguous stall span. In detail, per issued instruction:
    ///
    /// * `mcycle` advances first, then interrupts are polled —
    ///   the same per-instruction poll as `step_cached`;
    /// * a retire invokes `cost_of`; a returned nonzero
    ///   [`TimedStep::annot`] is memoized into the serving decode-cache
    ///   slot, and [`TimedStep::stop`] ends the run right after the
    ///   offending cycle with the stall left *unfolded* in
    ///   [`TimedSummary::stall`] (exactly where a per-cycle caller's
    ///   loop would break);
    /// * a trap charges `1 + trap_extra` cycles and continues;
    /// * WFI ends the run after its (counted) parking cycle — the
    ///   caller owns parked/idle bookkeeping;
    /// * stall cycles that overrun the budget are returned in
    ///   [`TimedSummary::stall`] for the caller to carry.
    ///
    /// `minstret` is deferred across hot retires with the same
    /// observability argument as [`run_cached`](Self::run_cached): only
    /// CSR instructions read it, and they funnel through the cold arm,
    /// which flushes first.
    pub fn run_timed<B: Bus, F>(
        &mut self,
        bus: &mut B,
        cache: &mut DecodeCache,
        budget: u64,
        trap_extra: u64,
        mut cost_of: F,
    ) -> TimedSummary
    where
        F: FnMut(u64, &Inst, u16, bool, Option<&MemAccess>, u64) -> TimedStep,
    {
        let mut cycles = 0u64;
        let mut pending_retires = 0u64;

        // The tails are macros rather than helpers so `return` and
        // `continue` act on `run_timed`'s own loop; both only reference
        // locals already in scope here.
        macro_rules! trap_tail {
            () => {{
                cycles += 1;
                bus.elapse_timing_cycles(1);
                let residual = fold_stall(bus, &mut self.csrs, &mut cycles, budget, trap_extra);
                if residual > 0 {
                    self.csrs.minstret = self.csrs.minstret.wrapping_add(pending_retires);
                    return TimedSummary {
                        cycles,
                        stall: residual,
                        stopped: TimedStop::Budget,
                    };
                }
            }};
        }
        macro_rules! retire_tail {
            ($ts:expr, $pc:expr) => {{
                let ts: TimedStep = $ts;
                if ts.annot != 0 {
                    cache.set_annotation($pc, ts.annot);
                }
                cycles += 1;
                bus.elapse_timing_cycles(1);
                if ts.stop {
                    self.csrs.minstret = self.csrs.minstret.wrapping_add(pending_retires);
                    return TimedSummary {
                        cycles,
                        stall: ts.extra,
                        stopped: TimedStop::Device,
                    };
                }
                let residual = fold_stall(bus, &mut self.csrs, &mut cycles, budget, ts.extra);
                if residual > 0 {
                    self.csrs.minstret = self.csrs.minstret.wrapping_add(pending_retires);
                    return TimedSummary {
                        cycles,
                        stall: residual,
                        stopped: TimedStop::Budget,
                    };
                }
            }};
        }

        'poll: while cycles < budget {
            // The issue cycle begins: `mcycle` first, then the interrupt
            // poll, exactly like the per-cycle loop.
            self.csrs.mcycle = self.csrs.mcycle.wrapping_add(1);
            if let Some(line) = self.csrs.pending_interrupt() {
                let cause = line.cause();
                let handler = self.csrs.trap_enter(self.pc, cause, 0);
                self.pc = handler;
                cache.end_superblock();
                trap_tail!();
                continue 'poll;
            }

            // Interrupt-free hot run. Between hot retires nothing can
            // change `mip`/`mie`/`mstatus`: hot arms never write CSRs,
            // and the bus cannot reach them (device state changed by an
            // MMIO load/store only feeds back through the caller's
            // interrupt wiring, outside this call). So the poll above is
            // hoisted out of this inner loop — every skipped poll
            // provably returns `None` — and every path that *can*
            // perturb interrupt state (cold step, trap) exits to
            // `'poll`, same argument as `run_cached`.
            loop {
                let pc = self.pc;
                let served = if pc.is_multiple_of(4) {
                    cache.lookup(pc, bus)
                } else {
                    None
                };
                // Hot arms retire inline (mirroring `run_cached`, locked by
                // the same differential tests); anything else falls through
                // to one cold interpreter step below.
                let mut cold: Option<(u32, Inst)> = None;
                let mut served_annot = 0u16;
                if let Some((word, inst, annot)) = served {
                    served_annot = annot;
                    let hot: Option<(bool, Option<MemAccess>)> = match inst {
                        Inst::OpImm {
                            op,
                            rd,
                            rs1,
                            imm,
                            word,
                        } => {
                            let v = alu(op, self.read_reg(rs1), imm as u64, word);
                            self.write_reg(rd, v);
                            self.retire_linear(cache, pc);
                            Some((false, None))
                        }
                        Inst::Op {
                            op,
                            rd,
                            rs1,
                            rs2,
                            word,
                        } => {
                            let v = alu(op, self.read_reg(rs1), self.read_reg(rs2), word);
                            self.write_reg(rd, v);
                            self.retire_linear(cache, pc);
                            Some((false, None))
                        }
                        Inst::MulDiv {
                            op,
                            rd,
                            rs1,
                            rs2,
                            word,
                        } => {
                            let v = muldiv(op, self.read_reg(rs1), self.read_reg(rs2), word);
                            self.write_reg(rd, v);
                            self.retire_linear(cache, pc);
                            Some((false, None))
                        }
                        Inst::Lui { rd, imm } => {
                            self.write_reg(rd, imm as u64);
                            self.retire_linear(cache, pc);
                            Some((false, None))
                        }
                        Inst::Auipc { rd, imm } => {
                            self.write_reg(rd, pc.wrapping_add(imm as u64));
                            self.retire_linear(cache, pc);
                            Some((false, None))
                        }
                        Inst::Jal { rd, imm } => {
                            self.write_reg(rd, pc.wrapping_add(4));
                            self.retire_jump(cache, pc.wrapping_add(imm as u64));
                            Some((false, None))
                        }
                        Inst::Jalr { rd, rs1, imm } => {
                            let target = self.read_reg(rs1).wrapping_add(imm as u64) & !1;
                            self.write_reg(rd, pc.wrapping_add(4));
                            self.retire_jump(cache, target);
                            Some((false, None))
                        }
                        Inst::Branch {
                            cond,
                            rs1,
                            rs2,
                            imm,
                        } => {
                            let a = self.read_reg(rs1);
                            let b = self.read_reg(rs2);
                            let take = match cond {
                                BranchCond::Eq => a == b,
                                BranchCond::Ne => a != b,
                                BranchCond::Lt => (a as i64) < (b as i64),
                                BranchCond::Ge => (a as i64) >= (b as i64),
                                BranchCond::Ltu => a < b,
                                BranchCond::Geu => a >= b,
                            };
                            if take {
                                self.retire_jump(cache, pc.wrapping_add(imm as u64));
                            } else {
                                self.retire_linear(cache, pc);
                            }
                            Some((take, None))
                        }
                        Inst::Load {
                            width,
                            signed,
                            rd,
                            rs1,
                            imm,
                        } => {
                            let addr = self.read_reg(rs1).wrapping_add(imm as u64);
                            let size = width.bytes();
                            match bus.load(addr, size) {
                                Ok(raw) => {
                                    let value = if signed { sign_extend(raw, size) } else { raw };
                                    self.write_reg(rd, value);
                                    self.retire_linear(cache, pc);
                                    Some((
                                        false,
                                        Some(MemAccess {
                                            addr,
                                            size,
                                            is_store: false,
                                            is_amo: false,
                                        }),
                                    ))
                                }
                                Err(f) => {
                                    self.trap(Trap::LoadAccessFault, f.addr);
                                    cache.end_superblock();
                                    trap_tail!();
                                    continue 'poll;
                                }
                            }
                        }
                        Inst::Store {
                            width,
                            rs2,
                            rs1,
                            imm,
                        } => {
                            let addr = self.read_reg(rs1).wrapping_add(imm as u64);
                            let size = width.bytes();
                            match bus.store(addr, size, self.read_reg(rs2)) {
                                Ok(()) => {
                                    self.retire_linear(cache, pc);
                                    Some((
                                        false,
                                        Some(MemAccess {
                                            addr,
                                            size,
                                            is_store: true,
                                            is_amo: false,
                                        }),
                                    ))
                                }
                                Err(f) => {
                                    self.trap(Trap::StoreAccessFault, f.addr);
                                    cache.end_superblock();
                                    trap_tail!();
                                    continue 'poll;
                                }
                            }
                        }
                        other => {
                            cold = Some((word, other));
                            None
                        }
                    };
                    if let Some((taken_branch, mem_acc)) = hot {
                        pending_retires += 1;
                        retire_tail!(
                            cost_of(pc, &inst, annot, taken_branch, mem_acc.as_ref(), cycles),
                            pc
                        );
                        if cycles >= budget {
                            break 'poll;
                        }
                        // Next issue cycle within the hot run: `mcycle`
                        // advances, the poll is skipped (see above).
                        self.csrs.mcycle = self.csrs.mcycle.wrapping_add(1);
                        continue;
                    }
                }

                // Cold step: a decoded-but-rare instruction (AMO, CSR,
                // fence, system) through `execute`, or the full slow path
                // for misaligned/uncacheable/illegal fetches. `execute` may
                // read any CSR and counts its own retire, so flush first.
                self.csrs.minstret = self.csrs.minstret.wrapping_add(pending_retires);
                pending_retires = 0;
                let outcome = match cold {
                    Some((word, inst)) => self.execute(pc, word, inst, bus),
                    None => {
                        cache.end_superblock();
                        self.fetch_decode_execute(bus)
                    }
                };
                Self::superblock_bookkeeping(cache, pc, &outcome);
                match outcome {
                    StepOutcome::Retired {
                        pc,
                        inst,
                        taken_branch,
                        mem,
                        ..
                    } => {
                        retire_tail!(
                            cost_of(pc, &inst, served_annot, taken_branch, mem.as_ref(), cycles),
                            pc
                        );
                    }
                    StepOutcome::Trapped { .. } => trap_tail!(),
                    StepOutcome::Wfi => {
                        cycles += 1;
                        bus.elapse_timing_cycles(1);
                        return TimedSummary {
                            cycles,
                            stall: 0,
                            stopped: TimedStop::Wfi,
                        };
                    }
                }
                // A cold step may have perturbed interrupt state: re-poll.
                continue 'poll;
            }
        }
        self.csrs.minstret = self.csrs.minstret.wrapping_add(pending_retires);
        TimedSummary {
            cycles,
            stall: 0,
            stopped: TimedStop::Budget,
        }
    }

    /// Fast-path retire of a fall-through instruction at `pc`: advance
    /// the PC and move the superblock cursor (only valid within one page —
    /// crossing a page boundary re-validates through the page generation
    /// on the next lookup). `minstret` is deferred by the caller.
    #[inline(always)]
    fn retire_linear(&mut self, cache: &mut DecodeCache, pc: u64) {
        let next_pc = pc.wrapping_add(4);
        self.pc = next_pc;
        if next_pc / crate::mem::PAGE_SIZE == pc / crate::mem::PAGE_SIZE {
            cache.advance_cursor(next_pc);
        } else {
            cache.end_superblock();
        }
    }

    /// Fast-path retire of a taken control-flow instruction: redirect the
    /// PC and end the superblock (the cursor never follows jumps).
    /// `minstret` is deferred by the caller.
    #[inline(always)]
    fn retire_jump(&mut self, cache: &mut DecodeCache, target: u64) {
        self.pc = target;
        cache.end_superblock();
    }

    /// Phases 2-4 of [`step`](Self::step): fetch, decode, execute.
    #[inline]
    fn fetch_decode_execute<B: Bus>(&mut self, bus: &mut B) -> StepOutcome {
        // 2. Fetch.
        let pc = self.pc;
        if !pc.is_multiple_of(4) {
            return self.trap(Trap::InstMisaligned, pc);
        }
        let word = match bus.fetch(pc) {
            Ok(w) => w,
            Err(_) => return self.trap(Trap::InstAccessFault, pc),
        };

        // 3. Decode.
        let inst = match decode(word) {
            Ok(i) => i,
            Err(_) => return self.trap(Trap::IllegalInst, u64::from(word)),
        };

        // 4. Execute.
        self.execute(pc, word, inst, bus)
    }

    /// Executes one decoded instruction. `word` is the raw fetched word
    /// (the `Csr` arm needs it for an illegal-CSR `mtval`).
    #[inline]
    fn execute<B: Bus>(&mut self, pc: u64, word: u32, inst: Inst, bus: &mut B) -> StepOutcome {
        let mut next_pc = pc.wrapping_add(4);
        let mut taken_branch = false;
        let mut mem = None;
        match inst {
            Inst::Lui { rd, imm } => self.write_reg(rd, imm as u64),
            Inst::Auipc { rd, imm } => self.write_reg(rd, pc.wrapping_add(imm as u64)),
            Inst::Jal { rd, imm } => {
                self.write_reg(rd, pc.wrapping_add(4));
                next_pc = pc.wrapping_add(imm as u64);
            }
            Inst::Jalr { rd, rs1, imm } => {
                let target = self.read_reg(rs1).wrapping_add(imm as u64) & !1;
                self.write_reg(rd, pc.wrapping_add(4));
                next_pc = target;
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                imm,
            } => {
                let a = self.read_reg(rs1);
                let b = self.read_reg(rs2);
                let take = match cond {
                    BranchCond::Eq => a == b,
                    BranchCond::Ne => a != b,
                    BranchCond::Lt => (a as i64) < (b as i64),
                    BranchCond::Ge => (a as i64) >= (b as i64),
                    BranchCond::Ltu => a < b,
                    BranchCond::Geu => a >= b,
                };
                if take {
                    next_pc = pc.wrapping_add(imm as u64);
                    taken_branch = true;
                }
            }
            Inst::Load {
                width,
                signed,
                rd,
                rs1,
                imm,
            } => {
                let addr = self.read_reg(rs1).wrapping_add(imm as u64);
                let size = width.bytes();
                let raw = match bus.load(addr, size) {
                    Ok(v) => v,
                    Err(f) => return self.trap(Trap::LoadAccessFault, f.addr),
                };
                let value = if signed { sign_extend(raw, size) } else { raw };
                self.write_reg(rd, value);
                mem = Some(MemAccess {
                    addr,
                    size,
                    is_store: false,
                    is_amo: false,
                });
            }
            Inst::Store {
                width,
                rs2,
                rs1,
                imm,
            } => {
                let addr = self.read_reg(rs1).wrapping_add(imm as u64);
                let size = width.bytes();
                if let Err(f) = bus.store(addr, size, self.read_reg(rs2)) {
                    return self.trap(Trap::StoreAccessFault, f.addr);
                }
                mem = Some(MemAccess {
                    addr,
                    size,
                    is_store: true,
                    is_amo: false,
                });
            }
            Inst::OpImm {
                op,
                rd,
                rs1,
                imm,
                word,
            } => {
                let v = alu(op, self.read_reg(rs1), imm as u64, word);
                self.write_reg(rd, v);
            }
            Inst::Op {
                op,
                rd,
                rs1,
                rs2,
                word,
            } => {
                let v = alu(op, self.read_reg(rs1), self.read_reg(rs2), word);
                self.write_reg(rd, v);
            }
            Inst::MulDiv {
                op,
                rd,
                rs1,
                rs2,
                word,
            } => {
                let v = muldiv(op, self.read_reg(rs1), self.read_reg(rs2), word);
                self.write_reg(rd, v);
            }
            Inst::Amo {
                op,
                width,
                rd,
                rs1,
                rs2,
            } => {
                let addr = self.read_reg(rs1);
                let size = width.bytes();
                if !addr.is_multiple_of(size as u64) {
                    return self.trap(Trap::StoreAccessFault, addr);
                }
                match op {
                    AmoOp::Lr => {
                        let raw = match bus.load(addr, size) {
                            Ok(v) => v,
                            Err(f) => return self.trap(Trap::LoadAccessFault, f.addr),
                        };
                        self.write_reg(rd, sign_extend(raw, size));
                        self.reservation = Some(addr);
                        mem = Some(MemAccess {
                            addr,
                            size,
                            is_store: false,
                            is_amo: true,
                        });
                    }
                    AmoOp::Sc => {
                        let ok = self.reservation == Some(addr);
                        self.reservation = None;
                        if ok {
                            if let Err(f) = bus.store(addr, size, self.read_reg(rs2)) {
                                return self.trap(Trap::StoreAccessFault, f.addr);
                            }
                            mem = Some(MemAccess {
                                addr,
                                size,
                                is_store: true,
                                is_amo: true,
                            });
                        }
                        self.write_reg(rd, if ok { 0 } else { 1 });
                    }
                    _ => {
                        let raw = match bus.load(addr, size) {
                            Ok(v) => v,
                            Err(f) => return self.trap(Trap::LoadAccessFault, f.addr),
                        };
                        let old = sign_extend(raw, size);
                        let src = self.read_reg(rs2);
                        let new = amo_compute(op, old, src, size);
                        if let Err(f) = bus.store(addr, size, new) {
                            return self.trap(Trap::StoreAccessFault, f.addr);
                        }
                        self.write_reg(rd, old);
                        mem = Some(MemAccess {
                            addr,
                            size,
                            is_store: true,
                            is_amo: true,
                        });
                    }
                }
            }
            Inst::Csr { op, rd, csr, src } => {
                let src_val = match src {
                    CsrSrc::Reg(r) => self.read_reg(r),
                    CsrSrc::Imm(z) => u64::from(z),
                };
                let skip_write = match (op, src) {
                    (CsrOp::Rw, _) => false,
                    (_, CsrSrc::Reg(0)) | (_, CsrSrc::Imm(0)) => true,
                    _ => false,
                };
                let old = match self.csrs.read(csr) {
                    Ok(v) => v,
                    Err(_) => return self.trap(Trap::IllegalInst, u64::from(word)),
                };
                if !skip_write {
                    let new = match op {
                        CsrOp::Rw => src_val,
                        CsrOp::Rs => old | src_val,
                        CsrOp::Rc => old & !src_val,
                    };
                    if self.csrs.write(csr, new).is_err() {
                        return self.trap(Trap::IllegalInst, u64::from(word));
                    }
                }
                self.write_reg(rd, old);
            }
            Inst::Fence | Inst::FenceI => {}
            Inst::Ecall => return self.trap(Trap::EcallM, 0),
            Inst::Ebreak => return self.trap(Trap::Breakpoint, pc),
            Inst::Mret => {
                next_pc = self.csrs.trap_return();
            }
            Inst::Wfi => {
                if !self.csrs.wfi_wakeup() {
                    return StepOutcome::Wfi;
                }
                // An enabled interrupt is pending: WFI completes. If
                // globally enabled it will be taken on the next step.
            }
        }

        self.pc = next_pc;
        self.csrs.minstret = self.csrs.minstret.wrapping_add(1);
        StepOutcome::Retired {
            pc,
            inst,
            next_pc,
            taken_branch,
            mem,
        }
    }
}

#[inline]
fn sign_extend(value: u64, size: usize) -> u64 {
    match size {
        1 => value as u8 as i8 as i64 as u64,
        2 => value as u16 as i16 as i64 as u64,
        4 => value as u32 as i32 as i64 as u64,
        _ => value,
    }
}

fn alu(op: AluOp, a: u64, b: u64, word: bool) -> u64 {
    if word {
        let a32 = a as u32;
        let b32 = b as u32;
        let v = match op {
            AluOp::Add => a32.wrapping_add(b32),
            AluOp::Sub => a32.wrapping_sub(b32),
            AluOp::Sll => a32.wrapping_shl(b32 & 31),
            AluOp::Srl => a32.wrapping_shr(b32 & 31),
            AluOp::Sra => ((a32 as i32).wrapping_shr(b32 & 31)) as u32,
            // Word forms exist only for add/sub/shifts.
            _ => unreachable!("no word form for {op:?}"),
        };
        v as i32 as i64 as u64
    } else {
        match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Sll => a.wrapping_shl(b as u32 & 63),
            AluOp::Slt => u64::from((a as i64) < (b as i64)),
            AluOp::Sltu => u64::from(a < b),
            AluOp::Xor => a ^ b,
            AluOp::Srl => a.wrapping_shr(b as u32 & 63),
            AluOp::Sra => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
            AluOp::Or => a | b,
            AluOp::And => a & b,
        }
    }
}

fn muldiv(op: MulDivOp, a: u64, b: u64, word: bool) -> u64 {
    if word {
        let a32 = a as i32;
        let b32 = b as i32;
        let v: i32 = match op {
            MulDivOp::Mul => a32.wrapping_mul(b32),
            MulDivOp::Div => {
                if b32 == 0 {
                    -1
                } else {
                    a32.wrapping_div(b32)
                }
            }
            MulDivOp::Divu => {
                if b32 == 0 {
                    -1
                } else {
                    ((a as u32) / (b as u32)) as i32
                }
            }
            MulDivOp::Rem => {
                if b32 == 0 {
                    a32
                } else {
                    a32.wrapping_rem(b32)
                }
            }
            MulDivOp::Remu => {
                if b32 == 0 {
                    a as u32 as i32
                } else {
                    ((a as u32) % (b as u32)) as i32
                }
            }
            _ => unreachable!("no word form for {op:?}"),
        };
        v as i64 as u64
    } else {
        match op {
            MulDivOp::Mul => a.wrapping_mul(b),
            MulDivOp::Mulh => (((a as i64 as i128) * (b as i64 as i128)) >> 64) as u64,
            MulDivOp::Mulhsu => (((a as i64 as i128) * (b as u128 as i128)) >> 64) as u64,
            MulDivOp::Mulhu => (((a as u128) * (b as u128)) >> 64) as u64,
            MulDivOp::Div => {
                if b == 0 {
                    u64::MAX
                } else {
                    ((a as i64).wrapping_div(b as i64)) as u64
                }
            }
            MulDivOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
            MulDivOp::Rem => {
                if b == 0 {
                    a
                } else {
                    ((a as i64).wrapping_rem(b as i64)) as u64
                }
            }
            MulDivOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
        }
    }
}

fn amo_compute(op: AmoOp, old: u64, src: u64, size: usize) -> u64 {
    let v = match op {
        AmoOp::Swap => src,
        AmoOp::Add => old.wrapping_add(src),
        AmoOp::Xor => old ^ src,
        AmoOp::And => old & src,
        AmoOp::Or => old | src,
        AmoOp::Min => {
            if size == 4 {
                ((old as i32).min(src as i32)) as u64
            } else {
                ((old as i64).min(src as i64)) as u64
            }
        }
        AmoOp::Max => {
            if size == 4 {
                ((old as i32).max(src as i32)) as u64
            } else {
                ((old as i64).max(src as i64)) as u64
            }
        }
        AmoOp::Minu => {
            if size == 4 {
                u64::from((old as u32).min(src as u32))
            } else {
                old.min(src)
            }
        }
        AmoOp::Maxu => {
            if size == 4 {
                u64::from((old as u32).max(src as u32))
            } else {
                old.max(src)
            }
        }
        AmoOp::Lr | AmoOp::Sc => unreachable!("handled separately"),
    };
    v
}

impl firesim_core::snapshot::Checkpoint for Cpu {
    fn save_state(
        &self,
        w: &mut firesim_core::snapshot::SnapshotWriter,
    ) -> firesim_core::SimResult<()> {
        for reg in self.regs {
            w.put_u64(reg);
        }
        w.put_u64(self.pc);
        self.csrs.save_state(w)?;
        w.put(&self.reservation);
        Ok(())
    }

    fn restore_state(
        &mut self,
        r: &mut firesim_core::snapshot::SnapshotReader<'_>,
    ) -> firesim_core::SimResult<()> {
        for reg in &mut self.regs {
            *reg = r.get_u64()?;
        }
        self.pc = r.get_u64()?;
        self.csrs.restore_state(r)?;
        self.reservation = r.get()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::csr::addr as csr_addr;
    use crate::csr::Interrupt;
    use crate::mem::Memory;

    const BASE: u64 = 0x8000_0000;

    fn run_program(build: impl FnOnce(&mut Assembler), max_steps: usize) -> (Cpu, Memory) {
        let mut a = Assembler::new(BASE);
        build(&mut a);
        let image = a.assemble().unwrap();
        let mut mem = Memory::new(BASE, 1 << 20);
        mem.write_bytes(BASE, &image).unwrap();
        let mut cpu = Cpu::new(0, BASE);
        for _ in 0..max_steps {
            match cpu.step(&mut mem).unwrap() {
                StepOutcome::Wfi => return (cpu, mem),
                StepOutcome::Trapped { cause, .. } => {
                    panic!("unexpected trap, cause {cause:#x} at pc {:#x}", cpu.pc())
                }
                StepOutcome::Retired { .. } => {}
            }
        }
        panic!("program did not reach WFI in {max_steps} steps");
    }

    #[test]
    fn arithmetic_program() {
        let (cpu, _) = run_program(
            |a| {
                a.li(1, 100);
                a.li(2, 7);
                a.add(3, 1, 2); // 107
                a.sub(4, 1, 2); // 93
                a.mul(5, 1, 2); // 700
                a.div(6, 1, 2); // 14
                a.rem(7, 1, 2); // 2
                a.wfi();
            },
            100,
        );
        assert_eq!(cpu.read_reg(3), 107);
        assert_eq!(cpu.read_reg(4), 93);
        assert_eq!(cpu.read_reg(5), 700);
        assert_eq!(cpu.read_reg(6), 14);
        assert_eq!(cpu.read_reg(7), 2);
    }

    #[test]
    fn division_edge_cases() {
        assert_eq!(muldiv(MulDivOp::Div, 5, 0, false), u64::MAX);
        assert_eq!(muldiv(MulDivOp::Rem, 5, 0, false), 5);
        assert_eq!(
            muldiv(MulDivOp::Div, i64::MIN as u64, -1i64 as u64, false),
            i64::MIN as u64
        );
        assert_eq!(
            muldiv(MulDivOp::Rem, i64::MIN as u64, -1i64 as u64, false),
            0
        );
        assert_eq!(
            muldiv(MulDivOp::Mulhu, u64::MAX, u64::MAX, false),
            u64::MAX - 1
        );
        assert_eq!(muldiv(MulDivOp::Mulh, -1i64 as u64, -1i64 as u64, false), 0);
    }

    #[test]
    fn memory_program_with_signed_loads() {
        let (cpu, _) = run_program(
            |a| {
                a.li(1, BASE as i64 + 0x1000);
                a.li(2, -2); // 0xfffffffffffffffe
                a.sd(2, 1, 0);
                a.lw(3, 1, 0); // sign-extended -2
                a.lwu(4, 1, 0); // zero-extended 0xfffffffe
                a.lb(5, 1, 0); // -2
                a.lbu(6, 1, 0); // 0xfe
                a.wfi();
            },
            100,
        );
        assert_eq!(cpu.read_reg(3), (-2i64) as u64);
        assert_eq!(cpu.read_reg(4), 0xffff_fffe);
        assert_eq!(cpu.read_reg(5), (-2i64) as u64);
        assert_eq!(cpu.read_reg(6), 0xfe);
    }

    #[test]
    fn word_ops_sign_extend() {
        let (cpu, _) = run_program(
            |a| {
                a.li(1, 0x7fff_ffff);
                a.addiw(2, 1, 1); // overflows to i32::MIN
                a.li(3, 1);
                a.slliw(4, 3, 1); // 1 << 1 = 2
                a.wfi();
            },
            100,
        );
        assert_eq!(cpu.read_reg(2), i32::MIN as i64 as u64);
        assert_eq!(cpu.read_reg(4), 2);
    }

    #[test]
    fn branches_and_loops() {
        // Computes 10! iteratively.
        let (cpu, _) = run_program(
            |a| {
                a.li(10, 1); // acc
                a.li(5, 1); // i
                a.li(6, 10); // n
                a.label("loop");
                a.mul(10, 10, 5);
                a.addi(5, 5, 1);
                a.ble(5, 6, "loop");
                a.wfi();
            },
            200,
        );
        assert_eq!(cpu.read_reg(10), 3_628_800);
    }

    #[test]
    fn function_call_and_return() {
        let (cpu, _) = run_program(
            |a| {
                a.li(2, BASE as i64 + 0x8000); // stack
                a.li(10, 21);
                a.call("double");
                a.wfi();
                a.label("double");
                a.add(10, 10, 10);
                a.ret();
            },
            100,
        );
        assert_eq!(cpu.read_reg(10), 42);
    }

    #[test]
    fn lr_sc_success_and_failure() {
        let (cpu, _) = run_program(
            |a| {
                a.li(1, BASE as i64 + 0x2000);
                a.li(2, 5);
                a.sd(2, 1, 0);
                a.lr_d(3, 1); // x3 = 5, reservation
                a.addi(3, 3, 1);
                a.sc_d(4, 3, 1); // success: x4 = 0
                a.sc_d(5, 3, 1); // no reservation: x5 = 1
                a.ld(6, 1, 0); // 6
                a.wfi();
            },
            100,
        );
        assert_eq!(cpu.read_reg(4), 0);
        assert_eq!(cpu.read_reg(5), 1);
        assert_eq!(cpu.read_reg(6), 6);
    }

    #[test]
    fn amoadd_returns_old_value() {
        let (cpu, _) = run_program(
            |a| {
                a.li(1, BASE as i64 + 0x2000);
                a.li(2, 10);
                a.sd(2, 1, 0);
                a.li(3, 32);
                a.amoadd_d(4, 3, 1); // x4 = 10, mem = 42
                a.ld(5, 1, 0);
                a.wfi();
            },
            100,
        );
        assert_eq!(cpu.read_reg(4), 10);
        assert_eq!(cpu.read_reg(5), 42);
    }

    #[test]
    fn ecall_traps_and_mret_returns() {
        let mut a = Assembler::new(BASE);
        // Main: set mtvec, ecall, then x1 = 99 after return, wfi.
        a.la(5, "handler");
        a.csrw(csr_addr::MTVEC, 5);
        a.ecall();
        a.li(1, 99);
        a.wfi();
        a.label("handler");
        // handler: mepc += 4; mret
        a.csrr(6, csr_addr::MEPC);
        a.addi(6, 6, 4);
        a.csrw(csr_addr::MEPC, 6);
        a.mret();
        let image = a.assemble().unwrap();
        let mut mem = Memory::new(BASE, 1 << 16);
        mem.write_bytes(BASE, &image).unwrap();
        let mut cpu = Cpu::new(0, BASE);
        let mut saw_trap = false;
        for _ in 0..100 {
            match cpu.step(&mut mem).unwrap() {
                StepOutcome::Trapped { cause, .. } => {
                    assert_eq!(cause, 11);
                    saw_trap = true;
                }
                StepOutcome::Wfi => {
                    assert!(saw_trap);
                    assert_eq!(cpu.read_reg(1), 99);
                    return;
                }
                _ => {}
            }
        }
        panic!("did not complete");
    }

    #[test]
    fn illegal_instruction_traps() {
        let mut mem = Memory::new(BASE, 4096);
        mem.store(BASE, 4, 0xffff_ffff).unwrap();
        let mut cpu = Cpu::new(0, BASE);
        match cpu.step(&mut mem).unwrap() {
            StepOutcome::Trapped { cause, .. } => assert_eq!(cause, 2),
            other => panic!("{other:?}"),
        }
        assert_eq!(cpu.csrs.mtval, 0xffff_ffff);
        // mtvec is 0 -> handler at 0; fetching there faults -> cause 1.
        match cpu.step(&mut mem).unwrap() {
            StepOutcome::Trapped { cause, .. } => assert_eq!(cause, 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn interrupt_taken_when_enabled() {
        let mut a = Assembler::new(BASE);
        a.la(5, "handler");
        a.csrw(csr_addr::MTVEC, 5);
        a.li(6, 0x888);
        a.csrw(csr_addr::MIE, 6); // enable all lines
        a.csrsi(csr_addr::MSTATUS, 8); // MIE
        a.label("spin");
        a.j("spin");
        a.label("handler");
        a.li(1, 7);
        a.wfi();
        let image = a.assemble().unwrap();
        let mut mem = Memory::new(BASE, 4096);
        mem.write_bytes(BASE, &image).unwrap();
        let mut cpu = Cpu::new(0, BASE);
        // Run the setup + a few spins.
        for _ in 0..10 {
            cpu.step(&mut mem).unwrap();
        }
        cpu.csrs.set_interrupt(Interrupt::External, true);
        match cpu.step(&mut mem).unwrap() {
            StepOutcome::Trapped { cause, .. } => {
                assert_eq!(cause, (1 << 63) | 11);
            }
            other => panic!("{other:?}"),
        }
        // The handler would normally tell the device to deassert; model
        // that before it reaches WFI.
        cpu.csrs.set_interrupt(Interrupt::External, false);
        // Handler runs.
        for _ in 0..10 {
            if let StepOutcome::Wfi = cpu.step(&mut mem).unwrap() {
                assert_eq!(cpu.read_reg(1), 7);
                return;
            }
        }
        panic!("handler did not park");
    }

    #[test]
    fn wfi_parks_and_wakes() {
        let mut a = Assembler::new(BASE);
        a.li(6, 0x800);
        a.csrw(csr_addr::MIE, 6); // enable external only; MSTATUS.MIE off
        a.wfi();
        a.li(1, 5);
        a.wfi();
        let image = a.assemble().unwrap();
        let mut mem = Memory::new(BASE, 4096);
        mem.write_bytes(BASE, &image).unwrap();
        let mut cpu = Cpu::new(0, BASE);
        for _ in 0..4 {
            cpu.step(&mut mem).unwrap();
        }
        // Parked.
        assert_eq!(cpu.step(&mut mem).unwrap(), StepOutcome::Wfi);
        assert_eq!(cpu.step(&mut mem).unwrap(), StepOutcome::Wfi);
        // Wake: with MSTATUS.MIE clear, WFI completes without trapping.
        cpu.csrs.set_interrupt(Interrupt::External, true);
        match cpu.step(&mut mem).unwrap() {
            StepOutcome::Retired {
                inst: Inst::Wfi, ..
            } => {}
            other => panic!("{other:?}"),
        }
        cpu.step(&mut mem).unwrap(); // li
        assert_eq!(cpu.read_reg(1), 5);
    }

    /// The lean superblock dispatch in `run_cached` re-implements the hot
    /// instruction arms without building `StepOutcome`s; this differential
    /// test locks it to the plain interpreter over a trap-heavy program
    /// (ALU, mul, loads/stores, calls, branches, CSR traffic, an ecall
    /// handler round-trip, AMOs), driven in small budget chunks so every
    /// `BlockStop` reason is exercised.
    #[test]
    fn run_cached_matches_step_exactly() {
        let mut a = Assembler::new(BASE);
        a.la(5, "handler");
        a.csrw(csr_addr::MTVEC, 5);
        a.li(2, BASE as i64 + 0x8000); // stack
        a.li(21, BASE as i64 + 0x4000); // data (not x1: `call` clobbers ra)
        a.li(10, 1);
        a.li(6, 12);
        a.label("loop");
        a.mul(10, 10, 6);
        a.sd(10, 21, 0);
        a.ld(11, 21, 0);
        a.amoadd_d(12, 11, 21);
        a.call("leaf");
        a.addi(6, 6, -1);
        a.bnez(6, "loop");
        a.ecall(); // round-trip through the trap handler
        a.li(13, 99);
        a.wfi();
        a.label("leaf");
        a.xor(14, 10, 11);
        a.ret();
        a.label("handler");
        a.csrr(7, csr_addr::MEPC);
        a.addi(7, 7, 4);
        a.csrw(csr_addr::MEPC, 7);
        a.mret();
        let image = a.assemble().unwrap();

        let mut mem_i = Memory::new(BASE, 1 << 20);
        mem_i.write_bytes(BASE, &image).unwrap();
        let mut interp = Cpu::new(0, BASE);
        let mut retired_i = 0u64;
        loop {
            match interp.step(&mut mem_i).unwrap() {
                StepOutcome::Retired { .. } => retired_i += 1,
                StepOutcome::Trapped { .. } => {}
                StepOutcome::Wfi => break,
            }
            assert!(retired_i < 10_000, "interpreter runaway");
        }

        let mut mem_c = Memory::new(BASE, 1 << 20);
        mem_c.write_bytes(BASE, &image).unwrap();
        let mut cached = Cpu::new(0, BASE);
        let mut cache = DecodeCache::new();
        let mut retired_c = 0u64;
        loop {
            // A deliberately awkward budget so superblocks split at
            // arbitrary points, including mid-basic-block.
            let block = cached.run_cached(&mut mem_c, &mut cache, 7);
            retired_c += block.retired;
            match block.stopped {
                BlockStop::Budget | BlockStop::Trapped => {}
                BlockStop::Wfi => break,
            }
            assert!(retired_c < 10_000, "cached runaway");
        }

        assert_eq!(retired_i, retired_c, "retired counts diverge");
        assert_eq!(interp.pc, cached.pc, "final pc diverges");
        assert_eq!(interp.regs, cached.regs, "register files diverge");
        assert_eq!(
            interp.csrs.minstret, cached.csrs.minstret,
            "minstret diverges"
        );
        assert_eq!(cached.read_reg(13), 99, "program must complete");
        let stats = cache.stats();
        assert!(
            stats.hits > retired_c / 2,
            "fast path barely used: {stats:?}"
        );
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let (cpu, _) = run_program(
            |a| {
                a.li(1, 42);
                a.add(0, 1, 1); // attempt to write x0
                a.add(2, 0, 0);
                a.wfi();
            },
            100,
        );
        assert_eq!(cpu.read_reg(0), 0);
        assert_eq!(cpu.read_reg(2), 0);
    }

    #[test]
    fn reservation_clobbered_by_other_hart() {
        let mut mem = Memory::new(BASE, 4096);
        let mut a = Assembler::new(BASE);
        a.li(1, BASE as i64 + 64);
        a.lr_d(2, 1);
        a.sc_d(3, 2, 1);
        a.wfi();
        let image = a.assemble().unwrap();
        mem.write_bytes(BASE, &image).unwrap();
        let mut cpu = Cpu::new(0, BASE);
        // li is 1-2 insts; step until after lr (has_reservation).
        for _ in 0..10 {
            if cpu.has_reservation() {
                break;
            }
            cpu.step(&mut mem).unwrap();
        }
        assert!(cpu.has_reservation());
        cpu.clobber_reservation(BASE + 64);
        // SC must now fail.
        loop {
            if cpu.step(&mut mem).unwrap() == StepOutcome::Wfi {
                break;
            }
        }
        assert_eq!(cpu.read_reg(3), 1);
    }
}
