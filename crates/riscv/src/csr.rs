//! Machine-mode control and status registers.
//!
//! Only the M-mode subset needed by bare-metal software is implemented:
//! trap setup/handling (`mstatus`, `mtvec`, `mepc`, `mcause`, `mtval`,
//! `mie`, `mip`, `mscratch`), identification (`mhartid`), and counters
//! (`mcycle`, `minstret`, and their read-only `cycle`/`instret` shadows).
//! Rocket Chip cores expose the same set to machine-mode firmware.

use core::fmt;

/// CSR addresses used by the implementation.
#[allow(missing_docs)]
pub mod addr {
    pub const MSTATUS: u16 = 0x300;
    pub const MISA: u16 = 0x301;
    pub const MIE: u16 = 0x304;
    pub const MTVEC: u16 = 0x305;
    pub const MSCRATCH: u16 = 0x340;
    pub const MEPC: u16 = 0x341;
    pub const MCAUSE: u16 = 0x342;
    pub const MTVAL: u16 = 0x343;
    pub const MIP: u16 = 0x344;
    pub const MCYCLE: u16 = 0xb00;
    pub const MINSTRET: u16 = 0xb02;
    pub const CYCLE: u16 = 0xc00;
    pub const TIME: u16 = 0xc01;
    pub const INSTRET: u16 = 0xc02;
    pub const MVENDORID: u16 = 0xf11;
    pub const MARCHID: u16 = 0xf12;
    pub const MIMPID: u16 = 0xf13;
    pub const MHARTID: u16 = 0xf14;
}

/// `mstatus` bit positions (M-mode subset).
#[allow(missing_docs)]
pub mod mstatus {
    pub const MIE: u64 = 1 << 3;
    pub const MPIE: u64 = 1 << 7;
    /// MPP field; always "11" (M-mode) in this single-mode implementation.
    pub const MPP_M: u64 = 0b11 << 11;
}

/// Machine interrupt lines, by `mip`/`mie` bit index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interrupt {
    /// Machine software interrupt (bit 3) — inter-processor interrupts.
    Software,
    /// Machine timer interrupt (bit 7) — CLINT `mtimecmp`.
    Timer,
    /// Machine external interrupt (bit 11) — devices (NIC, block device).
    External,
}

impl Interrupt {
    /// Bit index in `mip`/`mie`.
    pub fn bit(self) -> u64 {
        match self {
            Interrupt::Software => 3,
            Interrupt::Timer => 7,
            Interrupt::External => 11,
        }
    }

    /// `mcause` value for this interrupt (with the interrupt bit set).
    pub fn cause(self) -> u64 {
        (1 << 63) | self.bit()
    }
}

/// The CSR file of one hart.
#[derive(Debug, Clone)]
pub struct CsrFile {
    hartid: u64,
    /// Externally visible machine state.
    pub mstatus: u64,
    /// Trap vector base (direct mode; bit 0-1 mode field is ignored).
    pub mtvec: u64,
    /// Machine exception PC.
    pub mepc: u64,
    /// Machine trap cause.
    pub mcause: u64,
    /// Machine trap value (bad address / bad instruction).
    pub mtval: u64,
    /// Interrupt enable bits.
    pub mie: u64,
    /// Interrupt pending bits (device lines OR software-settable bits).
    pub mip: u64,
    /// Scratch register for trap handlers.
    pub mscratch: u64,
    /// Cycle counter, incremented by the timing model.
    pub mcycle: u64,
    /// Retired-instruction counter.
    pub minstret: u64,
    /// Wall-clock `time` CSR value, driven by the platform's CLINT.
    pub time: u64,
}

/// Error for accesses to unimplemented or read-only CSRs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrError {
    /// The offending CSR address.
    pub csr: u16,
}

impl fmt::Display for CsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal CSR access to {:#x}", self.csr)
    }
}

impl std::error::Error for CsrError {}

impl CsrFile {
    /// Creates the reset-state CSR file for hart `hartid`.
    pub fn new(hartid: u64) -> Self {
        CsrFile {
            hartid,
            mstatus: mstatus::MPP_M,
            mtvec: 0,
            mepc: 0,
            mcause: 0,
            mtval: 0,
            mie: 0,
            mip: 0,
            mscratch: 0,
            mcycle: 0,
            minstret: 0,
            time: 0,
        }
    }

    /// This hart's id.
    pub fn hartid(&self) -> u64 {
        self.hartid
    }

    /// Reads a CSR.
    ///
    /// # Errors
    ///
    /// Returns [`CsrError`] for unimplemented addresses (the executor turns
    /// this into an illegal-instruction trap).
    pub fn read(&self, csr: u16) -> Result<u64, CsrError> {
        use addr::*;
        Ok(match csr {
            MSTATUS => self.mstatus,
            // RV64 IMA, M-mode only.
            MISA => (2u64 << 62) | (1 << 0) | (1 << 8) | (1 << 12),
            MIE => self.mie,
            MTVEC => self.mtvec,
            MSCRATCH => self.mscratch,
            MEPC => self.mepc,
            MCAUSE => self.mcause,
            MTVAL => self.mtval,
            MIP => self.mip,
            MCYCLE | CYCLE => self.mcycle,
            MINSTRET | INSTRET => self.minstret,
            TIME => self.time,
            MVENDORID | MARCHID | MIMPID => 0,
            MHARTID => self.hartid,
            _ => return Err(CsrError { csr }),
        })
    }

    /// Writes a CSR.
    ///
    /// # Errors
    ///
    /// Returns [`CsrError`] for unimplemented or read-only addresses.
    pub fn write(&mut self, csr: u16, value: u64) -> Result<(), CsrError> {
        use addr::*;
        match csr {
            MSTATUS => {
                // Only MIE/MPIE are writable; MPP stays M.
                let mask = mstatus::MIE | mstatus::MPIE;
                self.mstatus = (self.mstatus & !mask) | (value & mask) | mstatus::MPP_M;
            }
            MISA => {}                           // WARL: writes ignored
            MIE => self.mie = value & 0x888,     // MSIE/MTIE/MEIE only
            MTVEC => self.mtvec = value & !0b11, // direct mode only
            MSCRATCH => self.mscratch = value,
            MEPC => self.mepc = value & !0b1,
            MCAUSE => self.mcause = value,
            MTVAL => self.mtval = value,
            MIP => {
                // Only the software bit is writable from software; timer and
                // external pending bits are wired to devices.
                let mask = 1 << Interrupt::Software.bit();
                self.mip = (self.mip & !mask) | (value & mask);
            }
            MCYCLE => self.mcycle = value,
            MINSTRET => self.minstret = value,
            CYCLE | TIME | INSTRET | MVENDORID | MARCHID | MIMPID | MHARTID => {
                return Err(CsrError { csr })
            }
            _ => return Err(CsrError { csr }),
        }
        Ok(())
    }

    /// Sets or clears a device-driven interrupt pending line.
    pub fn set_interrupt(&mut self, line: Interrupt, pending: bool) {
        let bit = 1 << line.bit();
        if pending {
            self.mip |= bit;
        } else {
            self.mip &= !bit;
        }
    }

    /// Returns the highest-priority enabled pending interrupt, if
    /// interrupts are globally enabled (`mstatus.MIE`).
    ///
    /// Priority order follows the spec: external > software > timer.
    pub fn pending_interrupt(&self) -> Option<Interrupt> {
        if self.mstatus & mstatus::MIE == 0 {
            return None;
        }
        let active = self.mip & self.mie;
        [Interrupt::External, Interrupt::Software, Interrupt::Timer]
            .into_iter()
            .find(|&line| active & (1 << line.bit()) != 0)
    }

    /// True when any enabled interrupt is pending regardless of the global
    /// enable — the WFI wake-up condition.
    pub fn wfi_wakeup(&self) -> bool {
        self.mip & self.mie != 0
    }

    /// Performs trap entry bookkeeping: saves `pc`, sets cause/tval, and
    /// disables interrupts. Returns the handler address.
    pub fn trap_enter(&mut self, pc: u64, cause: u64, tval: u64) -> u64 {
        self.mepc = pc;
        self.mcause = cause;
        self.mtval = tval;
        let mie = (self.mstatus >> 3) & 1;
        self.mstatus &= !(mstatus::MIE | mstatus::MPIE);
        self.mstatus |= mie << 7; // MPIE <- MIE
        self.mtvec
    }

    /// Performs `mret`: restores the interrupt enable and returns the
    /// resume address.
    pub fn trap_return(&mut self) -> u64 {
        let mpie = (self.mstatus >> 7) & 1;
        self.mstatus &= !mstatus::MIE;
        self.mstatus |= mpie << 3; // MIE <- MPIE
        self.mstatus |= mstatus::MPIE;
        self.mepc
    }
}

impl firesim_core::snapshot::Checkpoint for CsrFile {
    fn save_state(
        &self,
        w: &mut firesim_core::snapshot::SnapshotWriter,
    ) -> firesim_core::SimResult<()> {
        for v in [
            self.hartid,
            self.mstatus,
            self.mtvec,
            self.mepc,
            self.mcause,
            self.mtval,
            self.mie,
            self.mip,
            self.mscratch,
            self.mcycle,
            self.minstret,
            self.time,
        ] {
            w.put_u64(v);
        }
        Ok(())
    }

    fn restore_state(
        &mut self,
        r: &mut firesim_core::snapshot::SnapshotReader<'_>,
    ) -> firesim_core::SimResult<()> {
        let hartid = r.get_u64()?;
        if hartid != self.hartid {
            return Err(firesim_core::SimError::checkpoint(format!(
                "CSR snapshot is for hart {hartid}, restoring onto hart {}",
                self.hartid
            )));
        }
        self.mstatus = r.get_u64()?;
        self.mtvec = r.get_u64()?;
        self.mepc = r.get_u64()?;
        self.mcause = r.get_u64()?;
        self.mtval = r.get_u64()?;
        self.mie = r.get_u64()?;
        self.mip = r.get_u64()?;
        self.mscratch = r.get_u64()?;
        self.mcycle = r.get_u64()?;
        self.minstret = r.get_u64()?;
        self.time = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_basics() {
        let mut c = CsrFile::new(3);
        assert_eq!(c.read(addr::MHARTID).unwrap(), 3);
        c.write(addr::MSCRATCH, 0xdead).unwrap();
        assert_eq!(c.read(addr::MSCRATCH).unwrap(), 0xdead);
        c.write(addr::MTVEC, 0x8000_0101).unwrap();
        assert_eq!(c.read(addr::MTVEC).unwrap(), 0x8000_0100); // aligned
        assert!(c.write(addr::MHARTID, 1).is_err());
        assert!(c.read(0x7c0).is_err());
    }

    #[test]
    fn interrupt_priority_and_enables() {
        let mut c = CsrFile::new(0);
        c.write(addr::MIE, 0x888).unwrap();
        c.set_interrupt(Interrupt::Timer, true);
        c.set_interrupt(Interrupt::External, true);
        // Globally disabled: no interrupt taken.
        assert_eq!(c.pending_interrupt(), None);
        assert!(c.wfi_wakeup());
        // Enable: external wins over timer.
        c.write(addr::MSTATUS, mstatus::MIE).unwrap();
        assert_eq!(c.pending_interrupt(), Some(Interrupt::External));
        c.set_interrupt(Interrupt::External, false);
        assert_eq!(c.pending_interrupt(), Some(Interrupt::Timer));
    }

    #[test]
    fn mip_software_only_writable() {
        let mut c = CsrFile::new(0);
        c.write(addr::MIP, u64::MAX).unwrap();
        assert_eq!(c.read(addr::MIP).unwrap(), 1 << 3);
    }

    #[test]
    fn trap_enter_and_return() {
        let mut c = CsrFile::new(0);
        c.write(addr::MTVEC, 0x8000_1000).unwrap();
        c.write(addr::MSTATUS, mstatus::MIE).unwrap();
        let handler = c.trap_enter(0x8000_0042, 11, 0);
        assert_eq!(handler, 0x8000_1000);
        assert_eq!(c.mepc, 0x8000_0042);
        assert_eq!(c.mcause, 11);
        // Interrupts now disabled, MPIE holds the old MIE.
        assert_eq!(c.mstatus & mstatus::MIE, 0);
        assert_ne!(c.mstatus & mstatus::MPIE, 0);
        let resume = c.trap_return();
        assert_eq!(resume, 0x8000_0042);
        assert_ne!(c.mstatus & mstatus::MIE, 0);
    }

    #[test]
    fn interrupt_cause_values() {
        assert_eq!(Interrupt::Timer.cause(), (1 << 63) | 7);
        assert_eq!(Interrupt::External.cause(), (1 << 63) | 11);
        assert_eq!(Interrupt::Software.cause(), (1 << 63) | 3);
    }

    #[test]
    fn misa_reports_rv64ima() {
        let c = CsrFile::new(0);
        let misa = c.read(addr::MISA).unwrap();
        assert_eq!(misa >> 62, 2); // XLEN 64
        assert_ne!(misa & (1 << 0), 0); // A
        assert_ne!(misa & (1 << 8), 0); // I
        assert_ne!(misa & (1 << 12), 0); // M
    }
}
