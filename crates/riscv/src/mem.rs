//! The memory bus abstraction and a flat physical memory.
//!
//! The functional core issues loads and stores through the [`Bus`] trait;
//! the SoC composition in `firesim-blade` implements `Bus` to dispatch
//! between DRAM and memory-mapped devices (NIC, block device, UART, CLINT),
//! while `firesim-uarch` layers cache/DRAM *timing* on the same accesses.

use core::fmt;

/// A memory access fault, carried into the trap machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// The faulting physical address.
    pub addr: u64,
    /// True for stores/AMOs, false for loads/fetches.
    pub is_store: bool,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fault at {:#x}",
            if self.is_store { "store" } else { "load" },
            self.addr
        )
    }
}

impl std::error::Error for MemFault {}

/// A byte-addressable physical memory bus.
///
/// `size` is 1, 2, 4, or 8; values are zero-extended in the returned `u64`.
/// Misaligned accesses are allowed (Rocket's M-mode handler would emulate
/// them; our functional model simply performs them).
pub trait Bus {
    /// Reads `size` bytes at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] for unmapped addresses.
    fn load(&mut self, addr: u64, size: usize) -> Result<u64, MemFault>;

    /// Writes the low `size` bytes of `value` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] for unmapped addresses.
    fn store(&mut self, addr: u64, size: usize, value: u64) -> Result<(), MemFault>;

    /// Fetches a 32-bit instruction word. Default: a 4-byte load.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] for unmapped addresses.
    fn fetch(&mut self, addr: u64) -> Result<u32, MemFault> {
        self.load(addr, 4).map(|v| v as u32)
    }

    /// Code-page generation for `addr`, used by the decoded-instruction
    /// cache: a decoded entry is valid only while the generation of the
    /// page it was fetched from is unchanged. Any write into the page
    /// (CPU store, AMO, DMA) must bump its generation. `None` marks the
    /// address uncacheable (MMIO, unmapped) — fetches from it always go
    /// through the slow path. Default: nothing is cacheable.
    fn code_generation(&self, _addr: u64) -> Option<u64> {
        None
    }

    /// Global write generation: bumped by *every* write through the bus,
    /// whatever the address. The superblock fast path compares one
    /// snapshot of this against one load to prove "no store happened
    /// since the last retired instruction" without a per-page lookup.
    /// Must be monotone; the default (constant 0) is only correct
    /// together with the default `code_generation` of `None`.
    fn write_generation(&self) -> u64 {
        0
    }

    /// Batched timing layers call this as simulated cycles complete inside
    /// a bulk issue span, letting a bus implementation lazily advance
    /// quiescent device models right before an MMIO access would observe
    /// them. The functional interpreter and the per-cycle reference
    /// timing loop never call it; the default is a no-op.
    fn elapse_timing_cycles(&mut self, _cycles: u64) {}
}

impl<B: Bus + ?Sized> Bus for &mut B {
    fn load(&mut self, addr: u64, size: usize) -> Result<u64, MemFault> {
        (**self).load(addr, size)
    }
    fn store(&mut self, addr: u64, size: usize, value: u64) -> Result<(), MemFault> {
        (**self).store(addr, size, value)
    }
    fn fetch(&mut self, addr: u64) -> Result<u32, MemFault> {
        (**self).fetch(addr)
    }
    fn code_generation(&self, addr: u64) -> Option<u64> {
        (**self).code_generation(addr)
    }
    fn write_generation(&self) -> u64 {
        (**self).write_generation()
    }
    fn elapse_timing_cycles(&mut self, cycles: u64) {
        (**self).elapse_timing_cycles(cycles);
    }
}

/// A flat, contiguous RAM region.
///
/// # Examples
///
/// ```
/// use firesim_riscv::mem::{Bus, Memory};
///
/// let mut m = Memory::new(0x8000_0000, 4096);
/// m.store(0x8000_0100, 8, 0x1122_3344_5566_7788).unwrap();
/// assert_eq!(m.load(0x8000_0104, 4).unwrap(), 0x1122_3344);
/// assert!(m.load(0x7fff_ffff, 1).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    base: u64,
    data: Vec<u8>,
    /// One generation counter per [`PAGE_SIZE`] page, bumped on every
    /// write into the page. Consulted by the decoded-instruction cache
    /// ([`Bus::code_generation`]); host-side bookkeeping only, so it is
    /// deliberately *not* part of the checkpoint state.
    page_gens: Vec<u64>,
    /// Global write counter ([`Bus::write_generation`]).
    write_gen: u64,
}

/// Invalidation granularity for the decoded-instruction cache: writes
/// bump a generation counter per 4 KiB page.
pub const PAGE_SIZE: u64 = 4096;

impl Memory {
    /// Allocates `size` zeroed bytes based at `base`.
    pub fn new(base: u64, size: usize) -> Self {
        Memory {
            base,
            data: vec![0; size],
            page_gens: vec![0; size.div_ceil(PAGE_SIZE as usize)],
            write_gen: 0,
        }
    }

    /// Bumps the generation of every page covered by `[addr, addr+len)`
    /// plus the global write generation. Call on every successful write.
    fn bump_write_gens(&mut self, addr: u64, len: usize) {
        if len == 0 {
            return;
        }
        self.write_gen += 1;
        let first = ((addr - self.base) / PAGE_SIZE) as usize;
        let last = ((addr - self.base + len as u64 - 1) / PAGE_SIZE) as usize;
        for gen in &mut self.page_gens[first..=last] {
            *gen += 1;
        }
    }

    /// Base physical address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// True when `[addr, addr+len)` lies inside this memory.
    pub fn contains(&self, addr: u64, len: usize) -> bool {
        addr >= self.base && addr - self.base + len as u64 <= self.data.len() as u64
    }

    /// Bulk-writes bytes (program loading, DMA).
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] when the range is out of bounds.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), MemFault> {
        if !self.contains(addr, bytes.len()) {
            return Err(MemFault {
                addr,
                is_store: true,
            });
        }
        let off = (addr - self.base) as usize;
        self.data[off..off + bytes.len()].copy_from_slice(bytes);
        self.bump_write_gens(addr, bytes.len());
        Ok(())
    }

    /// Bulk-reads bytes (DMA).
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] when the range is out of bounds.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<&[u8], MemFault> {
        if !self.contains(addr, len) {
            return Err(MemFault {
                addr,
                is_store: false,
            });
        }
        let off = (addr - self.base) as usize;
        Ok(&self.data[off..off + len])
    }
}

impl firesim_core::snapshot::Checkpoint for Memory {
    fn save_state(
        &self,
        w: &mut firesim_core::snapshot::SnapshotWriter,
    ) -> firesim_core::SimResult<()> {
        w.put_u64(self.base);
        w.put_bytes(&self.data);
        Ok(())
    }

    fn restore_state(
        &mut self,
        r: &mut firesim_core::snapshot::SnapshotReader<'_>,
    ) -> firesim_core::SimResult<()> {
        let base = r.get_u64()?;
        let data = r.get_bytes()?;
        if base != self.base || data.len() != self.data.len() {
            return Err(firesim_core::SimError::checkpoint(format!(
                "memory snapshot is {} bytes at {base:#x}, target is {} bytes at {:#x}",
                data.len(),
                self.data.len(),
                self.base
            )));
        }
        self.data.copy_from_slice(data);
        // The snapshot format deliberately excludes the generation
        // counters (they are host-side cache bookkeeping, and FSCKPT01
        // images must stay bit-identical with the cache on or off), so a
        // restore — which rewrites all of memory — invalidates every
        // cached decode by bumping every generation instead.
        let (base, len) = (self.base, self.data.len());
        self.bump_write_gens(base, len);
        Ok(())
    }
}

impl Bus for Memory {
    fn load(&mut self, addr: u64, size: usize) -> Result<u64, MemFault> {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        let bytes = self.read_bytes(addr, size)?;
        let mut buf = [0u8; 8];
        buf[..size].copy_from_slice(bytes);
        Ok(u64::from_le_bytes(buf))
    }

    fn store(&mut self, addr: u64, size: usize, value: u64) -> Result<(), MemFault> {
        debug_assert!(matches!(size, 1 | 2 | 4 | 8));
        let bytes = value.to_le_bytes();
        // `write_bytes` bumps the page + write generations.
        self.write_bytes(addr, &bytes[..size])
    }

    fn code_generation(&self, addr: u64) -> Option<u64> {
        if self.contains(addr, 4) {
            Some(self.page_gens[((addr - self.base) / PAGE_SIZE) as usize])
        } else {
            None
        }
    }

    fn write_generation(&self) -> u64 {
        self.write_gen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_loads_and_stores() {
        let mut m = Memory::new(0x1000, 64);
        m.store(0x1000, 8, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(m.load(0x1000, 1).unwrap(), 0x08);
        assert_eq!(m.load(0x1001, 1).unwrap(), 0x07);
        assert_eq!(m.load(0x1000, 2).unwrap(), 0x0708);
        assert_eq!(m.load(0x1004, 4).unwrap(), 0x0102_0304);
    }

    #[test]
    fn misaligned_access_allowed() {
        let mut m = Memory::new(0, 64);
        m.store(3, 4, 0xdead_beef).unwrap();
        assert_eq!(m.load(3, 4).unwrap(), 0xdead_beef);
    }

    #[test]
    fn out_of_bounds_faults() {
        let mut m = Memory::new(0x1000, 16);
        assert!(m.load(0xfff, 1).is_err());
        assert!(m.load(0x100f, 2).is_err()); // straddles the end
        assert!(m.store(0x1010, 1, 0).is_err());
        assert_eq!(
            m.load(0x2000, 4),
            Err(MemFault {
                addr: 0x2000,
                is_store: false
            })
        );
    }

    #[test]
    fn bulk_round_trip() {
        let mut m = Memory::new(0x8000_0000, 128);
        m.write_bytes(0x8000_0040, &[1, 2, 3]).unwrap();
        assert_eq!(m.read_bytes(0x8000_0040, 3).unwrap(), &[1, 2, 3]);
        assert!(m.write_bytes(0x8000_007e, &[0; 4]).is_err());
    }

    #[test]
    fn write_generations_track_stores() {
        let mut m = Memory::new(0x1000, 2 * PAGE_SIZE as usize);
        let g0 = m.code_generation(0x1000).unwrap();
        let w0 = m.write_generation();
        m.store(0x1000, 4, 1).unwrap();
        assert!(m.code_generation(0x1000).unwrap() > g0);
        assert!(m.write_generation() > w0);

        // A store to one page leaves the other page's generation alone…
        let other = m.code_generation(0x1000 + PAGE_SIZE).unwrap();
        m.store(0x1000, 4, 2).unwrap();
        assert_eq!(m.code_generation(0x1000 + PAGE_SIZE).unwrap(), other);
        // …but a store straddling the boundary bumps both.
        let first = m.code_generation(0x1000).unwrap();
        m.store(0x1000 + PAGE_SIZE - 2, 4, 3).unwrap();
        assert!(m.code_generation(0x1000).unwrap() > first);
        assert!(m.code_generation(0x1000 + PAGE_SIZE).unwrap() > other);

        // DMA-style bulk writes count too.
        let w1 = m.write_generation();
        m.write_bytes(0x1000, &[1, 2, 3]).unwrap();
        assert!(m.write_generation() > w1);

        // Outside the RAM range nothing is cacheable.
        assert_eq!(m.code_generation(0x0), None);
        assert_eq!(m.code_generation(0x1000 + 2 * PAGE_SIZE), None);
    }

    #[test]
    fn fetch_reads_word() {
        let mut m = Memory::new(0, 16);
        m.store(4, 4, 0x0050_0093).unwrap();
        assert_eq!(m.fetch(4).unwrap(), 0x0050_0093);
    }
}
