//! Blade compute fast-path throughput: retired instructions per host
//! second, with the decoded-instruction cache on and off.
//!
//! Two layers are measured, both with the interleaved min-of-N sampling
//! used by the engine-throughput experiments (alternating bursts so host
//! drift hits every variant equally; minimum time per variant, because
//! noise only ever slows a sample down):
//!
//! * **ISA layer** — the bare functional core stepping an
//!   instruction-dense loop through `Cpu::step` vs `Cpu::step_cached`.
//!   This isolates the fetch/decode cost the cache removes and is the
//!   headline speedup number.
//! * **Blade layer** — a full single-core RTL blade advancing token
//!   windows with `TimingConfig::decode_cache` on vs off. This shows how
//!   much of a whole-blade host cycle the fast path buys back once the
//!   uarch timing models and token plumbing are in the loop.
//!
//! Output is a JSON object on stdout (after the human-readable lines).
//! Flags (after `cargo bench -p firesim-bench --bench blade_mips -- `):
//!
//! * `--quick` — smaller bursts and fewer reps, for CI smoke runs;
//! * `--check <baseline.json>` — exit nonzero if the measured ISA-layer
//!   speedup falls below 80% of the committed baseline's. The guard is on
//!   the same-run cached/uncached *ratio*, not absolute MIPS: absolute
//!   rates vary by multiples across host machines, while the ratio is a
//!   property of the code being guarded.

use std::time::Instant;

use firesim_blade::{programs, BladeConfig, RtlBlade};
use firesim_core::{AgentCtx, Cycle, SimAgent, TokenWindow};
use firesim_net::MacAddr;
use firesim_riscv::asm::Assembler;
use firesim_riscv::exec::Cpu;
use firesim_riscv::mem::Memory;
use firesim_riscv::{DecodeCache, DRAM_BASE};

const BASE: u64 = 0x8000_0000;
const MEM_BYTES: usize = 1 << 16;
const WINDOW: u32 = 6_400;

/// An instruction-dense loop: ~18 ALU/mul ops, one load, one store, and a
/// taken back-branch per iteration, running forever over a fixed data
/// slot. The store is deliberate — it bumps the global write generation
/// every iteration, so the cache is exercised on its page-validated path
/// rather than the (cheaper) same-superblock cursor alone.
fn workload_image_at(base: u64) -> Vec<u8> {
    let mut a = Assembler::new(base);
    a.li(5, (base + 0x2000) as i64);
    a.li(6, 0);
    a.label("loop");
    a.addi(6, 6, 1);
    a.xor(8, 6, 5);
    a.and(9, 8, 6);
    a.or(10, 9, 8);
    a.add(11, 10, 6);
    a.sub(12, 11, 9);
    a.slli(13, 12, 3);
    a.srli(14, 13, 2);
    a.mul(15, 14, 6);
    a.addi(16, 15, 7);
    a.xor(17, 16, 11);
    a.and(18, 17, 13);
    a.ld(19, 5, 0);
    a.add(20, 19, 6);
    a.sd(20, 5, 8);
    a.addi(21, 20, -3);
    a.or(22, 21, 17);
    a.add(23, 22, 18);
    a.j("loop");
    a.assemble().unwrap()
}

/// A functional core mid-workload, steppable with or without the cache.
struct IsaRunner {
    cpu: Cpu,
    mem: Memory,
    cache: Option<DecodeCache>,
}

impl IsaRunner {
    fn new(cached: bool) -> Self {
        let mut mem = Memory::new(BASE, MEM_BYTES);
        mem.write_bytes(BASE, &workload_image_at(BASE)).unwrap();
        IsaRunner {
            cpu: Cpu::new(0, BASE),
            mem,
            cache: cached.then(DecodeCache::new),
        }
    }

    fn run(&mut self, steps: u64) {
        match &mut self.cache {
            // The fast path dispatches the whole burst as superblocks.
            Some(cache) => {
                let done = self.cpu.run_cached(&mut self.mem, cache, steps);
                assert_eq!(done.retired, steps, "workload must not trap or park");
            }
            None => {
                for _ in 0..steps {
                    self.cpu.step(&mut self.mem).unwrap();
                }
            }
        }
    }
}

/// Interleaved min-of-`reps`: retired instructions per host second for the
/// plain interpreter and the cached fast path.
fn isa_rates(steps: u64, reps: usize) -> (f64, f64) {
    let mut interp = IsaRunner::new(false);
    let mut cached = IsaRunner::new(true);
    interp.run(steps); // warm-up
    cached.run(steps);
    let mut best = [f64::MAX; 2];
    for _ in 0..reps {
        for (b, r) in best.iter_mut().zip([&mut interp, &mut cached]) {
            let t0 = Instant::now();
            r.run(steps);
            *b = b.min(t0.elapsed().as_secs_f64());
        }
    }
    (steps as f64 / best[0], steps as f64 / best[1])
}

/// A full RTL blade running the ISA workload as its program image,
/// advanced window-by-window.
struct BladeRunner {
    blade: RtlBlade,
    now: u64,
}

impl BladeRunner {
    fn new(decode_cache: bool) -> Self {
        let mut config = BladeConfig::single_core().with_dram_bytes(1 << 20);
        config.timing.decode_cache = decode_cache;
        let mut blade = RtlBlade::new("b", MacAddr::from_node_index(0), config);
        // The same instruction-dense infinite loop as the ISA layer,
        // relocated to the blade's reset vector (`boot_poweroff`'s work
        // loop walks off the end of DRAM on long runs).
        let program = programs::Program {
            image: workload_image_at(DRAM_BASE),
            dram_init: Vec::new(),
            mailbox: (programs::MAILBOX, 8),
        };
        program.install(&mut blade);
        BladeRunner { blade, now: 0 }
    }

    fn retired(&self) -> u64 {
        let mut counters = Vec::new();
        self.blade.app_counters(&mut counters);
        counters
            .iter()
            .find(|(k, _)| k == "retired")
            .map_or(0, |(_, v)| *v)
    }

    /// Advances `windows` token windows, returning retired instructions
    /// per host second over the burst.
    fn run(&mut self, windows: u64) -> f64 {
        let before = self.retired();
        let t0 = Instant::now();
        for _ in 0..windows {
            let mut ctx = AgentCtx::standalone(
                Cycle::new(self.now),
                WINDOW,
                vec![TokenWindow::new(WINDOW)],
                1,
            );
            self.blade.advance(&mut ctx);
            self.now += u64::from(WINDOW);
        }
        let elapsed = t0.elapsed().as_secs_f64();
        (self.retired() - before) as f64 / elapsed
    }
}

/// Interleaved max-of-`reps` blade-level retired-instruction rates with
/// the decode cache off and on. (Max rather than min-time here because the
/// work per burst is fixed in *cycles*, not instructions; the best rate
/// plays the same role as the best time.)
fn blade_rates(windows: u64, reps: usize) -> (f64, f64) {
    let mut off = BladeRunner::new(false);
    let mut on = BladeRunner::new(true);
    off.run(windows); // warm-up
    on.run(windows);
    let mut best = [0f64; 2];
    for _ in 0..reps {
        for (b, r) in best.iter_mut().zip([&mut off, &mut on]) {
            *b = b.max(r.run(windows));
        }
    }
    (best[0], best[1])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (steps, windows, reps) = if quick {
        (1_000_000, 32, 3)
    } else {
        (8_000_000, 256, 9)
    };

    let (interp, cached) = isa_rates(steps, reps);
    let speedup = cached / interp;
    let (blade_off, blade_on) = blade_rates(windows, reps);
    let blade_speedup = blade_on / blade_off;

    println!(
        "isa layer:   interp {:.1} MIPS, cached {:.1} MIPS, speedup {:.2}x",
        interp / 1e6,
        cached / 1e6,
        speedup
    );
    println!(
        "blade layer: cache-off {:.1} MIPS, cache-on {:.1} MIPS, speedup {:.2}x",
        blade_off / 1e6,
        blade_on / 1e6,
        blade_speedup
    );
    let mut obj = std::collections::BTreeMap::new();
    for (k, v) in [
        ("interp_minstret_per_sec", interp),
        ("cached_minstret_per_sec", cached),
        ("speedup", speedup),
        ("blade_off_minstret_per_sec", blade_off),
        ("blade_on_minstret_per_sec", blade_on),
        ("blade_speedup", blade_speedup),
    ] {
        obj.insert(k.to_owned(), serde_json::Value::from(v));
    }
    obj.insert("quick".to_owned(), serde_json::Value::from(quick));
    println!("{}", serde_json::Value::Object(obj).to_string_compact());

    if let Some(path) = check {
        // `cargo bench` sets the package dir as cwd; accept repo-root-
        // relative baseline paths too.
        let mut path = std::path::PathBuf::from(path);
        if !path.exists() {
            let from_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(&path);
            if from_root.exists() {
                path = from_root;
            }
        }
        let baseline =
            serde_json::from_str(&std::fs::read_to_string(&path).expect("baseline readable"))
                .expect("baseline parses");
        let base_speedup = baseline
            .get("speedup")
            .and_then(serde_json::Value::as_f64)
            .expect("baseline has speedup");
        let floor = base_speedup * 0.8;
        if speedup < floor {
            eprintln!(
                "FAIL: cached retired-instr/sec speedup {speedup:.2}x is below \
                 80% of the committed baseline {base_speedup:.2}x (floor {floor:.2}x)"
            );
            std::process::exit(1);
        }
        println!(
            "check ok: speedup {speedup:.2}x >= floor {floor:.2}x (baseline {base_speedup:.2}x)"
        );
    }
}
