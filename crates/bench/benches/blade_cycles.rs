//! Event-driven timing layer throughput: simulated cycles per host
//! second, batched scheduling vs the per-cycle reference loop.
//!
//! Two workloads bracket the design space:
//!
//! * **compute** — the instruction-dense `blade_mips` loop, where the
//!   batched layer's win comes from hoisting per-cycle interrupt wiring
//!   and device ticks out of the issue loop (Mode B spans).
//! * **parked** — every core in WFI with interrupts masked, where the
//!   batched layer skips whole quiet windows in O(1) (Mode A spans). The
//!   reference loop still pays per-cycle wiring and `clint.advance(1)`.
//!
//! Both timing modes produce bit-identical cycle counts and digests (see
//! `tests/timing_equiv.rs` and the distributed `reference-timing` mode);
//! this benchmark only measures host throughput.
//!
//! Output is a JSON object on stdout (after the human-readable lines).
//! Flags (after `cargo bench -p firesim-bench --bench blade_cycles -- `):
//!
//! * `--quick` — smaller bursts and fewer reps, for CI smoke runs;
//! * `--check <baseline.json>` — exit nonzero if the measured compute
//!   batched/reference speedup falls below 80% of the committed
//!   baseline's, or if a fully parked blade is not at least an order of
//!   magnitude cheaper per cycle than a computing one
//!   (`parked_blade_is_cheap`). Both guards are same-run *ratios*, which
//!   survive host-machine variation; absolute cycles/sec do not.

use std::time::Instant;

use firesim_blade::{programs, BladeConfig, RtlBlade};
use firesim_core::{AgentCtx, Cycle, SimAgent, TokenWindow};
use firesim_net::MacAddr;
use firesim_riscv::asm::Assembler;
use firesim_riscv::DRAM_BASE;

const WINDOW: u32 = 6_400;

/// The `blade_mips` instruction-dense loop: ~18 ALU/mul ops, one load,
/// one store, and a taken back-branch per iteration, forever.
fn compute_image() -> Vec<u8> {
    let mut a = Assembler::new(DRAM_BASE);
    a.li(5, (DRAM_BASE + 0x2000) as i64);
    a.li(6, 0);
    a.label("loop");
    a.addi(6, 6, 1);
    a.xor(8, 6, 5);
    a.and(9, 8, 6);
    a.or(10, 9, 8);
    a.add(11, 10, 6);
    a.sub(12, 11, 9);
    a.slli(13, 12, 3);
    a.srli(14, 13, 2);
    a.mul(15, 14, 6);
    a.addi(16, 15, 7);
    a.xor(17, 16, 11);
    a.and(18, 17, 13);
    a.ld(19, 5, 0);
    a.add(20, 19, 6);
    a.sd(20, 5, 8);
    a.addi(21, 20, -3);
    a.or(22, 21, 17);
    a.add(23, 22, 18);
    a.j("loop");
    a.assemble().unwrap()
}

/// Which workload a runner boots.
#[derive(Clone, Copy)]
enum Workload {
    Compute,
    Parked,
}

/// A single-core RTL blade advancing token windows under one timing mode.
struct Runner {
    blade: RtlBlade,
    now: u64,
}

impl Runner {
    fn new(workload: Workload, reference: bool) -> Self {
        let mut config = BladeConfig::single_core().with_dram_bytes(1 << 20);
        config.timing.reference_timing = reference;
        let mut blade = RtlBlade::new("b", MacAddr::from_node_index(0), config);
        let program = match workload {
            Workload::Compute => programs::Program {
                image: compute_image(),
                dram_init: Vec::new(),
                mailbox: (programs::MAILBOX, 8),
            },
            Workload::Parked => programs::park(),
        };
        program.install(&mut blade);
        blade.enable_host_profiling();
        Runner { blade, now: 0 }
    }

    /// Advances `windows` token windows, returning simulated cycles per
    /// host second over the burst.
    fn run(&mut self, windows: u64) -> f64 {
        let t0 = Instant::now();
        for _ in 0..windows {
            let mut ctx = AgentCtx::standalone(
                Cycle::new(self.now),
                WINDOW,
                vec![TokenWindow::new(WINDOW)],
                1,
            );
            self.blade.advance(&mut ctx);
            self.now += u64::from(WINDOW);
        }
        windows as f64 * f64::from(WINDOW) / t0.elapsed().as_secs_f64()
    }
}

/// Interleaved max-of-`reps` cycles/sec for reference vs batched timing
/// on one workload. Alternating bursts mean host drift hits both modes
/// equally; the best rate per mode stands in for the least-noise sample.
fn rates(workload: Workload, windows: u64, reps: usize) -> (f64, f64) {
    let mut reference = Runner::new(workload, true);
    let mut batched = Runner::new(workload, false);
    reference.run(windows); // warm-up
    batched.run(windows);
    let mut best = [0f64; 2];
    for _ in 0..reps {
        for (b, r) in best.iter_mut().zip([&mut reference, &mut batched]) {
            *b = b.max(r.run(windows));
        }
    }
    (best[0], best[1])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (windows, parked_windows, reps) = if quick { (32, 256, 3) } else { (256, 4096, 9) };

    let (comp_ref, comp_bat) = rates(Workload::Compute, windows, reps);
    let compute_speedup = comp_bat / comp_ref;
    // A parked blade simulates cycles orders of magnitude faster, so it
    // gets proportionally more windows per burst to keep timer noise down.
    let (park_ref, park_bat) = rates(Workload::Parked, parked_windows, reps);
    let parked_speedup = park_bat / park_ref;
    // `parked_blade_is_cheap`: how many times cheaper per simulated
    // cycle a fully parked blade is than a computing one, batched mode.
    // Mode A skips make this large; the reference loop keeps it near 1.
    let parked_cheapness = park_bat / comp_bat;

    println!(
        "compute: reference {:.2} Mcyc/s, batched {:.2} Mcyc/s, speedup {:.2}x",
        comp_ref / 1e6,
        comp_bat / 1e6,
        compute_speedup
    );
    println!(
        "parked:  reference {:.2} Mcyc/s, batched {:.2} Mcyc/s, speedup {:.2}x",
        park_ref / 1e6,
        park_bat / 1e6,
        parked_speedup
    );
    println!("parked blade is {parked_cheapness:.1}x cheaper per cycle than compute (batched)");

    let mut obj = std::collections::BTreeMap::new();
    for (k, v) in [
        ("compute_reference_cycles_per_sec", comp_ref),
        ("compute_batched_cycles_per_sec", comp_bat),
        ("compute_speedup", compute_speedup),
        ("parked_reference_cycles_per_sec", park_ref),
        ("parked_batched_cycles_per_sec", park_bat),
        ("parked_speedup", parked_speedup),
        ("parked_cheapness", parked_cheapness),
    ] {
        obj.insert(k.to_owned(), serde_json::Value::from(v));
    }
    obj.insert("quick".to_owned(), serde_json::Value::from(quick));
    println!("{}", serde_json::Value::Object(obj).to_string_compact());

    if let Some(path) = check {
        // `cargo bench` sets the package dir as cwd; accept repo-root-
        // relative baseline paths too.
        let mut path = std::path::PathBuf::from(path);
        if !path.exists() {
            let from_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(&path);
            if from_root.exists() {
                path = from_root;
            }
        }
        let baseline =
            serde_json::from_str(&std::fs::read_to_string(&path).expect("baseline readable"))
                .expect("baseline parses");
        let base_speedup = baseline
            .get("compute_speedup")
            .and_then(serde_json::Value::as_f64)
            .expect("baseline has compute_speedup");
        let floor = base_speedup * 0.8;
        let mut failed = false;
        if compute_speedup < floor {
            eprintln!(
                "FAIL: batched/reference compute speedup {compute_speedup:.2}x is below \
                 80% of the committed baseline {base_speedup:.2}x (floor {floor:.2}x)"
            );
            failed = true;
        }
        // parked_blade_is_cheap: a fully parked blade must not pay the
        // per-cycle per-core wiring the computing blade pays.
        if parked_cheapness < 10.0 {
            eprintln!(
                "FAIL: parked_blade_is_cheap — a parked blade is only \
                 {parked_cheapness:.2}x cheaper per cycle than a computing \
                 blade; expected at least 10x"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check ok: compute speedup {compute_speedup:.2}x >= floor {floor:.2}x, \
             parked blade {parked_cheapness:.1}x cheaper per cycle"
        );
    }
}
