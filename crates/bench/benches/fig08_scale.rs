//! Fig 8 regeneration bench: simulation rate vs simulated cluster size.
//! Criterion times the simulation itself, which IS the quantity Fig 8
//! reports (target cycles per wall second).
//!
//! Also prints a multi-process mode: the same cluster partitioned across
//! worker processes over shared-memory token transports, sanity-checked
//! against `Transport::sim_rate_bound_hz` (a software fleet that moves
//! real token batches must land below the bound the host transport alone
//! would impose on a hardware deployment).

use criterion::{criterion_group, Criterion};
use firesim_bench::experiments::{build_fig8_cluster, fig8_scale, fig8_scale_distributed};
use firesim_manager::TransportChoice;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08_scale");
    g.sample_size(10);
    g.bench_function("nodes_8_standard", |b| b.iter(|| fig8_scale(&[8], 16_000)));
    g.finish();

    let rows = fig8_scale(&[4, 16, 64], 64_000);
    println!("\nFig 8 rows (nodes, mapping, sim MHz):");
    for r in &rows {
        println!(
            "  {:>5} {:>10} {:>8.3}",
            r.nodes,
            if r.supernode { "supernode" } else { "standard" },
            r.sim_rate_mhz
        );
    }

    let dist = fig8_scale_distributed(8, &[1, 2, 4], TransportChoice::Shm, 64_000)
        .expect("distributed fleet runs");
    println!("\nFig 8 distributed rows (nodes, workers, sim MHz, transport-bound MHz, digest):");
    for r in &dist {
        assert!(
            r.sim_rate_mhz < r.bound_mhz,
            "software fleet ({:.3} MHz) cannot beat the transport bound ({:.3} MHz)",
            r.sim_rate_mhz,
            r.bound_mhz
        );
        println!(
            "  {:>5} {:>7} {:>8.3} {:>8.3}  {:016x}",
            r.nodes, r.workers, r.sim_rate_mhz, r.bound_mhz, r.combined_digest
        );
    }
    assert!(
        dist.windows(2)
            .all(|w| w[0].combined_digest == w[1].combined_digest),
        "partitioning must not change results: {dist:?}"
    );
}

criterion_group!(benches, bench);

fn main() {
    // Fleet workers re-exec this binary; hand them their shard before
    // criterion sees the command line.
    if firesim_manager::maybe_worker(build_fig8_cluster) {
        return;
    }
    benches();
}
