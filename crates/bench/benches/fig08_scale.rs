//! Fig 8 regeneration bench: simulation rate vs simulated cluster size.
//! Criterion times the simulation itself, which IS the quantity Fig 8
//! reports (target cycles per wall second).

use criterion::{criterion_group, criterion_main, Criterion};
use firesim_bench::experiments::fig8_scale;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08_scale");
    g.sample_size(10);
    g.bench_function("nodes_8_standard", |b| b.iter(|| fig8_scale(&[8], 16_000)));
    g.finish();

    let rows = fig8_scale(&[4, 16, 64], 64_000);
    println!("\nFig 8 rows (nodes, mapping, sim MHz):");
    for r in &rows {
        println!(
            "  {:>5} {:>10} {:>8.3}",
            r.nodes,
            if r.supernode { "supernode" } else { "standard" },
            r.sim_rate_mhz
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
