//! Substrate microbenchmarks (ablations): how fast are the pieces the
//! scale experiments are built from?

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use firesim_blade::{programs, BladeConfig, RtlBlade};
use firesim_core::{AgentCtx, Cycle, SimAgent, TokenWindow};
use firesim_manager::{BladeSpec, SimConfig, Simulation, Topology};
use firesim_net::{EtherType, EthernetFrame, Flit, FrameFramer, MacAddr, Switch, SwitchConfig};
use firesim_riscv::asm::Assembler;
use firesim_riscv::exec::Cpu;
use firesim_riscv::mem::Memory;
use firesim_uarch::{Cache, CacheConfig, Dram, DramConfig};

/// Functional RISC-V executor: millions of instructions per second.
fn bench_isa(c: &mut Criterion) {
    let mut a = Assembler::new(0x8000_0000);
    a.li(1, 0);
    a.li(2, 1_000);
    a.label("l");
    a.addi(1, 1, 1);
    a.xor(3, 1, 2);
    a.and(4, 3, 1);
    a.blt(1, 2, "l");
    a.label("spin");
    a.j("spin");
    let image = a.assemble().unwrap();
    let mut g = c.benchmark_group("substrate");
    g.throughput(Throughput::Elements(4_000));
    g.bench_function("riscv_functional_4k_insts", |b| {
        b.iter(|| {
            let mut mem = Memory::new(0x8000_0000, 1 << 16);
            mem.write_bytes(0x8000_0000, &image).unwrap();
            let mut cpu = Cpu::new(0, 0x8000_0000);
            for _ in 0..4_000 {
                cpu.step(&mut mem).unwrap();
            }
            cpu.read_reg(1)
        })
    });
    g.finish();
}

/// Full blade: cycles per host second.
fn bench_blade(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    g.throughput(Throughput::Elements(6_400));
    g.bench_function("rtl_blade_one_window", |b| {
        let prog = programs::boot_poweroff(1 << 40);
        let mut blade = RtlBlade::new(
            "b",
            MacAddr::from_node_index(0),
            BladeConfig::single_core().with_dram_bytes(1 << 20),
        );
        prog.install(&mut blade);
        let mut now = 0u64;
        b.iter(|| {
            let mut ctx =
                AgentCtx::standalone(Cycle::new(now), 6_400, vec![TokenWindow::new(6_400)], 1);
            blade.advance(&mut ctx);
            now += 6_400;
        })
    });
    g.finish();
}

/// Switch model: frames per second through a loaded port.
fn bench_switch(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    let frame = EthernetFrame::new(
        MacAddr::from_node_index(1),
        MacAddr::from_node_index(0),
        EtherType::Stream,
        bytes::Bytes::from_static(&[0xAA; 1486]),
    );
    g.throughput(Throughput::Elements(32));
    g.bench_function("switch_window_32_frames", |b| {
        let mut sw = Switch::new("tor", SwitchConfig::new(8));
        sw.add_route(MacAddr::from_node_index(1), 1);
        let mut now = 0u64;
        b.iter(|| {
            // One window per port with ~4 frames per active port.
            let mut inputs: Vec<TokenWindow<Flit>> =
                (0..8).map(|_| TokenWindow::new(6_400)).collect();
            for w in inputs.iter_mut().take(8) {
                let mut framer = FrameFramer::new();
                for _ in 0..4 {
                    framer.enqueue(frame.clone());
                }
                let mut off = 0;
                while let Some(f) = framer.next_flit() {
                    w.push(off, f).unwrap();
                    off += 1;
                }
            }
            let mut ctx = AgentCtx::standalone(Cycle::new(now), 6_400, inputs, 8);
            sw.advance(&mut ctx);
            now += 6_400;
            ctx.into_outputs().len()
        })
    });
    g.finish();
}

/// Cache and DRAM timing models.
fn bench_mem_models(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("cache_10k_accesses", |b| {
        let mut cache = Cache::new(CacheConfig::rocket_l1());
        let mut addr = 0u64;
        b.iter(|| {
            let mut hits = 0u64;
            for _ in 0..10_000 {
                addr = addr.wrapping_mul(6364136223846793005).wrapping_add(1);
                if cache.access(addr % (1 << 20), false).hit {
                    hits += 1;
                }
            }
            hits
        })
    });
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("dram_10k_accesses", |b| {
        let mut dram = Dram::new(DramConfig::default());
        let mut addr = 0u64;
        let mut now = 0u64;
        b.iter(|| {
            for _ in 0..10_000 {
                addr = addr.wrapping_mul(6364136223846793005).wrapping_add(64);
                now = dram.access(now, addr % (1 << 24));
            }
            now
        })
    });
    g.finish();
}

/// Builds a parked cluster: `nodes` RTL blades (running `park`, i.e. an
/// idle OS spin) under top-of-rack switches of 8 ports each, plus a root
/// switch when more than one rack is needed. This is the FireSim
/// "simulation rate on an idle cluster" configuration, mixing heavy
/// (blade) and light (switch) agents in one engine.
fn parked_cluster(nodes: usize, link_latency: u64, host_threads: usize) -> Simulation {
    let mut topo = Topology::new();
    let racks = nodes.div_ceil(8);
    if racks == 1 {
        let tor = topo.add_switch("tor0");
        for n in 0..nodes {
            let s = topo.add_server(
                format!("n{n}"),
                BladeSpec::rtl_single_core(programs::park()),
            );
            topo.add_downlink(tor, s).unwrap();
        }
    } else {
        let root = topo.add_switch("root");
        for r in 0..racks {
            let tor = topo.add_switch(format!("tor{r}"));
            topo.add_downlink(root, tor).unwrap();
            for n in (r * 8)..((r + 1) * 8).min(nodes) {
                let s = topo.add_server(
                    format!("n{n}"),
                    BladeSpec::rtl_single_core(programs::park()),
                );
                topo.add_downlink(tor, s).unwrap();
            }
        }
    }
    topo.build(SimConfig {
        link_latency: Cycle::new(link_latency),
        host_threads,
        ..SimConfig::default()
    })
    .unwrap()
}

/// Engine hot-path throughput: target cycles per host second on parked
/// clusters (this is the number EXPERIMENTS.md reports as simulated MHz).
///
/// The small link latency (256 cycles) stresses the token-exchange path —
/// window allocation, channel synchronisation, and scheduling — which is
/// exactly what the engine's recycling/scheduling machinery optimises;
/// per-cycle model cost is the same either way.
fn bench_engine_throughput(c: &mut Criterion) {
    const LINK_LATENCY: u64 = 256;
    const ROUNDS_PER_ITER: u64 = 8;
    let mut g = c.benchmark_group("engine_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(LINK_LATENCY * ROUNDS_PER_ITER));
    for nodes in [8usize, 64] {
        for threads in [1usize, 2, 4, 8] {
            let mut sim = parked_cluster(nodes, LINK_LATENCY, threads);
            g.bench_function(format!("parked{nodes}/t{threads}"), |b| {
                b.iter(|| {
                    sim.run_for(Cycle::new(LINK_LATENCY * ROUNDS_PER_ITER))
                        .unwrap()
                        .cycles
                })
            });
        }
    }
    g.finish();
}

/// Engine throughput with the observability layer on: same parked
/// clusters as [`bench_engine_throughput`], but with the sharded metrics
/// registry (and per-agent profiling) enabled.
fn bench_engine_throughput_metrics(c: &mut Criterion) {
    const LINK_LATENCY: u64 = 256;
    const ROUNDS_PER_ITER: u64 = 8;
    let mut g = c.benchmark_group("engine_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(LINK_LATENCY * ROUNDS_PER_ITER));
    for nodes in [8usize, 64] {
        for threads in [1usize, 4] {
            let mut sim = parked_cluster(nodes, LINK_LATENCY, threads);
            sim.enable_metrics();
            g.bench_function(format!("parked{nodes}/t{threads}+metrics"), |b| {
                b.iter(|| {
                    sim.run_for(Cycle::new(LINK_LATENCY * ROUNDS_PER_ITER))
                        .unwrap()
                        .cycles
                })
            });
        }
    }
    g.finish();
}

/// Steady-state engine rates for a plain and an observed simulation,
/// sampled interleaved (plain burst, observed burst, repeat) so that
/// host-load drift hits both variants equally; minimum time per variant,
/// because noise only ever slows a sample down. Measuring the two in
/// separate phases instead can report ±10% phantom overhead on a busy
/// host.
fn interleaved_rates(
    plain: &mut Simulation,
    observed: &mut Simulation,
    link_latency: u64,
) -> (f64, f64) {
    const ROUNDS: u64 = 64;
    let cycles = Cycle::new(link_latency * ROUNDS);
    plain.run_for(cycles).unwrap(); // warm-up
    observed.run_for(cycles).unwrap();
    let mut best = [f64::MAX; 2];
    for _ in 0..9 {
        for (b, sim) in best.iter_mut().zip([&mut *plain, &mut *observed]) {
            let t0 = std::time::Instant::now();
            sim.run_for(cycles).unwrap();
            *b = b.min(t0.elapsed().as_secs_f64());
        }
    }
    let c = (link_latency * ROUNDS) as f64;
    (c / best[0], c / best[1])
}

/// Overhead guard (observability must be nearly free): with metrics and
/// profiling enabled the engine keeps at least 95% of its unobserved
/// throughput. The assertion only fires in measure mode — under
/// `--test` criterion runs one smoke iteration and timings are
/// meaningless.
fn bench_observability_overhead_guard(_c: &mut Criterion) {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    const LINK_LATENCY: u64 = 256;
    let mut plain = parked_cluster(8, LINK_LATENCY, 1);
    let mut observed = parked_cluster(8, LINK_LATENCY, 1);
    observed.enable_metrics();
    let (rate_plain, rate_observed) = interleaved_rates(&mut plain, &mut observed, LINK_LATENCY);
    let overhead = rate_plain / rate_observed - 1.0;
    println!(
        "observability overhead: {:+.2}% (plain {:.3} MHz, metrics {:.3} MHz)",
        overhead * 100.0,
        rate_plain / 1e6,
        rate_observed / 1e6,
    );
    assert!(
        overhead <= 0.05,
        "metrics-enabled engine is {:.1}% slower than unobserved (budget: 5%)",
        overhead * 100.0
    );
}

criterion_group!(
    benches,
    bench_isa,
    bench_blade,
    bench_switch,
    bench_mem_models,
    bench_engine_throughput,
    bench_engine_throughput_metrics,
    bench_observability_overhead_guard
);
criterion_main!(benches);
