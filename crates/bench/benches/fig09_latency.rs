//! Fig 9 regeneration bench: simulation rate vs target link latency.

use criterion::{criterion_group, criterion_main, Criterion};
use firesim_bench::experiments::fig9_latency;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09_latency");
    g.sample_size(10);
    g.bench_function("latency_2us", |b| b.iter(|| fig9_latency(&[2.0], 64_000)));
    g.finish();

    let rows = fig9_latency(&[0.05, 0.1, 0.5, 2.0], 256_000);
    println!("\nFig 9 rows (latency_us, measured MHz, modeled-EC2 MHz):");
    for r in &rows {
        println!(
            "  {:>6.2} {:>8.3} {:>8.3}",
            r.link_latency_us, r.sim_rate_mhz, r.modeled_ec2_mhz
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
