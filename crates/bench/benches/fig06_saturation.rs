//! Fig 6 regeneration bench: multi-node bandwidth saturation.

use criterion::{criterion_group, criterion_main, Criterion};
use firesim_bench::experiments::fig6_saturation;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig06_saturation");
    g.sample_size(10);
    g.bench_function("senders_100g_short", |b| {
        b.iter(|| fig6_saturation(&[100.0], 10, 40))
    });
    g.finish();

    let series = fig6_saturation(&[1.0, 10.0, 40.0, 100.0], 25, 100);
    println!("\nFig 6 series (sender Gbit/s -> steady aggregate Gbit/s):");
    for s in &series {
        println!("  {:>5.0} -> {:>6.1}", s.sender_gbps, s.steady_gbps);
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
