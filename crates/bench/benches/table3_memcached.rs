//! Table III regeneration bench: datacenter-wide memcached.

use criterion::{criterion_group, criterion_main, Criterion};
use firesim_bench::experiments::table3_memcached;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_memcached");
    g.sample_size(10);
    g.bench_function("scaled_down", |b| b.iter(|| table3_memcached(16, 40)));
    g.finish();

    let rows = table3_memcached(8, 150);
    println!("\nTable III rows (config, p50_us, p95_us, aggregate QPS):");
    for r in &rows {
        println!(
            "  {:>20} {:>8.2} {:>8.2} {:>12.0}",
            r.config, r.p50_us, r.p95_us, r.aggregate_qps
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
