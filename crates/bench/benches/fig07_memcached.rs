//! Fig 7 regeneration bench: memcached thread imbalance.

use criterion::{criterion_group, criterion_main, Criterion};
use firesim_bench::experiments::fig7_memcached;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig07_memcached");
    g.sample_size(10);
    g.bench_function("one_point_250k", |b| {
        b.iter(|| fig7_memcached(&[250_000.0], 100))
    });
    g.finish();

    let rows = fig7_memcached(&[250_000.0, 350_000.0], 300);
    println!("\nFig 7 rows (case, qps, p50_us, p95_us):");
    for r in &rows {
        println!(
            "  {:>18} {:>8.0} {:>7.1} {:>7.1}",
            r.case, r.target_qps, r.p50_us, r.p95_us
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
