//! Fig 11 regeneration bench: PFA vs software paging.

use criterion::{criterion_group, criterion_main, Criterion};
use firesim_bench::experiments::fig11_pfa;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_pfa");
    g.sample_size(10);
    g.bench_function("genome_small", |b| b.iter(|| fig11_pfa(128, 800, &[0.25])));
    g.finish();

    let rows = fig11_pfa(1_024, 8_000, &[0.125, 0.5]);
    println!("\nFig 11 rows (workload, mode, local, normalized runtime):");
    for r in &rows {
        println!(
            "  {:>7} {:>9} {:>6.3} {:>7.3}",
            r.workload, r.mode, r.local_fraction, r.normalized_runtime
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
