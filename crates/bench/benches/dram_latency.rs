//! Event-queue DRAM refresh throughput: host cost of the lazily-
//! materialised refresh model vs the per-deadline-scan reference
//! (`DramConfig::reference_model`).
//!
//! Two access patterns bracket the design space:
//!
//! * **sparse** — long idle gaps between requests (tens of tREFI), the
//!   shape `advance_to` sees at window boundaries on quiet blades. The
//!   reference walks every elapsed refresh deadline into every bank; the
//!   event model collapses them in closed form, O(1) per bank touch.
//! * **dense** — back-to-back requests where almost no deadline passes
//!   unobserved, so both models do essentially the same work (ratio ~1;
//!   this guards against the event model *regressing* the hot path).
//!
//! Both models produce bit-identical latencies, stats, and snapshots
//! (see `tests/dram_equiv.rs`); this benchmark only measures host cost.
//!
//! Output is a JSON object on stdout (after the human-readable lines).
//! Flags (after `cargo bench -p firesim-bench --bench dram_latency -- `):
//!
//! * `--quick` — fewer ops and reps, for CI smoke runs;
//! * `--check <baseline.json>` — exit nonzero if the sparse
//!   event/reference speedup falls below 80% of the committed
//!   baseline's, or below the 2x absolute floor
//!   (`event_queue_wins_when_idle`). Both are same-run ratios, which
//!   survive host-machine variation; absolute ops/sec do not.

use std::time::Instant;

use firesim_uarch::{Dram, DramConfig};

/// Splitmix-style generator, seed-stable across platforms.
struct Rng {
    s: u64,
}

impl Rng {
    fn new(seed: u64) -> Self {
        Rng {
            s: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next(&mut self) -> u64 {
        let mut z = self.s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.s = self.s.wrapping_add(1);
        z ^ (z >> 31)
    }
}

/// One request stream: `(now, addr)` pairs with the given inter-request
/// gap expressed in cycles.
fn stream(ops: usize, gap: u64, seed: u64) -> Vec<(u64, u64)> {
    let mut rng = Rng::new(seed);
    let mut now = 0u64;
    (0..ops)
        .map(|_| {
            now += 1 + rng.next() % (2 * gap).max(2);
            (now, rng.next() % (1 << 24))
        })
        .collect()
}

/// Runs one full stream through a fresh model, returning requests/sec.
fn run_model(reference: bool, ops: &[(u64, u64)]) -> f64 {
    let mut dram = Dram::new(DramConfig {
        reference_model: reference,
        ..DramConfig::default()
    });
    let t0 = Instant::now();
    let mut acc = 0u64;
    for &(now, addr) in ops {
        acc = acc.wrapping_add(dram.access(now, addr));
    }
    std::hint::black_box(acc);
    ops.len() as f64 / t0.elapsed().as_secs_f64()
}

/// Interleaved best-of-`reps` requests/sec for reference vs event model
/// on one stream. Alternating bursts mean host drift hits both equally.
fn rates(ops: &[(u64, u64)], reps: usize) -> (f64, f64) {
    run_model(true, ops); // warm-up
    run_model(false, ops);
    let mut best = [0f64; 2];
    for _ in 0..reps {
        best[0] = best[0].max(run_model(true, ops));
        best[1] = best[1].max(run_model(false, ops));
    }
    (best[0], best[1])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (ops, reps) = if quick { (20_000, 3) } else { (200_000, 9) };
    let t_refi = DramConfig::default().t_refi;

    // Sparse: mean gap of 64 tREFI — the reference scans ~64 deadlines
    // times 8 banks per request; the event model does one closed form.
    let sparse = stream(ops, 64 * t_refi, 11);
    let (sparse_ref, sparse_evt) = rates(&sparse, reps);
    let sparse_speedup = sparse_evt / sparse_ref;

    // Dense: mean gap of 32 cycles — refresh deadlines are rare relative
    // to requests, so the two models run the same code shape.
    let dense = stream(ops, 32, 12);
    let (dense_ref, dense_evt) = rates(&dense, reps);
    let dense_speedup = dense_evt / dense_ref;

    println!(
        "sparse: reference {:.2} Mreq/s, event {:.2} Mreq/s, speedup {:.2}x",
        sparse_ref / 1e6,
        sparse_evt / 1e6,
        sparse_speedup
    );
    println!(
        "dense:  reference {:.2} Mreq/s, event {:.2} Mreq/s, speedup {:.2}x",
        dense_ref / 1e6,
        dense_evt / 1e6,
        dense_speedup
    );

    let mut obj = std::collections::BTreeMap::new();
    for (k, v) in [
        ("sparse_reference_reqs_per_sec", sparse_ref),
        ("sparse_event_reqs_per_sec", sparse_evt),
        ("sparse_speedup", sparse_speedup),
        ("dense_reference_reqs_per_sec", dense_ref),
        ("dense_event_reqs_per_sec", dense_evt),
        ("dense_speedup", dense_speedup),
    ] {
        obj.insert(k.to_owned(), serde_json::Value::from(v));
    }
    obj.insert("quick".to_owned(), serde_json::Value::from(quick));
    println!("{}", serde_json::Value::Object(obj).to_string_compact());

    if let Some(path) = check {
        // `cargo bench` sets the package dir as cwd; accept repo-root-
        // relative baseline paths too.
        let mut path = std::path::PathBuf::from(path);
        if !path.exists() {
            let from_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(&path);
            if from_root.exists() {
                path = from_root;
            }
        }
        let baseline =
            serde_json::from_str(&std::fs::read_to_string(&path).expect("baseline readable"))
                .expect("baseline parses");
        let base_speedup = baseline
            .get("sparse_speedup")
            .and_then(serde_json::Value::as_f64)
            .expect("baseline has sparse_speedup");
        let floor = base_speedup * 0.8;
        let mut failed = false;
        if sparse_speedup < floor {
            eprintln!(
                "FAIL: event/reference sparse speedup {sparse_speedup:.2}x is below \
                 80% of the committed baseline {base_speedup:.2}x (floor {floor:.2}x)"
            );
            failed = true;
        }
        // event_queue_wins_when_idle: skipping idle banks must be worth
        // at least 2x on the sparse shape, on any host.
        if sparse_speedup < 2.0 {
            eprintln!(
                "FAIL: event_queue_wins_when_idle — sparse speedup is only \
                 {sparse_speedup:.2}x; expected at least 2x"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check ok: sparse speedup {sparse_speedup:.2}x >= floor {floor:.2}x, \
             dense speedup {dense_speedup:.2}x"
        );
    }
}
