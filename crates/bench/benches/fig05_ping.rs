//! Fig 5 regeneration bench: ping RTT vs link latency. The benchmark
//! times one full latency point (8-node cluster, RTL blades); the row
//! values themselves are printed once at the end.

use criterion::{criterion_group, criterion_main, Criterion};
use firesim_bench::experiments::fig5_ping;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig05_ping");
    g.sample_size(10);
    g.bench_function("latency_2us_5pings", |b| b.iter(|| fig5_ping(&[2.0], 5)));
    g.finish();

    let rows = fig5_ping(&[1.0, 2.0, 4.0], 10);
    println!("\nFig 5 rows (latency_us, ideal_us, measured_us):");
    for r in &rows {
        println!(
            "  {:>5.1} {:>8.2} {:>8.2}",
            r.link_latency_us, r.ideal_rtt_us, r.measured_rtt_us
        );
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
