//! # firesim-bench
//!
//! The evaluation harness: one reproduction function per figure/table in
//! the FireSim paper (Karandikar et al., ISCA 2018), shared between the
//! `repro` binary (which prints paper-style tables and records JSON
//! results) and the Criterion benchmarks.
//!
//! | Experiment | Function | Paper result reproduced |
//! |---|---|---|
//! | Fig 5 | [`experiments::fig5_ping`] | ping RTT parallels the ideal line with a fixed software offset |
//! | §IV-B | [`experiments::iperf`] | software-stack-limited TCP-style goodput (~1.4 Gbit/s) |
//! | §IV-C | [`experiments::baremetal_bandwidth`] | bare-metal NIC driving ~line rate |
//! | Fig 6 | [`experiments::fig6_saturation`] | staggered senders saturating the root uplink |
//! | Fig 7 | [`experiments::fig7_memcached`] | thread-imbalance tail-latency blowup |
//! | Fig 8 | [`experiments::fig8_scale`] | simulation rate vs simulated cluster size, standard vs supernode |
//! | Fig 9 | [`experiments::fig9_latency`] | simulation rate vs target link latency (batch size) |
//! | Fig 10/§V-C | [`experiments::datacenter_plan`] | 1024-node topology, fleet, and cost arithmetic |
//! | Table III | [`experiments::table3_memcached`] | p50/p95/QPS across ToR/aggregation/root pairings |
//! | Fig 11 | [`experiments::fig11_pfa`] | PFA vs software paging on genome and qsort |
//! | §III-A5 | [`experiments::utilization`] | FPGA LUT utilisation, standard vs supernode |

#![warn(missing_docs)]

pub mod experiments;

/// True when `FIRESIM_FULL=1`: run experiments at full paper scale
/// (1024 nodes, long sweeps) instead of the quick default scale.
pub fn full_scale() -> bool {
    std::env::var("FIRESIM_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Host threads to use for engines (leaves a couple of cores for the OS).
pub fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(2).max(1))
        .unwrap_or(4)
}
