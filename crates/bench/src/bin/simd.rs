//! `simd` — the simulation telemetry relay daemon.
//!
//! The FireSim manager's daemon analogue for the live NDJSON run feed
//! (DESIGN §17): producers (`--stream-out tcp:...`/`unix:...` on any
//! example or `run_partitioned` parent) connect to the ingest endpoint
//! and write records; viewers (`firesim-top`, `curl`, anything that
//! speaks NDJSON) connect to the serve endpoint and receive a replay of
//! the last `--tail` records followed by the live feed. The daemon
//! validates every line against the versioned wire format and keeps
//! per-type counts, so it doubles as a stream linter.

use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use firesim_manager::StreamRecord;

const USAGE: &str = "\
simd — telemetry relay daemon for the FireSim NDJSON run feed

USAGE:
    simd [OPTIONS]

OPTIONS:
    --listen SPEC   Ingest endpoint producers connect to
                    (tcp:HOST:PORT or unix:PATH) [default: tcp:127.0.0.1:9615]
    --serve SPEC    Fan-out endpoint viewers connect to
                    (tcp:HOST:PORT or unix:PATH) [default: off]
    --tail N        Records replayed to a newly connected viewer [default: 1024]
    --log FILE      Append every valid record to FILE
    --once          Exit after the first producer disconnects (CI mode)
    --quiet         No per-connection chatter on stderr
    -h, --help      Print this help
";

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

/// A socket endpoint: the subset of stream sink specs a daemon can bind.
#[derive(Debug, Clone)]
enum Endpoint {
    Tcp(String),
    Unix(PathBuf),
}

impl Endpoint {
    fn parse(spec: &str) -> Endpoint {
        if let Some(addr) = spec.strip_prefix("tcp:") {
            Endpoint::Tcp(addr.to_owned())
        } else if let Some(path) = spec.strip_prefix("unix:") {
            Endpoint::Unix(PathBuf::from(path))
        } else {
            die(&format!(
                "endpoint `{spec}` must be tcp:HOST:PORT or unix:PATH"
            ));
        }
    }
}

#[derive(Default)]
struct Hub {
    ring: VecDeque<String>,
    tail: usize,
    viewers: Vec<Box<dyn Write + Send>>,
    counts: BTreeMap<String, u64>,
    invalid: u64,
    log: Option<std::fs::File>,
}

impl Hub {
    /// Validates, logs, buffers, and fans out one NDJSON line.
    fn publish(&mut self, line: &str) {
        match StreamRecord::parse(line) {
            Ok(rec) => {
                *self.counts.entry(rec.record_type().to_owned()).or_insert(0) += 1;
            }
            Err(e) => {
                self.invalid += 1;
                eprintln!("simd: dropping invalid record: {e}");
                return;
            }
        }
        if let Some(log) = &mut self.log {
            let _ = writeln!(log, "{line}");
        }
        if self.ring.len() == self.tail {
            self.ring.pop_front();
        }
        self.ring.push_back(line.to_owned());
        self.viewers
            .retain_mut(|v| writeln!(v, "{line}").and_then(|()| v.flush()).is_ok());
    }

    fn attach_viewer(&mut self, mut v: Box<dyn Write + Send>) {
        for line in &self.ring {
            if writeln!(v, "{line}").is_err() {
                return;
            }
        }
        if v.flush().is_ok() {
            self.viewers.push(v);
        }
    }

    fn summary(&self) -> String {
        let total: u64 = self.counts.values().sum();
        let by_type: Vec<String> = self
            .counts
            .iter()
            .map(|(t, n)| format!("{t}={n}"))
            .collect();
        format!(
            "{total} records ({}), {} invalid",
            by_type.join(" "),
            self.invalid
        )
    }
}

/// Reads NDJSON lines from one producer connection into the hub.
fn drain_producer(stream: Box<dyn Read>, hub: &Arc<Mutex<Hub>>) {
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        match line {
            Ok(line) if line.trim().is_empty() => {}
            Ok(line) => hub.lock().unwrap().publish(&line),
            Err(_) => break,
        }
    }
}

/// Accepts viewer connections forever, attaching each to the hub.
fn serve_viewers(endpoint: Endpoint, hub: Arc<Mutex<Hub>>, quiet: bool) {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let listener = std::net::TcpListener::bind(&addr)
                .unwrap_or_else(|e| die(&format!("binding tcp:{addr}: {e}")));
            if !quiet {
                eprintln!("simd: serving viewers on tcp:{addr}");
            }
            for conn in listener.incoming().flatten() {
                let _ = conn.set_nodelay(true);
                if !quiet {
                    eprintln!("simd: viewer connected");
                }
                hub.lock().unwrap().attach_viewer(Box::new(conn));
            }
        }
        Endpoint::Unix(path) => {
            let _ = std::fs::remove_file(&path);
            let listener = std::os::unix::net::UnixListener::bind(&path)
                .unwrap_or_else(|e| die(&format!("binding unix:{}: {e}", path.display())));
            if !quiet {
                eprintln!("simd: serving viewers on unix:{}", path.display());
            }
            for conn in listener.incoming().flatten() {
                if !quiet {
                    eprintln!("simd: viewer connected");
                }
                hub.lock().unwrap().attach_viewer(Box::new(conn));
            }
        }
    }
}

fn main() {
    let mut listen = "tcp:127.0.0.1:9615".to_owned();
    let mut serve: Option<String> = None;
    let mut tail = 1024usize;
    let mut log: Option<PathBuf> = None;
    let mut once = false;
    let mut quiet = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => listen = args.next().unwrap_or_else(|| die("--listen needs a SPEC")),
            "--serve" => serve = Some(args.next().unwrap_or_else(|| die("--serve needs a SPEC"))),
            "--tail" => {
                tail = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--tail needs a number"))
            }
            "--log" => {
                log = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| die("--log needs a FILE")),
                ))
            }
            "--once" => once = true,
            "--quiet" => quiet = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return;
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }

    let hub = Arc::new(Mutex::new(Hub {
        tail: tail.max(1),
        log: log.map(|path| {
            std::fs::File::create(&path)
                .unwrap_or_else(|e| die(&format!("creating {}: {e}", path.display())))
        }),
        ..Hub::default()
    }));

    if let Some(spec) = serve {
        let endpoint = Endpoint::parse(&spec);
        let hub = Arc::clone(&hub);
        std::thread::spawn(move || serve_viewers(endpoint, hub, quiet));
    }

    // Ingest loop: producers are handled one at a time in the main
    // thread (a run has one feed; concurrent producers queue at accept).
    match Endpoint::parse(&listen) {
        Endpoint::Tcp(addr) => {
            let listener = std::net::TcpListener::bind(&addr)
                .unwrap_or_else(|e| die(&format!("binding tcp:{addr}: {e}")));
            if !quiet {
                eprintln!("simd: listening for producers on tcp:{addr}");
            }
            for conn in listener.incoming().flatten() {
                if !quiet {
                    eprintln!("simd: producer connected");
                }
                drain_producer(Box::new(conn), &hub);
                if !quiet {
                    eprintln!(
                        "simd: producer disconnected — {}",
                        hub.lock().unwrap().summary()
                    );
                }
                if once {
                    break;
                }
            }
        }
        Endpoint::Unix(path) => {
            let _ = std::fs::remove_file(&path);
            let listener = std::os::unix::net::UnixListener::bind(&path)
                .unwrap_or_else(|e| die(&format!("binding unix:{}: {e}", path.display())));
            if !quiet {
                eprintln!("simd: listening for producers on unix:{}", path.display());
            }
            for conn in listener.incoming().flatten() {
                if !quiet {
                    eprintln!("simd: producer connected");
                }
                drain_producer(Box::new(conn), &hub);
                if !quiet {
                    eprintln!(
                        "simd: producer disconnected — {}",
                        hub.lock().unwrap().summary()
                    );
                }
                if once {
                    break;
                }
            }
        }
    }
    println!("{}", hub.lock().unwrap().summary());
}
