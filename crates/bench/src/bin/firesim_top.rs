//! `firesim-top` — a terminal dashboard for the live NDJSON run feed.
//!
//! Consumes the versioned wire format of DESIGN §17 from stdin, a file,
//! or a Unix/TCP socket (e.g. the `simd` daemon's serve endpoint) and
//! renders sim-rate, per-agent load spread, link/switch health, and the
//! fault/recovery event timeline live. `--once` renders a single final
//! frame after the stream ends (CI- and pipe-friendly); `--normalize`
//! skips rendering entirely and re-emits the stream with host-dependent
//! fields zeroed — the golden-fixture transform.

use std::io::{BufRead, BufReader, Read};
use std::path::PathBuf;

use firesim_manager::stream::{
    normalize_line, EventRecord, IntervalRecord, RunEndRecord, RunStartRecord, StreamRecord,
};

const USAGE: &str = "\
firesim-top — live dashboard for the FireSim NDJSON run feed

USAGE:
    firesim-top [OPTIONS]

OPTIONS:
    --from SPEC     Stream source: '-' for stdin, tcp:HOST:PORT or
                    unix:PATH to connect, anything else a file [default: -]
    --once          Consume the whole stream, render one final frame, exit
    --normalize     Re-emit the stream on stdout with host-dependent
                    fields (wall_ns, host_ns) zeroed; no dashboard
    -h, --help      Print this help
";

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn open_source(spec: &str) -> Box<dyn Read> {
    if spec == "-" {
        Box::new(std::io::stdin())
    } else if let Some(addr) = spec.strip_prefix("tcp:") {
        Box::new(
            std::net::TcpStream::connect(addr)
                .unwrap_or_else(|e| die(&format!("connecting to tcp:{addr}: {e}"))),
        )
    } else if let Some(path) = spec.strip_prefix("unix:") {
        Box::new(
            std::os::unix::net::UnixStream::connect(path)
                .unwrap_or_else(|e| die(&format!("connecting to unix:{path}: {e}"))),
        )
    } else {
        let path = PathBuf::from(spec);
        Box::new(
            std::fs::File::open(&path)
                .unwrap_or_else(|e| die(&format!("opening {}: {e}", path.display()))),
        )
    }
}

/// Everything the dashboard knows about the run so far.
#[derive(Default)]
struct Dash {
    start: Option<RunStartRecord>,
    last: Option<IntervalRecord>,
    /// Cumulative per-agent (cycles, retired, host_ns), stream order.
    totals: Vec<(String, u64, u64, u64)>,
    events: Vec<EventRecord>,
    end: Option<RunEndRecord>,
}

impl Dash {
    fn absorb(&mut self, rec: StreamRecord) {
        match rec {
            StreamRecord::RunStart(r) => self.start = Some(r),
            StreamRecord::Interval(r) => {
                for a in &r.agents {
                    match self.totals.iter_mut().find(|(n, ..)| n == &a.name) {
                        Some(t) => {
                            t.1 += a.d_cycles;
                            t.2 += a.d_retired;
                            t.3 += a.host_ns;
                        }
                        None => {
                            self.totals
                                .push((a.name.clone(), a.d_cycles, a.d_retired, a.host_ns))
                        }
                    }
                }
                self.last = Some(r);
            }
            StreamRecord::Event(r) => self.events.push(r),
            StreamRecord::RunEnd(r) => self.end = Some(r),
        }
    }

    fn render(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, line: String| {
            out.push_str(&line);
            out.push('\n');
        };

        if let Some(s) = &self.start {
            let target = s.target_cycles.max(1);
            let cycle = self.last.as_ref().map_or(0, |i| i.cycle);
            let pct = (cycle.min(target) * 100) / target;
            push(
                &mut out,
                format!(
                    "run {spec}  {workers}w{transport}  cycle {cycle}/{target} ({pct}%)  {bar}",
                    spec = s.spec,
                    workers = s.workers,
                    transport = s
                        .transport
                        .as_deref()
                        .map(|t| format!(" over {t}"))
                        .unwrap_or_default(),
                    bar = hbar(pct, 100, 24),
                ),
            );
        }
        if let Some(i) = &self.last {
            let rate = if i.wall_ns > 0 {
                format!(
                    "{:.2} MHz sim-rate",
                    i.d_cycles as f64 * 1e3 / i.wall_ns as f64
                )
            } else {
                "rate n/a".to_owned()
            };
            push(
                &mut out,
                format!("interval #{}: +{} cycles, {rate}", i.seq, i.d_cycles),
            );

            // Per-agent load spread: host-ns share is where the host
            // time actually went; retired/wall is live MIPS.
            let host_total: u64 = i.agents.iter().map(|a| a.host_ns).sum();
            push(&mut out, "  agent              load  mips".to_owned());
            for a in &i.agents {
                let mips = if i.wall_ns > 0 {
                    format!("{:.1}", a.d_retired as f64 * 1e3 / i.wall_ns as f64)
                } else {
                    "-".to_owned()
                };
                push(
                    &mut out,
                    format!(
                        "  {:<18} {} {mips}",
                        a.name,
                        hbar(a.host_ns, host_total.max(1), 10),
                    ),
                );
            }
            let tokens: u64 = i.links.iter().map(|l| l.tokens).sum();
            push(
                &mut out,
                format!(
                    "  links: {} carrying {tokens} tokens in flight",
                    i.links.len()
                ),
            );
            for s in &i.switches {
                push(
                    &mut out,
                    format!(
                        "  switch {:<12} highwater {}B  +{} fwd  +{} drops",
                        s.name, s.highwater, s.d_forwarded, s.d_drops
                    ),
                );
            }
        }
        if !self.events.is_empty() {
            push(&mut out, "recent events:".to_owned());
            for e in self.events.iter().rev().take(8).rev() {
                push(
                    &mut out,
                    format!("  @{:<12} {:<12} {}", e.cycle, e.kind, e.label),
                );
            }
        }
        if let Some(e) = &self.end {
            push(
                &mut out,
                format!(
                    "run ended at cycle {} after {} intervals ({})",
                    e.cycle,
                    e.intervals,
                    if e.done {
                        "all agents done"
                    } else {
                        "horizon reached"
                    }
                ),
            );
        }
        out
    }
}

/// A `##--------`-style horizontal bar of `width` cells.
fn hbar(value: u64, max: u64, width: u64) -> String {
    let filled = (value.min(max) * width) / max.max(1);
    let mut bar = String::from("[");
    for i in 0..width {
        bar.push(if i < filled { '#' } else { '-' });
    }
    bar.push(']');
    bar
}

fn main() {
    let mut from = "-".to_owned();
    let mut once = false;
    let mut normalize = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--from" => from = args.next().unwrap_or_else(|| die("--from needs a SPEC")),
            "--once" => once = true,
            "--normalize" => normalize = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                return;
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }

    let reader = BufReader::new(open_source(&from));
    let mut dash = Dash::default();
    let mut bad = 0u64;
    for line in reader.lines() {
        let line = match line {
            Ok(l) if l.trim().is_empty() => continue,
            Ok(l) => l,
            Err(_) => break,
        };
        if normalize {
            match normalize_line(&line) {
                Ok(norm) => println!("{norm}"),
                Err(e) => {
                    eprintln!("firesim-top: skipping invalid record: {e}");
                    bad += 1;
                }
            }
            continue;
        }
        match StreamRecord::parse(&line) {
            Ok(rec) => {
                let live_frame = !once && matches!(rec, StreamRecord::Interval(_));
                dash.absorb(rec);
                if live_frame {
                    // Clear screen + home, then one full frame.
                    print!("\x1b[2J\x1b[H{}", dash.render());
                    use std::io::Write as _;
                    let _ = std::io::stdout().flush();
                }
            }
            Err(e) => {
                eprintln!("firesim-top: skipping invalid record: {e}");
                bad += 1;
            }
        }
    }
    if !normalize {
        print!("{}", dash.render());
    }
    if bad > 0 {
        std::process::exit(1);
    }
}
