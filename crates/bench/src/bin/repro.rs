//! `repro` — regenerates every figure and table from the FireSim paper's
//! evaluation and records the results as JSON.
//!
//! ```text
//! repro <experiment> [...]    where experiment is one of:
//!   fig5 iperf baremetal fig6 fig7 fig8 fig9 plan table3 fig11 util all
//! ```
//!
//! Set `FIRESIM_FULL=1` for paper-scale runs (1024 nodes, full sweeps);
//! the default scale finishes in minutes. Results are appended to
//! `results/results.json`.

use firesim_bench::experiments as exp;
use firesim_bench::full_scale;
use firesim_manager::{ExperimentRecord, ResultStore};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro <fig5|iperf|baremetal|fig6|fig7|fig8|fig9|plan|table3|fig11|util|all> ...");
        std::process::exit(2);
    }
    let mut store = load_store();
    for arg in &args {
        match arg.as_str() {
            "fig5" => fig5(&mut store),
            "iperf" => iperf(&mut store),
            "baremetal" => baremetal(&mut store),
            "fig6" => fig6(&mut store),
            "fig7" => fig7(&mut store),
            "fig8" => fig8(&mut store),
            "fig9" => fig9(&mut store),
            "plan" => plan(&mut store),
            "table3" => table3(&mut store),
            "fig11" => fig11(&mut store),
            "util" => util(&mut store),
            "all" => {
                for e in [
                    "fig5",
                    "iperf",
                    "baremetal",
                    "fig6",
                    "fig7",
                    "fig8",
                    "fig9",
                    "plan",
                    "table3",
                    "fig11",
                    "util",
                ] {
                    run_one(e, &mut store);
                }
            }
            other => {
                eprintln!("unknown experiment {other:?}");
                std::process::exit(2);
            }
        }
        save_store(&store);
    }
}

fn run_one(name: &str, store: &mut ResultStore) {
    match name {
        "fig5" => fig5(store),
        "iperf" => iperf(store),
        "baremetal" => baremetal(store),
        "fig6" => fig6(store),
        "fig7" => fig7(store),
        "fig8" => fig8(store),
        "fig9" => fig9(store),
        "plan" => plan(store),
        "table3" => table3(store),
        "fig11" => fig11(store),
        "util" => util(store),
        _ => unreachable!(),
    }
}

fn load_store() -> ResultStore {
    let _ = std::fs::create_dir_all("results");
    ResultStore::load("results/results.json").unwrap_or_default()
}

fn save_store(store: &ResultStore) {
    if let Err(e) = store.save("results/results.json") {
        eprintln!("warning: could not save results: {e}");
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

fn fig5(store: &mut ResultStore) {
    header("Fig 5: ping RTT vs configured link latency (8-node cluster, 1 ToR)");
    let (lats, pings): (Vec<f64>, usize) = if full_scale() {
        (vec![0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 7.5, 10.0], 50)
    } else {
        (vec![0.5, 1.0, 2.0, 4.0], 10)
    };
    let rows = exp::fig5_ping(&lats, pings);
    let mut rec = ExperimentRecord::new("fig5");
    rec.param("pings", pings as u64);
    println!(
        "{:>12} {:>12} {:>12} {:>10}",
        "latency_us", "ideal_us", "measured_us", "offset_us"
    );
    for r in &rows {
        println!(
            "{:>12.1} {:>12.2} {:>12.2} {:>10.2}",
            r.link_latency_us,
            r.ideal_rtt_us,
            r.measured_rtt_us,
            r.offset_us()
        );
        rec.push_row([
            ("latency_us", r.link_latency_us),
            ("ideal_us", r.ideal_rtt_us),
            ("measured_us", r.measured_rtt_us),
        ]);
    }
    println!("(paper: measured parallels ideal with a constant ~34 us Linux-stack offset;");
    println!(" our bare-metal stack shows the same parallel shape with a smaller offset)");
    store.put(rec);
}

fn iperf(store: &mut ResultStore) {
    header("SecIV-B: iperf3-style single-stream bandwidth (software-stack bound)");
    let bytes = if full_scale() { 8 << 20 } else { 1 << 20 };
    let r = exp::iperf(bytes);
    println!(
        "goodput: {:.2} Gbit/s over {} bytes (paper: 1.4 Gbit/s)",
        r.gbps, r.bytes
    );
    let mut rec = ExperimentRecord::new("iperf");
    rec.push_row([("gbps", r.gbps)]);
    store.put(rec);
}

fn baremetal(store: &mut ResultStore) {
    header("SecIV-C: bare-metal node-to-node bandwidth (NIC-limited)");
    let frames = if full_scale() { 2_000 } else { 300 };
    let r = exp::baremetal_bandwidth(frames, 1486);
    println!(
        "achieved: {:.1} Gbit/s (paper: 100 Gbit/s of a 200 Gbit/s link; conclusion:",
        r.gbps
    );
    println!(" the software stack, not the NIC, limits iperf — reproduced)");
    let mut rec = ExperimentRecord::new("baremetal");
    rec.push_row([("gbps", r.gbps)]);
    store.put(rec);
}

fn fig6(store: &mut ResultStore) {
    header("Fig 6: multi-node bandwidth saturation at the root switch");
    let (stagger, tail) = if full_scale() { (100, 400) } else { (40, 150) };
    let series = exp::fig6_saturation(&[1.0, 10.0, 40.0, 100.0], stagger, tail);
    let mut rec = ExperimentRecord::new("fig6");
    for s in &series {
        println!(
            "{:>5.0} Gbit/s senders: steady aggregate {:>6.1} Gbit/s (peak bucket {:>6.1}, {} samples)",
            s.sender_gbps,
            s.steady_gbps,
            s.peak_gbps,
            s.points.len()
        );
        rec.push_row([
            ("sender_gbps", s.sender_gbps),
            ("steady_gbps", s.steady_gbps),
            ("peak_gbps", s.peak_gbps),
        ]);
    }
    println!("(paper: 1/10 GbE senders max at 8/80 Gbit/s; 40/100 GbE saturate the");
    println!(" 200 Gbit/s uplink after 5 and 2 senders respectively)");
    store.put(rec);
}

fn fig7(store: &mut ResultStore) {
    header("Fig 7: memcached thread imbalance (1 server x 4 cores, 7 mutilate nodes)");
    let (qps, reqs): (Vec<f64>, u64) = if full_scale() {
        (
            vec![
                50_000.0, 150_000.0, 250_000.0, 350_000.0, 450_000.0, 550_000.0,
            ],
            2_000,
        )
    } else {
        (vec![100_000.0, 250_000.0, 350_000.0], 400)
    };
    let rows = exp::fig7_memcached(&qps, reqs);
    let mut rec = ExperimentRecord::new("fig7");
    println!(
        "{:>18} {:>10} {:>10} {:>9} {:>9}",
        "case", "target_qps", "achieved", "p50_us", "p95_us"
    );
    for r in &rows {
        println!(
            "{:>18} {:>10.0} {:>10.0} {:>9.1} {:>9.1}",
            r.case, r.target_qps, r.achieved_qps, r.p50_us, r.p95_us
        );
        rec.push_row([
            ("case", serde_json::json!(r.case)),
            ("target_qps", serde_json::json!(r.target_qps)),
            ("achieved_qps", serde_json::json!(r.achieved_qps)),
            ("p50_us", serde_json::json!(r.p50_us)),
            ("p95_us", serde_json::json!(r.p95_us)),
        ]);
    }
    println!("(paper: the 5th thread inflates p95 while p50 is untouched; pinning");
    println!(" smooths the mid-load p95 of the 4-thread case)");
    store.put(rec);
}

fn fig8(store: &mut ResultStore) {
    header("Fig 8: simulation rate vs simulated cluster size");
    let nodes: Vec<usize> = if full_scale() {
        vec![4, 16, 64, 256, 1024]
    } else {
        vec![4, 16, 64]
    };
    let cycles = if full_scale() { 128_000 } else { 64_000 };
    let rows = exp::fig8_scale(&nodes, cycles);
    let mut rec = ExperimentRecord::new("fig8");
    println!("{:>8} {:>12} {:>14}", "nodes", "mapping", "sim_rate_MHz");
    for r in &rows {
        println!(
            "{:>8} {:>12} {:>14.3}",
            r.nodes,
            if r.supernode { "supernode" } else { "standard" },
            r.sim_rate_mhz
        );
        rec.push_row([
            ("nodes", serde_json::json!(r.nodes)),
            ("supernode", serde_json::json!(r.supernode)),
            ("sim_rate_mhz", serde_json::json!(r.sim_rate_mhz)),
        ]);
    }
    println!("(paper: rate decreases with scale; supernode packing sustains higher");
    println!(" rates at large node counts)");
    store.put(rec);
}

fn fig9(store: &mut ResultStore) {
    header("Fig 9: simulation rate vs target link latency (token batch size)");
    // The paper sweeps sub-microsecond to microsecond latencies; batching
    // dominates at the small end.
    let lats: Vec<f64> = if full_scale() {
        vec![0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 4.0]
    } else {
        vec![0.05, 0.1, 0.5, 2.0]
    };
    let cycles = if full_scale() { 1_024_000 } else { 256_000 };
    let rows = exp::fig9_latency(&lats, cycles);
    let mut rec = ExperimentRecord::new("fig9");
    println!(
        "{:>12} {:>16} {:>16}",
        "latency_us", "measured_MHz", "modeled_EC2_MHz"
    );
    for r in &rows {
        println!(
            "{:>12.2} {:>16.3} {:>16.3}",
            r.link_latency_us, r.sim_rate_mhz, r.modeled_ec2_mhz
        );
        rec.push_row([
            ("latency_us", serde_json::json!(r.link_latency_us)),
            ("sim_rate_mhz", serde_json::json!(r.sim_rate_mhz)),
            ("modeled_ec2_mhz", serde_json::json!(r.modeled_ec2_mhz)),
        ]);
    }
    println!("(paper: performance improves as the batch size — the link latency — grows;");
    println!(" the modeled-EC2 column reproduces that mechanism, while our in-process");
    println!(" transport is fast enough that the measured rate stays nearly flat)");
    store.put(rec);
}

fn plan(store: &mut ResultStore) {
    header("Fig 10 / SecV-C: the 1024-node datacenter and its cost");
    let plan = exp::datacenter_plan();
    println!("{plan}");
    println!("(paper: 32 f1.16xlarge + 5 m4.16xlarge; ~$100/hr spot, ~$440/hr");
    println!(" on-demand, ~$12.8M of FPGAs)");
    let mut rec = ExperimentRecord::new("plan");
    rec.push_row([
        ("f1_16xlarge", serde_json::json!(plan.f1_16xlarge)),
        ("m4_16xlarge", serde_json::json!(plan.m4_16xlarge)),
        ("spot_per_hour", serde_json::json!(plan.spot_per_hour)),
        (
            "ondemand_per_hour",
            serde_json::json!(plan.ondemand_per_hour),
        ),
        ("fpga_value", serde_json::json!(plan.fpga_value)),
    ]);
    store.put(rec);
}

fn table3(store: &mut ResultStore) {
    header("Table III: memcached across the datacenter (half servers, half loadgens)");
    let (scale, reqs) = if full_scale() { (1, 1_000) } else { (8, 150) };
    let rows = exp::table3_memcached(scale, reqs);
    let mut rec = ExperimentRecord::new("table3");
    rec.param("scale_divisor", scale as u64);
    println!(
        "{:>20} {:>10} {:>10} {:>16}",
        "config", "p50_us", "p95_us", "aggregate_QPS"
    );
    for r in &rows {
        println!(
            "{:>20} {:>10.2} {:>10.2} {:>16.1}",
            r.config, r.p50_us, r.p95_us, r.aggregate_qps
        );
        rec.push_row([
            ("config", serde_json::json!(r.config)),
            ("p50_us", serde_json::json!(r.p50_us)),
            ("p95_us", serde_json::json!(r.p95_us)),
            ("aggregate_qps", serde_json::json!(r.aggregate_qps)),
        ]);
    }
    println!("(paper: p50 rises ~8 us per extra switch level — 4 extra 2 us link");
    println!(" crossings — while p95 is noise-dominated and QPS dips slightly)");
    store.put(rec);
}

fn fig11(store: &mut ResultStore) {
    header("Fig 11: page-fault accelerator vs software paging");
    let (pages, accesses, fracs): (u64, u64, Vec<f64>) = if full_scale() {
        (16_384, 120_000, vec![0.0625, 0.125, 0.25, 0.5, 0.75])
    } else {
        (1_024, 8_000, vec![0.125, 0.25, 0.5])
    };
    let rows = exp::fig11_pfa(pages, accesses, &fracs);
    let mut rec = ExperimentRecord::new("fig11");
    rec.param("working_set_pages", pages);
    println!(
        "{:>8} {:>9} {:>8} {:>12} {:>9} {:>14}",
        "workload", "mode", "local", "norm_runtime", "faults", "metadata_cyc"
    );
    for r in &rows {
        println!(
            "{:>8} {:>9} {:>8.3} {:>12.3} {:>9} {:>14}",
            r.workload, r.mode, r.local_fraction, r.normalized_runtime, r.faults, r.metadata_cycles
        );
        rec.push_row([
            ("workload", serde_json::json!(r.workload)),
            ("mode", serde_json::json!(r.mode)),
            ("local_fraction", serde_json::json!(r.local_fraction)),
            (
                "normalized_runtime",
                serde_json::json!(r.normalized_runtime),
            ),
            ("faults", serde_json::json!(r.faults)),
            ("metadata_cycles", serde_json::json!(r.metadata_cycles)),
        ]);
    }
    println!("(paper: PFA up to 1.4x faster end-to-end, 2.5x less metadata time;");
    println!(" genome suffers at small local memory, qsort barely notices)");
    store.put(rec);
}

fn util(store: &mut ResultStore) {
    header("SecIII-A5: FPGA utilisation, standard vs supernode");
    let rows = exp::utilization();
    let mut rec = ExperimentRecord::new("utilization");
    for (blades, blade_pct, total_pct) in &rows {
        println!(
            "{} blade(s)/FPGA: blade RTL {:.1}% LUTs, total {:.1}% LUTs",
            blades, blade_pct, total_pct
        );
        rec.push_row([
            ("blades", serde_json::json!(blades)),
            ("blade_luts_pct", serde_json::json!(blade_pct)),
            ("total_luts_pct", serde_json::json!(total_pct)),
        ]);
    }
    println!("(paper: 14.4%/32.6% standard; 57.7%/76% supernode)");
    store.put(rec);
}
