//! Simulation-performance experiments: Fig 8 (rate vs scale), Fig 9
//! (rate vs link latency), the §V-C datacenter plan, and the §III-A5
//! FPGA utilisation numbers.

use firesim_blade::programs;
use firesim_core::{Cycle, SimResult};
use firesim_manager::{
    run_partitioned, BladeSpec, PartitionConfig, SimConfig, Simulation, Topology, TransportChoice,
};
use firesim_platform::{DeploymentPlan, FpgaModel, Transport, TransportKind};

use super::CLOCK;

/// One point of Fig 8.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Row {
    /// Simulated nodes.
    pub nodes: usize,
    /// Supernode packing?
    pub supernode: bool,
    /// Measured simulation rate in target-MHz.
    pub sim_rate_mhz: f64,
}

/// Builds the paper's idle-boot cluster: `nodes` single-core RTL blades
/// that boot, do a little work, and power down, under ToR switches of up
/// to 32 nodes with a root switch above when needed.
fn boot_topology(nodes: usize, program: &programs::Program) -> Topology {
    let mut topo = Topology::new();
    let tor_count = nodes.div_ceil(32);
    let tors: Vec<_> = (0..tor_count)
        .map(|i| topo.add_switch(format!("tor{i}")))
        .collect();
    if tor_count > 1 {
        let root = topo.add_switch("root");
        for &t in &tors {
            topo.add_downlink(root, t).unwrap();
        }
    }
    for i in 0..nodes {
        let n = topo.add_server(
            format!("node{i}"),
            BladeSpec::rtl_single_core(program.clone()),
        );
        topo.add_downlink(tors[i / 32], n).unwrap();
    }
    topo
}

fn boot_cluster(
    nodes: usize,
    supernode: bool,
    link_latency: Cycle,
    program: &programs::Program,
) -> Simulation {
    boot_topology(nodes, program)
        .build(SimConfig {
            link_latency,
            supernode,
            host_threads: crate::host_threads(),
            ..SimConfig::default()
        })
        .expect("valid topology")
}

/// [`firesim_manager::BuildFn`] for the Fig 8 boot cluster: `spec` is
/// `"nodes=N"` (the standard mapping, 6400-cycle links). Shared by
/// [`fig8_scale_distributed`]'s parent and its worker processes so every
/// shard deploys the same target.
pub fn build_fig8_cluster(spec: &str) -> SimResult<(Topology, SimConfig)> {
    let nodes = spec
        .strip_prefix("nodes=")
        .and_then(|n| n.parse::<usize>().ok())
        .ok_or_else(|| firesim_core::SimError::topology(format!("bad fig8 spec {spec:?}")))?;
    let program = programs::boot_poweroff(1 << 40);
    let topo = boot_topology(nodes, &program);
    let config = SimConfig {
        link_latency: Cycle::new(6_400),
        host_threads: crate::host_threads(),
        ..SimConfig::default()
    };
    Ok((topo, config))
}

/// One point of the distributed Fig 8 variant.
#[derive(Debug, Clone, Copy)]
pub struct Fig8DistRow {
    /// Simulated nodes.
    pub nodes: usize,
    /// Worker process count.
    pub workers: usize,
    /// Measured fleet simulation rate in target-MHz.
    pub sim_rate_mhz: f64,
    /// [`Transport::sim_rate_bound_hz`] for the matching platform
    /// transport, in target-MHz: the rate the host transport alone would
    /// cap a hardware deployment at. A software fleet moving real token
    /// batches between processes must land *below* this bound.
    pub bound_mhz: f64,
    /// Order-independent digest over every agent's final checkpoint;
    /// equal for all worker counts of the same `(nodes, cycles)`.
    pub combined_digest: u64,
}

/// Fig 8, multi-process mode: the same boot cluster partitioned across
/// worker processes connected by the chosen [`TransportChoice`], with the
/// measured rate sanity-checked against [`Transport::sim_rate_bound_hz`]
/// for the analogous platform transport (shared memory or TCP).
///
/// # Errors
///
/// Propagates the fleet's [`firesim_manager::FailureReport`] error if any
/// worker fails.
pub fn fig8_scale_distributed(
    nodes: usize,
    worker_counts: &[usize],
    transport: TransportChoice,
    target_cycles: u64,
) -> SimResult<Vec<Fig8DistRow>> {
    let platform_kind = match transport {
        TransportChoice::Shm => TransportKind::SharedMemory,
        TransportChoice::Tcp | TransportChoice::Unix => TransportKind::Tcp,
    };
    let bound_hz = Transport::of(platform_kind).sim_rate_bound_hz(6_400, nodes as u64);
    let mut rows = Vec::new();
    for &workers in worker_counts {
        let mut cfg =
            PartitionConfig::new(workers, Cycle::new(target_cycles), format!("nodes={nodes}"));
        cfg.transport = transport;
        let run = run_partitioned(build_fig8_cluster, &cfg).map_err(|report| report.error)?;
        rows.push(Fig8DistRow {
            nodes,
            workers,
            sim_rate_mhz: run.cycles.as_u64() as f64 / 1e6 / run.wall.as_secs_f64().max(1e-9),
            bound_mhz: bound_hz / 1e6,
            combined_digest: run.combined_digest,
        });
    }
    Ok(rows)
}

/// Fig 8: measures the achieved simulation rate (target MHz) while all
/// token channels stay fully exercised (the target is "Linux boot then
/// power off" — no network traffic, but every empty token still moves,
/// exactly as the paper measures). Standard and supernode host mappings
/// are both measured.
pub fn fig8_scale(node_counts: &[usize], target_cycles: u64) -> Vec<Fig8Row> {
    let mut rows = Vec::new();
    for &supernode in &[false, true] {
        for &nodes in node_counts {
            // Enough boot work to keep every core busy through the
            // measurement window, as in the paper's Linux-boot runs.
            let program = programs::boot_poweroff(1 << 40);
            let mut sim = boot_cluster(nodes, supernode, Cycle::new(6_400), &program);
            // Warm-up window, then the measured run.
            sim.run_for(Cycle::new(6_400)).expect("warmup");
            let summary = sim.run_for(Cycle::new(target_cycles)).expect("runs");
            rows.push(Fig8Row {
                nodes,
                supernode,
                sim_rate_mhz: summary.sim_rate_mhz(),
            });
        }
    }
    rows
}

/// One point of Fig 9.
#[derive(Debug, Clone, Copy)]
pub struct Fig9Row {
    /// Target link latency in microseconds (= token batch size).
    pub link_latency_us: f64,
    /// Measured simulation rate of our in-process simulator, target-MHz.
    pub sim_rate_mhz: f64,
    /// The same target mapped onto the paper's EC2 F1 host platform
    /// (FPGA execution + PCIe token transport), via the platform model.
    pub modeled_ec2_mhz: f64,
}

/// Single-node FPGA simulation rate assumed by the EC2 model (the paper
/// reports "10s to 100s of MHz" for unthrottled FAME-1 blades).
const FPGA_INTRINSIC_MHZ: f64 = 90.0;

/// Fig 9: simulation rate of an 8-node cluster as a function of the
/// target link latency. Since FireSim batches one link-latency of tokens
/// per transfer, longer links amortise per-transfer latency.
///
/// Two curves are produced. `sim_rate_mhz` is the measured rate of this
/// software simulator, whose "PCIe" is a shared-memory channel — so fast
/// relative to software blade models that the batching effect is mostly
/// invisible (documented in EXPERIMENTS.md). `modeled_ec2_mhz` applies
/// the paper's host-platform parameters (FPGA-speed blades + real PCIe
/// batch transfers) through [`firesim_platform::Transport`], reproducing
/// the paper's rising curve mechanistically.
pub fn fig9_latency(latencies_us: &[f64], target_cycles: u64) -> Vec<Fig9Row> {
    let pcie = Transport::of(TransportKind::Pcie);
    let mut rows = Vec::new();
    for &lat_us in latencies_us {
        let latency = CLOCK.cycles_from_nanos((lat_us * 1000.0) as u64);
        let program = programs::park();
        let mut sim = boot_cluster(8, false, latency, &program);
        sim.run_for(latency).expect("warmup");
        let summary = sim.run_for(Cycle::new(target_cycles)).expect("runs");
        // EC2 model: FPGA cycle time in series with the amortised PCIe
        // batch transfer (one batch in, one out, per link latency).
        let transport_hz = pcie.sim_rate_bound_hz(latency.as_u64(), 8);
        let modeled_hz = 1.0 / (1.0 / (FPGA_INTRINSIC_MHZ * 1e6) + 1.0 / transport_hz);
        rows.push(Fig9Row {
            link_latency_us: lat_us,
            sim_rate_mhz: summary.sim_rate_mhz(),
            modeled_ec2_mhz: modeled_hz / 1e6,
        });
    }
    rows
}

/// §V-C / Fig 10: builds the full 1024-node datacenter topology through
/// the manager (32 nodes per ToR, 32 ToRs, 4 aggregation switches, one
/// root) and returns its deployment plan — fleet and cost.
pub fn datacenter_plan() -> DeploymentPlan {
    let mut topo = Topology::new();
    let root = topo.add_switch("root");
    for a in 0..4 {
        let agg = topo.add_switch(format!("agg{a}"));
        topo.add_downlink(root, agg).unwrap();
        for t in 0..8 {
            let tor = topo.add_switch(format!("tor{a}_{t}"));
            topo.add_downlink(agg, tor).unwrap();
            for n in 0..32 {
                let node = topo.add_server(
                    format!("node{a}_{t}_{n}"),
                    BladeSpec::rtl_quad_core(programs::boot_poweroff(1)),
                );
                topo.add_downlink(tor, node).unwrap();
            }
        }
    }
    assert_eq!(topo.server_count(), 1024);
    let sim = topo
        .build(SimConfig {
            supernode: true,
            ..SimConfig::default()
        })
        .expect("valid topology");
    sim.plan().clone()
}

/// §III-A5: FPGA LUT utilisation for the standard and supernode
/// configurations. Returns `(blades, blade_luts_pct, total_luts_pct)`.
pub fn utilization() -> Vec<(usize, f64, f64)> {
    let fpga = FpgaModel::default();
    [1usize, 4]
        .iter()
        .map(|&n| {
            let u = fpga.utilization(n);
            (n, u.blade_luts * 100.0, u.total_luts * 100.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_rate_decreases_with_scale() {
        let rows = fig8_scale(&[2, 16], 32_000);
        let rate = |nodes, sn| {
            rows.iter()
                .find(|r| r.nodes == nodes && r.supernode == sn)
                .unwrap()
                .sim_rate_mhz
        };
        assert!(rate(2, false) > 0.0);
        // More nodes on the same host -> lower rate.
        assert!(
            rate(16, false) < rate(2, false),
            "2 nodes {:.2} MHz vs 16 nodes {:.2} MHz",
            rate(2, false),
            rate(16, false)
        );
    }

    #[test]
    fn fig9_modeled_rate_increases_with_latency() {
        let rows = fig9_latency(&[0.05, 2.0], 64_000);
        // The EC2-platform model shows the paper's batching effect
        // deterministically; the measured in-process rate is positive but
        // nearly flat (shared-memory transport), see EXPERIMENTS.md.
        assert!(
            rows[1].modeled_ec2_mhz > 2.0 * rows[0].modeled_ec2_mhz,
            "{rows:?}"
        );
        assert!(rows.iter().all(|r| r.sim_rate_mhz > 0.0));
    }

    #[test]
    fn plan_matches_paper() {
        let plan = datacenter_plan();
        assert_eq!(plan.f1_16xlarge, 32);
        assert_eq!(plan.m4_16xlarge, 5);
        assert_eq!(plan.fpgas, 256);
    }

    #[test]
    fn utilization_matches_paper() {
        let rows = utilization();
        assert!((rows[0].2 - 32.6).abs() < 0.1); // standard total
        assert!((rows[1].1 - 57.7).abs() < 0.2); // supernode blades
        assert!((rows[1].2 - 75.8).abs() < 0.5); // supernode total ~76%
    }
}
