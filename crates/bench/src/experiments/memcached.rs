//! memcached experiments: Fig 7 (thread imbalance) and Table III
//! (1024-node datacenter latency/QPS).

use std::sync::Arc;

use parking_lot::Mutex;

use firesim_blade::model::OsConfig;
use firesim_blade::services::{KvServer, KvServerConfig, Mutilate, MutilateConfig, MutilateStats};
use firesim_core::stats::Histogram;
use firesim_core::Cycle;
use firesim_manager::{BladeSpec, SimConfig, Topology};
use firesim_net::MacAddr;

use super::{us, CLOCK};

/// The three Fig 7 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig7Case {
    /// 4 server threads on 4 cores, no pinning.
    Threads4,
    /// 5 server threads on 4 cores (imbalance).
    Threads5,
    /// 4 threads pinned one-to-a-core.
    Threads4Pinned,
}

impl Fig7Case {
    fn threads(self) -> usize {
        match self {
            Fig7Case::Threads4 | Fig7Case::Threads4Pinned => 4,
            Fig7Case::Threads5 => 5,
        }
    }

    fn pinned(self) -> bool {
        matches!(self, Fig7Case::Threads4Pinned)
    }

    /// Display label matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            Fig7Case::Threads4 => "4 threads",
            Fig7Case::Threads5 => "5 threads",
            Fig7Case::Threads4Pinned => "4 threads pinned",
        }
    }
}

/// One measured point of Fig 7.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Which configuration.
    pub case: &'static str,
    /// Offered aggregate load, queries per second.
    pub target_qps: f64,
    /// Achieved queries per second.
    pub achieved_qps: f64,
    /// Median latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
}

/// Runs one memcached service configuration under mutilate load and
/// returns merged client-side latency statistics.
/// Maps pair index -> attachment ToR, for servers and clients.
type AttachFn = Box<dyn Fn(&mut Topology, bool, usize) -> firesim_manager::SwitchId>;

#[allow(clippy::too_many_arguments)]
fn run_kv(
    server_threads: usize,
    pinned: bool,
    clients: usize,
    qps_per_client: f64,
    requests_per_client: u64,
    max_outstanding: usize,
    tree: KvTree,
    sampling: Option<firesim_manager::SamplingConfig>,
) -> (Histogram, f64) {
    let mut topo = Topology::new();
    let stats: Arc<Mutex<Vec<Arc<Mutex<MutilateStats>>>>> = Arc::new(Mutex::new(Vec::new()));

    // Build the switch layer.
    let (server_count, attach): (usize, AttachFn) = match tree {
        KvTree::SingleTor => {
            let tor = topo.add_switch("tor0");
            (1, Box::new(move |_t, _is_server, _i| tor))
        }
        KvTree::Paired {
            tors_per_agg,
            aggs,
            hops,
        } => {
            let root = topo.add_switch("root");
            let mut tors = Vec::new();
            for a in 0..aggs {
                let agg = topo.add_switch(format!("agg{a}"));
                topo.add_downlink(root, agg).unwrap();
                for t in 0..tors_per_agg {
                    let tor = topo.add_switch(format!("tor{a}_{t}"));
                    topo.add_downlink(agg, tor).unwrap();
                    tors.push(tor);
                }
            }
            let total_tors = tors.clone();
            let count = clients; // one server per client
            (
                count,
                Box::new(move |_t, is_server, i| {
                    // Pair i's server ToR and client ToR differ by `hops`.
                    let n = total_tors.len();
                    let s_tor = i % n;
                    let c_tor = match hops {
                        PairHops::SameTor => s_tor,
                        PairHops::CrossTor => {
                            // Same agg, adjacent ToR.
                            let base = s_tor - (s_tor % tors_per_agg);
                            base + ((s_tor + 1 - base) % tors_per_agg)
                        }
                        PairHops::CrossAgg => (s_tor + tors_per_agg) % n,
                    };
                    total_tors[if is_server { s_tor } else { c_tor }]
                }),
            )
        }
    };

    // Servers first (so MACs 0..server_count are servers).
    let mut server_nodes = Vec::new();
    for i in 0..server_count {
        let cfg = KvServerConfig {
            threads: server_threads,
            ..KvServerConfig::default()
        };
        let node = topo.add_server(
            format!("memcached{i}"),
            BladeSpec::model(
                OsConfig {
                    cores: 4,
                    seed: 1000 + i as u64,
                    ..OsConfig::default()
                },
                server_threads,
                pinned,
                move |mac, _| Box::new(KvServer::new(mac, cfg)),
            ),
        );
        server_nodes.push(node);
    }
    // Clients.
    let mut client_nodes = Vec::new();
    for i in 0..clients {
        let server_mac = MacAddr::from_node_index((i % server_count) as u64);
        let stats_sink = Arc::clone(&stats);
        let cfg = MutilateConfig {
            server: server_mac,
            qps: qps_per_client,
            requests: requests_per_client,
            seed: 42 + i as u64,
            max_outstanding,
            ..MutilateConfig::default()
        };
        let node = topo.add_server(
            format!("mutilate{i}"),
            BladeSpec::model(
                OsConfig {
                    cores: 4,
                    seed: 2000 + i as u64,
                    ..OsConfig::default()
                },
                1,
                true,
                move |mac, _| {
                    let m = Mutilate::new(mac, cfg);
                    stats_sink.lock().push(m.stats());
                    Box::new(m)
                },
            ),
        );
        client_nodes.push(node);
    }
    // Attach to switches.
    for (i, &node) in server_nodes.iter().enumerate() {
        let tor = attach(&mut topo, true, i);
        topo.add_downlink(tor, node).unwrap();
    }
    for (i, &node) in client_nodes.iter().enumerate() {
        let tor = attach(&mut topo, false, i);
        topo.add_downlink(tor, node).unwrap();
    }

    let mut sim = topo
        .build(SimConfig {
            host_threads: crate::host_threads(),
            sampling,
            ..SimConfig::default()
        })
        .expect("valid topology");
    // Budget: the run needs requests/qps seconds of target time.
    let seconds = requests_per_client as f64 / qps_per_client;
    let budget = (seconds * CLOCK.as_hz() as f64 * 6.0) as u64 + 2_000_000_000;
    sim.run_until_done(Cycle::new(budget)).expect("runs");

    let mut merged = Histogram::new("latency");
    let mut qps_sum = 0.0;
    for h in stats.lock().iter() {
        let s = h.lock();
        assert_eq!(
            s.received, requests_per_client,
            "client did not finish ({} of {requests_per_client})",
            s.received
        );
        merged.merge(&s.latency);
        qps_sum += s.achieved_qps(CLOCK.as_hz() as f64);
    }
    (merged, qps_sum)
}

enum KvTree {
    SingleTor,
    Paired {
        tors_per_agg: usize,
        aggs: usize,
        hops: PairHops,
    },
}

#[derive(Debug, Clone, Copy)]
enum PairHops {
    SameTor,
    CrossTor,
    CrossAgg,
}

/// Fig 7: one memcached server (4 cores) under load from seven mutilate
/// nodes through a ToR switch, swept over target QPS for the three
/// thread configurations. Expect the 5-thread p95 to blow up while p50
/// stays close to the 4-thread case, and pinning to smooth the
/// mid-load p95.
pub fn fig7_memcached(qps_points: &[f64], requests_per_client: u64) -> Vec<Fig7Row> {
    fig7_memcached_with(qps_points, requests_per_client, None)
}

/// [`fig7_memcached`] with an explicit sampled-timing configuration.
/// Fig 7's blades are OS-model nodes, which never fast-forward, so the
/// rows must be identical with sampling on or off — the invariant
/// `tests/sampling.rs` checks.
pub fn fig7_memcached_with(
    qps_points: &[f64],
    requests_per_client: u64,
    sampling: Option<firesim_manager::SamplingConfig>,
) -> Vec<Fig7Row> {
    let mut rows = Vec::new();
    for case in [
        Fig7Case::Threads4,
        Fig7Case::Threads5,
        Fig7Case::Threads4Pinned,
    ] {
        for &qps in qps_points {
            let clients = 7;
            let (mut hist, achieved) = run_kv(
                case.threads(),
                case.pinned(),
                clients,
                qps / clients as f64,
                requests_per_client,
                0,
                KvTree::SingleTor,
                sampling,
            );
            rows.push(Fig7Row {
                case: case.label(),
                target_qps: qps,
                achieved_qps: achieved,
                p50_us: us(hist.percentile(50.0).unwrap_or(0)),
                p95_us: us(hist.percentile(95.0).unwrap_or(0)),
            });
        }
    }
    rows
}

/// One row of Table III.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Pairing configuration name.
    pub config: &'static str,
    /// Median latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile latency, microseconds.
    pub p95_us: f64,
    /// Aggregate queries per second across all pairs.
    pub aggregate_qps: f64,
}

/// Table III: half the nodes run memcached servers and half run mutilate
/// load generators, paired so that every request crosses (a) only its
/// ToR switch, (b) an aggregation switch, or (c) the root switch.
///
/// `scale` divides the paper's 1024 nodes: `scale = 1` is the full
/// datacenter (32 nodes per ToR, 8 ToRs per aggregation switch, 4
/// aggregation switches); the default quick run uses `scale = 8`
/// (128 nodes).
pub fn table3_memcached(scale: usize, requests_per_client: u64) -> Vec<Table3Row> {
    let scale = scale.max(1);
    // Keep the tree shape; shrink the ToR fan-out.
    let nodes_per_tor = (32 / scale.min(8)).max(2);
    let tors_per_agg = 8;
    let aggs = 4;
    let pairs_per_tor = nodes_per_tor / 2;
    let total_pairs = pairs_per_tor * tors_per_agg * aggs;
    // ~10k requests/second per server (paper §V-C).
    let qps_per_client = 10_000.0;

    let mut rows = Vec::new();
    for (hops, name) in [
        (PairHops::SameTor, "Cross-ToR"),
        (PairHops::CrossTor, "Cross-aggregation"),
        (PairHops::CrossAgg, "Cross-datacenter"),
    ] {
        let (mut hist, qps) = run_kv(
            4,
            true,
            total_pairs,
            qps_per_client,
            requests_per_client,
            4, // mutilate connection limit: partially closed loop
            KvTree::Paired {
                tors_per_agg,
                aggs,
                hops,
            },
            None,
        );
        rows.push(Table3Row {
            config: name,
            p50_us: us(hist.percentile(50.0).unwrap_or(0)),
            p95_us: us(hist.percentile(95.0).unwrap_or(0)),
            aggregate_qps: qps,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_thread_imbalance_inflates_tail() {
        // A moderate-high-load point (~55% of server capacity), where the
        // paper's phenomenon is clean: the extra thread inflates the tail
        // but not the median, and pinning gives the lowest tail.
        let rows = fig7_memcached(&[350_000.0], 300);
        let p95 = |label: &str| {
            rows.iter()
                .find(|r| r.case == label)
                .map(|r| r.p95_us)
                .unwrap()
        };
        let p50 = |label: &str| {
            rows.iter()
                .find(|r| r.case == label)
                .map(|r| r.p50_us)
                .unwrap()
        };
        // Tail inflation with 5 threads on 4 cores. (The paper's Linux
        // shows a larger blowup because CFS timeslices are milliseconds;
        // our model's quantum is 100 us — the ordering is what matters.)
        assert!(
            p95("5 threads") > 1.05 * p95("4 threads pinned"),
            "p95: 5t={:.1} 4t-pinned={:.1}",
            p95("5 threads"),
            p95("4 threads pinned")
        );
        // Unpinned 4 threads sit between pinned and 5 threads.
        assert!(
            p95("4 threads") >= p95("4 threads pinned"),
            "p95: 4t={:.1} 4t-pinned={:.1}",
            p95("4 threads"),
            p95("4 threads pinned")
        );
        // Medians stay comparable (within 20%).
        assert!(
            p50("5 threads") < 1.2 * p50("4 threads"),
            "p50: 5t={:.1} 4t={:.1}",
            p50("5 threads"),
            p50("4 threads")
        );
    }

    #[test]
    fn table3_latency_rises_with_hops() {
        let rows = table3_memcached(16, 60);
        assert_eq!(rows.len(), 3);
        // p50 grows by roughly 4 x link latency + switching per level.
        assert!(rows[1].p50_us > rows[0].p50_us + 4.0, "{rows:?}");
        assert!(rows[2].p50_us > rows[1].p50_us + 4.0, "{rows:?}");
        // Aggregate QPS decreases modestly with distance.
        assert!(
            rows[2].aggregate_qps <= rows[0].aggregate_qps * 1.01,
            "{rows:?}"
        );
    }
}
