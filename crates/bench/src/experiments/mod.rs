//! Experiment implementations, one module per paper figure/table.

mod memcached;
mod net_validation;
mod perf;
mod pfa;

pub use memcached::{fig7_memcached, fig7_memcached_with, table3_memcached, Fig7Row, Table3Row};
pub use net_validation::{
    baremetal_bandwidth, fig5_ping, fig6_saturation, iperf, BandwidthResult, Fig5Row, Fig6Series,
};
pub use perf::{
    build_fig8_cluster, datacenter_plan, fig8_scale, fig8_scale_distributed, fig9_latency,
    utilization, Fig8DistRow, Fig8Row, Fig9Row,
};
pub use pfa::{fig11_pfa, Fig11Row};

/// The target clock every experiment assumes (paper Table I).
pub const CLOCK: firesim_core::Frequency = firesim_core::Frequency::GHZ_3_2;

/// Converts cycles to microseconds at the target clock.
pub fn us(cycles: u64) -> f64 {
    CLOCK.micros_from_cycles(firesim_core::Cycle::new(cycles))
}
