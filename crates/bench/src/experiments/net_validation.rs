//! Network validation experiments (paper §IV-A through §IV-D):
//! Fig 5 (ping latency), §IV-B (iperf), §IV-C (bare-metal bandwidth),
//! and Fig 6 (multi-node bandwidth saturation).

use firesim_blade::model::OsConfig;
use firesim_blade::programs;
use firesim_blade::services::{IperfConfig, IperfReceiver, IperfSender};
use firesim_blade::BladeConfig;
use firesim_core::Cycle;
use firesim_manager::{BladeSpec, SimConfig, Topology};
use firesim_net::MacAddr;

use super::{us, CLOCK};

/// One point of Fig 5.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Row {
    /// Configured one-way link latency, microseconds.
    pub link_latency_us: f64,
    /// Measured mean ping RTT, microseconds.
    pub measured_rtt_us: f64,
    /// The paper's ideal line: 4 x latency + 2 switch traversals.
    pub ideal_rtt_us: f64,
}

impl Fig5Row {
    /// Software overhead above ideal (the paper measures ~34 us under
    /// Linux; our bare-metal stack is leaner but likewise constant).
    pub fn offset_us(&self) -> f64 {
        self.measured_rtt_us - self.ideal_rtt_us
    }
}

/// Fig 5: boots an 8-node cluster under one ToR switch, pings between
/// two nodes at each configured link latency, and reports measured vs
/// ideal RTT. The first ping of each run is discarded (the paper drops
/// it because of ARP; ours has cold caches instead).
pub fn fig5_ping(latencies_us: &[f64], pings: usize) -> Vec<Fig5Row> {
    let mut rows = Vec::new();
    for &lat_us in latencies_us {
        let latency = CLOCK.cycles_from_nanos((lat_us * 1000.0) as u64);
        let count = pings + 1;
        let spacing = latency.as_u64() * 8 + 64_000;

        let mut topo = Topology::new();
        let tor = topo.add_switch("tor0");
        // Node 0 pings node 1; nodes 2..8 are present but power off
        // immediately (the paper's other six nodes idle in Linux).
        let sender = topo.add_server(
            "pinger",
            BladeSpec::rtl_single_core(programs::ping_sender(
                MacAddr::from_node_index(0),
                MacAddr::from_node_index(1),
                count,
                56, // standard ping payload
                spacing,
            )),
        );
        topo.add_downlink(tor, sender).unwrap();
        let responder = topo.add_server(
            "ponger",
            BladeSpec::rtl_single_core(programs::echo_responder(count)),
        );
        topo.add_downlink(tor, responder).unwrap();
        for i in 2..8 {
            let n = topo.add_server(
                format!("idle{i}"),
                BladeSpec::rtl_single_core(programs::boot_poweroff(10)),
            );
            topo.add_downlink(tor, n).unwrap();
        }

        let mut sim = topo
            .build(SimConfig {
                link_latency: latency,
                host_threads: crate::host_threads(),
                ..SimConfig::default()
            })
            .expect("valid topology");
        sim.run_until_done(Cycle::new((count as u64 + 4) * (spacing + 400_000)))
            .expect("simulation runs");

        let probe = sim.servers()[0].probe.as_ref().expect("rtl blade");
        let p = probe.lock();
        assert_eq!(p.exit_code, Some(0), "pinger did not finish");
        let rtts: Vec<u64> = (1..count)
            .map(|i| u64::from_le_bytes(p.mailbox[i * 8..i * 8 + 8].try_into().unwrap()))
            .collect();
        let mean = rtts.iter().sum::<u64>() as f64 / rtts.len() as f64;
        rows.push(Fig5Row {
            link_latency_us: lat_us,
            measured_rtt_us: us(mean as u64),
            ideal_rtt_us: us(4 * latency.as_u64() + 2 * 10),
        });
    }
    rows
}

/// A bandwidth measurement.
#[derive(Debug, Clone, Copy)]
pub struct BandwidthResult {
    /// Achieved goodput in Gbit/s (target time).
    pub gbps: f64,
    /// Bytes moved.
    pub bytes: u64,
}

/// §IV-B: iperf3-style single-stream bandwidth between two nodes under
/// one ToR switch, CPU-bound by the software-stack model. The paper
/// measured 1.4 Gbit/s on Linux/RISC-V.
pub fn iperf(total_bytes: u64) -> BandwidthResult {
    let mut topo = Topology::new();
    let tor = topo.add_switch("tor0");
    let cfg = IperfConfig {
        peer: MacAddr::from_node_index(1),
        total_bytes,
        ..IperfConfig::default()
    };
    let stats_cell: std::sync::Arc<parking_lot::Mutex<Option<_>>> =
        std::sync::Arc::new(parking_lot::Mutex::new(None));
    let stats_out = stats_cell.clone();
    let os = OsConfig {
        cores: 4,
        ..OsConfig::default()
    };
    let snd = topo.add_server(
        "iperf-c",
        BladeSpec::model(os, 1, true, move |mac, _| {
            let s = IperfSender::new(mac, cfg);
            *stats_out.lock() = Some(s.stats());
            Box::new(s)
        }),
    );
    let rcv_cfg = IperfConfig {
        peer: MacAddr::from_node_index(0),
        ..cfg
    };
    let rcv = topo.add_server(
        "iperf-s",
        BladeSpec::model(os, 1, true, move |mac, _| {
            Box::new(IperfReceiver::new(mac, rcv_cfg))
        }),
    );
    topo.add_downlinks(tor, [snd, rcv]).unwrap();

    let mut sim = topo.build(SimConfig::default()).expect("valid topology");
    sim.run_until_done(Cycle::new(200_000_000_000))
        .expect("runs");

    let stats = stats_cell.lock().take().expect("factory ran");
    let s = stats.lock();
    BandwidthResult {
        gbps: s.goodput_bps(CLOCK.as_hz() as f64) / 1e9,
        bytes: s.bytes_acked,
    }
}

/// §IV-C: the bare-metal bandwidth test — one RTL node drives Ethernet
/// frames at maximum rate directly against the NIC; the receiver verifies
/// and acknowledges. The paper measured 100 Gbit/s (half of line rate);
/// our leaner NIC pipeline sustains close to line rate, confirming the
/// same conclusion: the Linux stack, not the NIC, limits §IV-B.
pub fn baremetal_bandwidth(frames: usize, payload: usize) -> BandwidthResult {
    let mut topo = Topology::new();
    let tor = topo.add_switch("tor0");
    let frame_wire = payload + 14;
    let s = topo.add_server(
        "tx",
        BladeSpec::rtl_single_core(programs::stream_sender(
            MacAddr::from_node_index(0),
            MacAddr::from_node_index(1),
            frames,
            payload,
            0,
        )),
    );
    let r = topo.add_server(
        "rx",
        BladeSpec::rtl_single_core(programs::stream_receiver(
            MacAddr::from_node_index(1),
            MacAddr::from_node_index(0),
            (frames * frame_wire) as u64,
        )),
    );
    topo.add_downlinks(tor, [s, r]).unwrap();
    let mut sim = topo
        .build(SimConfig {
            host_threads: crate::host_threads(),
            ..SimConfig::default()
        })
        .expect("valid topology");
    sim.run_until_done(Cycle::new(4_000_000_000)).expect("runs");

    let probe = sim.servers()[1].probe.as_ref().expect("rtl");
    let p = probe.lock();
    assert_eq!(p.exit_code, Some(0), "receiver did not finish");
    let bytes = u64::from_le_bytes(p.mailbox[0..8].try_into().unwrap());
    let elapsed = u64::from_le_bytes(p.mailbox[8..16].try_into().unwrap());
    BandwidthResult {
        gbps: bytes as f64 * 8.0 / (elapsed as f64 / CLOCK.as_hz() as f64) / 1e9,
        bytes,
    }
}

/// One rate-limit case of Fig 6.
#[derive(Debug, Clone)]
pub struct Fig6Series {
    /// Nominal per-sender rate in Gbit/s (1, 10, 40, 100).
    pub sender_gbps: f64,
    /// `(target time us, aggregate bandwidth at the root switch Gbit/s)`.
    pub points: Vec<(f64, f64)>,
    /// Peak aggregate bandwidth observed in any single bucket (bursty:
    /// store-and-forward releases frames at line rate).
    pub peak_gbps: f64,
    /// Mean aggregate bandwidth over the final quarter of the run, when
    /// all eight senders are active.
    pub steady_gbps: f64,
}

/// Fig 6: 16 nodes, two ToR switches and a root switch; the eight
/// senders on ToR 0 start one after another (staggered) and stream to
/// their partners on ToR 1 through the root. NIC token-bucket rate
/// limiters set each sender's nominal bandwidth; aggregate ingress
/// bandwidth is sampled at the root switch over time.
pub fn fig6_saturation(
    sender_rates_gbps: &[f64],
    stagger_us: u64,
    tail_us: u64,
) -> Vec<Fig6Series> {
    let mut out = Vec::new();
    for &rate in sender_rates_gbps {
        // k/p from the nominal rate: flit rate fraction = rate / 204.8.
        let (k, p) = rate_to_kp(rate);
        let stagger = CLOCK.cycles_from_micros(stagger_us).as_u64();
        let total = stagger * 8 + CLOCK.cycles_from_micros(tail_us).as_u64();
        let bucket = 19_200u64; // 6 us buckets (3 windows of 6400 cycles)

        let mut topo = Topology::new();
        let root = topo.add_switch("root");
        let tor0 = topo.add_switch("tor0");
        let tor1 = topo.add_switch("tor1");
        topo.add_downlinks(root, [tor0, tor1]).unwrap();
        let mut senders = Vec::new();
        for i in 0..8u64 {
            let mut config = BladeConfig::single_core().with_dram_bytes(4 << 20);
            config.nic.rate_k = k;
            config.nic.rate_p = p;
            let prog = programs::stream_sender(
                MacAddr::from_node_index(i),
                MacAddr::from_node_index(8 + i),
                1 << 24, // effectively endless
                1486,    // 1500-byte frames on the wire
                i * stagger + 1000,
            );
            senders.push(topo.add_server(
                format!("sender{i}"),
                BladeSpec::Rtl {
                    config,
                    program: prog,
                },
            ));
        }
        let mut receivers = Vec::new();
        for i in 0..8u64 {
            receivers.push(topo.add_server(
                format!("recv{i}"),
                BladeSpec::rtl_single_core(programs::stream_receiver(
                    MacAddr::from_node_index(8 + i),
                    MacAddr::from_node_index(i),
                    u64::MAX / 2, // never finishes; we run for fixed time
                )),
            ));
        }
        topo.add_downlinks(tor0, senders).unwrap();
        topo.add_downlinks(tor1, receivers).unwrap();

        let mut sim = topo
            .build(SimConfig {
                root_bandwidth_bucket: Some(bucket),
                host_threads: crate::host_threads(),
                ..SimConfig::default()
            })
            .expect("valid topology");
        sim.run_for(Cycle::new(total)).expect("runs");

        let (_, root_stats) = sim
            .switch_stats()
            .iter()
            .find(|(name, _)| name == "root")
            .expect("root switch");
        let stats = root_stats.lock();
        let points: Vec<(f64, f64)> = stats
            .ingress_bandwidth
            .points()
            .iter()
            .map(|&(cycle, bytes)| {
                let seconds = bucket as f64 / CLOCK.as_hz() as f64;
                (us(cycle.as_u64()), bytes * 8.0 / seconds / 1e9)
            })
            .collect();
        let peak = points.iter().map(|&(_, g)| g).fold(0.0, f64::max);
        let tail_points = &points[points.len() - points.len() / 4..];
        let steady =
            tail_points.iter().map(|&(_, g)| g).sum::<f64>() / tail_points.len().max(1) as f64;
        out.push(Fig6Series {
            sender_gbps: rate,
            points,
            peak_gbps: peak,
            steady_gbps: steady,
        });
    }
    out
}

/// Token-bucket parameters approximating `gbps` on a 204.8 Gbit/s link.
fn rate_to_kp(gbps: f64) -> (u16, u16) {
    // Rate fraction = k / p with k = 1: p = round(204.8 / gbps).
    let p = (204.8 / gbps).round().max(1.0) as u16;
    (1, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_mapping() {
        assert_eq!(rate_to_kp(100.0), (1, 2)); // 102.4
        assert_eq!(rate_to_kp(40.0), (1, 5)); // 40.96
        assert_eq!(rate_to_kp(10.0), (1, 20)); // 10.24
        assert_eq!(rate_to_kp(1.0), (1, 205)); // 0.999
    }

    #[test]
    fn fig5_small_run_parallels_ideal() {
        let rows = fig5_ping(&[1.0, 2.0], 3);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.measured_rtt_us > r.ideal_rtt_us, "{r:?}");
        }
        // Parallel lines: offsets within a microsecond of each other.
        let d = (rows[0].offset_us() - rows[1].offset_us()).abs();
        assert!(d < 1.0, "offsets diverge by {d:.2} us: {rows:?}");
    }

    #[test]
    fn iperf_is_stack_limited() {
        let r = iperf(256 * 1024);
        assert!(r.gbps > 0.3 && r.gbps < 5.0, "{r:?}");
    }

    #[test]
    fn baremetal_is_near_line_rate() {
        let r = baremetal_bandwidth(40, 1024);
        assert!(r.gbps > 120.0, "{r:?}");
    }
}
