//! Fig 11: the page-fault accelerator vs software paging (§VI).

use std::sync::Arc;

use parking_lot::Mutex;

use firesim_blade::model::OsConfig;
use firesim_blade::paging::{
    AccessStream, MemBlade, MemBladeConfig, PagedWorkload, PagingCosts, PagingMode, PagingStats,
};
use firesim_core::Cycle;
use firesim_manager::{BladeSpec, SimConfig, Topology};
use firesim_net::MacAddr;

/// One bar of Fig 11.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Workload name (`genome` or `qsort`).
    pub workload: &'static str,
    /// Paging mechanism.
    pub mode: &'static str,
    /// Local memory as a fraction of the working set.
    pub local_fraction: f64,
    /// Runtime in cycles.
    pub runtime_cycles: u64,
    /// Runtime normalised to the all-local run of the same workload.
    pub normalized_runtime: f64,
    /// Page faults taken.
    pub faults: u64,
    /// Cycles charged to metadata management.
    pub metadata_cycles: u64,
}

fn run_one(mode: PagingMode, stream: AccessStream, local_pages: u64) -> (u64, u64, u64) {
    let wl_mac = MacAddr::from_node_index(0);
    let mb_mac = MacAddr::from_node_index(1);
    let stats_cell: Arc<Mutex<Option<Arc<Mutex<PagingStats>>>>> = Arc::new(Mutex::new(None));
    let stats_out = Arc::clone(&stats_cell);

    let mut topo = Topology::new();
    let tor = topo.add_switch("tor0");
    let os = OsConfig {
        cores: 1,
        ctx_switch_cycles: 0,
        misplace_prob: 0.0,
        ..OsConfig::default()
    };
    let stream_cell = Mutex::new(Some(stream));
    let wl = topo.add_server(
        "compute",
        BladeSpec::model(os, 1, true, move |mac, _| {
            let wl = PagedWorkload::new(
                mac,
                mb_mac,
                mode,
                PagingCosts::default(),
                stream_cell.lock().take().expect("single instantiation"),
                local_pages,
            );
            *stats_out.lock() = Some(wl.stats());
            Box::new(wl)
        }),
    );
    let mb = topo.add_server(
        "memblade",
        BladeSpec::model(os, 1, true, move |mac, _| {
            Box::new(MemBlade::new(mac, MemBladeConfig::default()))
        }),
    );
    topo.add_downlinks(tor, [wl, mb]).unwrap();
    let _ = wl_mac;

    let mut sim = topo.build(SimConfig::default()).expect("valid topology");
    sim.run_until_done(Cycle::new(500_000_000_000))
        .expect("runs");

    let stats = stats_cell.lock().take().expect("factory ran");
    let s = stats.lock();
    (
        s.runtime().expect("workload finished"),
        s.faults,
        s.metadata_cycles,
    )
}

/// Fig 11: for each workload (genome, qsort) and each local-memory
/// fraction, runs software paging and the PFA against the same memory
/// blade and reports runtimes normalised to the all-local run.
///
/// `working_set_pages` is the workload size (the paper uses 64 MiB =
/// 16384 x 4 KiB pages); `genome_accesses` scales the genome run length.
pub fn fig11_pfa(working_set_pages: u64, genome_accesses: u64, fractions: &[f64]) -> Vec<Fig11Row> {
    let mut rows = Vec::new();
    for workload in ["genome", "qsort"] {
        let stream = |seed: u64| match workload {
            "genome" => AccessStream::genome(working_set_pages, genome_accesses, seed),
            _ => AccessStream::qsort(working_set_pages),
        };
        // Baseline: everything local.
        let (base_sw, _, _) = run_one(PagingMode::Software, stream(5), working_set_pages);
        let (base_pfa, _, _) = run_one(PagingMode::Pfa, stream(5), working_set_pages);
        for &frac in fractions {
            let local = ((working_set_pages as f64 * frac) as u64).max(1);
            for (mode, mode_name, base) in [
                (PagingMode::Software, "software", base_sw),
                (PagingMode::Pfa, "pfa", base_pfa),
            ] {
                let (runtime, faults, metadata) = run_one(mode, stream(5), local);
                rows.push(Fig11Row {
                    workload,
                    mode: mode_name,
                    local_fraction: frac,
                    runtime_cycles: runtime,
                    normalized_runtime: runtime as f64 / base as f64,
                    faults,
                    metadata_cycles: metadata,
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11_shape_holds_at_small_scale() {
        let rows = fig11_pfa(256, 1_200, &[0.125, 0.5]);
        let get = |w: &str, m: &str, f: f64| {
            rows.iter()
                .find(|r| r.workload == w && r.mode == m && (r.local_fraction - f).abs() < 1e-9)
                .cloned()
                .unwrap()
        };
        // PFA is at least as fast as software paging everywhere, and
        // meaningfully faster for fault-heavy genome at small memory.
        let g_sw = get("genome", "software", 0.125);
        let g_pfa = get("genome", "pfa", 0.125);
        let speedup = g_sw.runtime_cycles as f64 / g_pfa.runtime_cycles as f64;
        assert!(speedup > 1.1, "genome speedup {speedup:.2}");
        assert_eq!(g_sw.faults, g_pfa.faults, "same access stream");
        // Metadata reduction ~2.5x (allowing model slack).
        let meta_ratio = g_sw.metadata_cycles as f64 / g_pfa.metadata_cycles as f64;
        assert!(meta_ratio > 1.8, "metadata ratio {meta_ratio:.2}");
        // Genome degrades more than qsort as memory shrinks.
        let q_sw = get("qsort", "software", 0.125);
        assert!(
            g_sw.normalized_runtime > q_sw.normalized_runtime,
            "genome {:.2} vs qsort {:.2}",
            g_sw.normalized_runtime,
            q_sw.normalized_runtime
        );
    }
}
