//! # firesim-uarch
//!
//! Microarchitectural *timing* models for FireSim-rs server blades: blocking
//! L1/L2 caches, a DDR3-style DRAM timing model, and an in-order
//! Rocket-class pipeline timing wrapper around the functional
//! `firesim-riscv` core.
//!
//! The FireSim paper's blades are Rocket Chip SoCs (Table I): 1-4 in-order
//! RV64 cores at 3.2 GHz with 16 KiB L1I/L1D, a 256 KiB shared L2, and a
//! 16 GiB DDR3 memory modeled by the MIDAS FPGA DRAM timing model. This
//! crate reproduces that stack in software:
//!
//! * [`Cache`] — set-associative, LRU, write-allocate blocking cache used
//!   for L1I, L1D, and the shared L2.
//! * [`Dram`] — bank/row DDR3 timing (tRCD/tCAS/tRP, open-page policy,
//!   bank busy windows) translated into CPU-cycle latencies.
//! * [`MemSystem`] — the hierarchy: per-core L1s, shared L2, DRAM; returns
//!   the latency of each access and collects hit/miss statistics.
//! * [`TimingCore`] — executes the functional core one instruction at a
//!   time, charging pipeline and memory cycles so the blade advances
//!   cycle-by-cycle like the FAME-1-transformed RTL would.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod dram;
pub mod memsys;
pub mod timing;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use dram::{Dram, DramConfig, DramStats, RowOutcome};
pub use memsys::{AccessKind, MemSystem, MemSystemConfig, MemSystemStats};
pub use timing::{SamplingConfig, TickEvent, TimingConfig, TimingCore, TraceEntry};
