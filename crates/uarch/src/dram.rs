//! A DDR3-style DRAM timing model.
//!
//! FireSim attaches a synthesizable DRAM timing model (from MIDAS) to each
//! FPGA's on-board memory, parameterised to behave like DDR3. This module
//! is the software equivalent: per-bank open rows, tRCD/tCAS/tRP timing,
//! bank busy windows, and an open-page policy. Latencies are expressed in
//! CPU cycles at the target clock, so callers simply add the returned
//! latency to their current cycle.

/// DDR3-like timing parameters (in CPU cycles at the target clock).
///
/// Defaults approximate DDR3-1600 behind a 3.2 GHz core: the memory
/// controller runs at 800 MHz, so one memory-controller cycle is 4 CPU
/// cycles; tCL/tRCD/tRP of 11 controller cycles become 44 CPU cycles each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of banks.
    pub banks: usize,
    /// Bytes per row (per bank).
    pub row_bytes: u64,
    /// CAS latency: activate-to-data when the row is already open.
    pub t_cas: u64,
    /// RAS-to-CAS delay: row activation cost.
    pub t_rcd: u64,
    /// Row precharge cost (closing the old row on a conflict).
    pub t_rp: u64,
    /// Data burst transfer time for one cache line.
    pub t_burst: u64,
    /// Fixed controller/queueing overhead per request.
    pub t_controller: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            banks: 8,
            row_bytes: 8 * 1024,
            t_cas: 44,
            t_rcd: 44,
            t_rp: 44,
            t_burst: 16,
            t_controller: 20,
        }
    }
}

/// Per-request classification, for statistics and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// The addressed row was already open (page hit).
    Hit,
    /// The bank had no open row (page empty).
    Empty,
    /// Another row was open and had to be precharged (page conflict).
    Conflict,
}

/// DRAM access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Requests that hit an open row.
    pub row_hits: u64,
    /// Requests to an idle bank.
    pub row_empty: u64,
    /// Requests that forced a precharge.
    pub row_conflicts: u64,
    /// Total cycles of service latency charged.
    pub total_latency: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    /// Cycle at which the bank can next start a request.
    ready_at: u64,
}

/// The DRAM timing model.
///
/// # Examples
///
/// ```
/// use firesim_uarch::{Dram, DramConfig};
///
/// let mut dram = Dram::new(DramConfig::default());
/// let first = dram.latency(0, 0x0000);            // row empty: activate
/// let hit = dram.latency(10_000, 8 * 64);         // same bank, open row
/// assert!(hit < first);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    banks: Vec<Bank>,
    stats: DramStats,
}

impl Dram {
    /// Creates an idle DRAM with all banks precharged.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is not a nonzero power of two or `row_bytes` is
    /// not a nonzero power of two.
    pub fn new(config: DramConfig) -> Self {
        assert!(
            config.banks.is_power_of_two() && config.banks > 0,
            "bank count must be a power of two"
        );
        assert!(
            config.row_bytes.is_power_of_two() && config.row_bytes > 0,
            "row size must be a power of two"
        );
        Dram {
            banks: vec![Bank::default(); config.banks],
            config,
            stats: DramStats::default(),
        }
    }

    /// The configured timing parameters.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    #[inline]
    fn map(&self, addr: u64) -> (usize, u64) {
        // Line-interleaved bank mapping: consecutive 64 B lines hit
        // consecutive banks; the row is the address within a bank.
        let line = addr >> 6;
        let bank = (line as usize) & (self.config.banks - 1);
        let bank_local = line >> self.config.banks.trailing_zeros();
        let row = (bank_local << 6) / self.config.row_bytes;
        (bank, row)
    }

    /// Issues a read or write beginning no earlier than cycle `now`;
    /// returns the cycle at which the data transfer completes.
    ///
    /// The model serialises requests per bank (a busy bank delays the
    /// request start) and applies open-page row policy.
    pub fn access(&mut self, now: u64, addr: u64) -> u64 {
        let (bank_idx, row) = self.map(addr);
        let c = self.config;
        let bank = &mut self.banks[bank_idx];
        let start = now.max(bank.ready_at);
        let (outcome, array_latency) = match bank.open_row {
            Some(open) if open == row => (RowOutcome::Hit, c.t_cas),
            Some(_) => (RowOutcome::Conflict, c.t_rp + c.t_rcd + c.t_cas),
            None => (RowOutcome::Empty, c.t_rcd + c.t_cas),
        };
        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Empty => self.stats.row_empty += 1,
            RowOutcome::Conflict => self.stats.row_conflicts += 1,
        }
        bank.open_row = Some(row);
        let done = start + c.t_controller + array_latency + c.t_burst;
        bank.ready_at = done;
        self.stats.total_latency += done - now;
        done
    }

    /// Convenience: the latency (cycles from `now`) of an access.
    pub fn latency(&mut self, now: u64, addr: u64) -> u64 {
        self.access(now, addr) - now
    }
}

impl firesim_core::snapshot::Snapshot for DramStats {
    fn save(&self, w: &mut firesim_core::snapshot::SnapshotWriter) {
        w.put_u64(self.row_hits);
        w.put_u64(self.row_empty);
        w.put_u64(self.row_conflicts);
        w.put_u64(self.total_latency);
    }
    fn load(r: &mut firesim_core::snapshot::SnapshotReader<'_>) -> firesim_core::SimResult<Self> {
        Ok(DramStats {
            row_hits: r.get_u64()?,
            row_empty: r.get_u64()?,
            row_conflicts: r.get_u64()?,
            total_latency: r.get_u64()?,
        })
    }
}

impl firesim_core::snapshot::Checkpoint for Dram {
    fn save_state(
        &self,
        w: &mut firesim_core::snapshot::SnapshotWriter,
    ) -> firesim_core::SimResult<()> {
        w.put_usize(self.banks.len());
        for bank in &self.banks {
            w.put(&bank.open_row);
            w.put_u64(bank.ready_at);
        }
        w.put(&self.stats);
        Ok(())
    }

    fn restore_state(
        &mut self,
        r: &mut firesim_core::snapshot::SnapshotReader<'_>,
    ) -> firesim_core::SimResult<()> {
        let n = r.get_usize()?;
        if n != self.banks.len() {
            return Err(firesim_core::SimError::checkpoint(format!(
                "DRAM snapshot has {n} banks, config expects {}",
                self.banks.len()
            )));
        }
        for bank in &mut self.banks {
            bank.open_row = r.get()?;
            bank.ready_at = r.get_u64()?;
        }
        self.stats = r.get()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::default()
    }

    #[test]
    fn row_hit_is_faster_than_empty_and_conflict() {
        let mut d = Dram::new(cfg());
        let c = cfg();
        // Empty bank: tRCD + tCAS.
        let lat_empty = d.latency(0, 0);
        assert_eq!(lat_empty, c.t_controller + c.t_rcd + c.t_cas + c.t_burst);
        // Same row: the next line within bank 0 is `banks * 64` bytes away.
        let stride = (c.banks as u64) * 64;
        let lat_hit = d.latency(20_000, stride);
        assert_eq!(lat_hit, c.t_controller + c.t_cas + c.t_burst);
        // Conflict: same bank, different row.
        let far = c.row_bytes * (c.banks as u64) * 4;
        let lat_conflict = d.latency(40_000, far);
        assert_eq!(
            lat_conflict,
            c.t_controller + c.t_rp + c.t_rcd + c.t_cas + c.t_burst
        );
        assert!(lat_hit < lat_empty && lat_empty < lat_conflict);
        let s = d.stats();
        assert_eq!(s.row_hits, 1);
        assert!(s.row_empty >= 1);
        assert_eq!(s.row_conflicts, 1);
    }

    #[test]
    fn busy_bank_serialises() {
        let mut d = Dram::new(cfg());
        let done1 = d.access(0, 0);
        // Immediately hit the same bank: must start after done1.
        let done2 = d.access(1, 0);
        assert!(done2 > done1);
        let gap = done2 - done1;
        let c = cfg();
        assert_eq!(gap, c.t_controller + c.t_cas + c.t_burst); // row hit after wait
    }

    #[test]
    fn different_banks_overlap() {
        let mut d = Dram::new(cfg());
        let done1 = d.access(0, 0);
        let done2 = d.access(0, 64); // next line -> next bank
                                     // Both start at 0; same latency; so they finish together.
        assert_eq!(done1, done2);
    }

    #[test]
    fn idle_gap_allows_immediate_start() {
        let mut d = Dram::new(cfg());
        let done1 = d.access(0, 0);
        let done2 = d.access(done1 + 1000, 0);
        assert_eq!(done2 - (done1 + 1000), d.latency(done2 + 5000, 0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_bank_count_panics() {
        let _ = Dram::new(DramConfig {
            banks: 3,
            ..DramConfig::default()
        });
    }
}
