//! A DDR3-style DRAM timing model.
//!
//! FireSim attaches a synthesizable DRAM timing model (from MIDAS) to each
//! FPGA's on-board memory, parameterised to behave like DDR3. This module
//! is the software equivalent: per-bank open rows, tRCD/tCAS/tRP timing,
//! bank busy windows, an open-page policy, and periodic tREFI/tRFC
//! refresh. Latencies are expressed in CPU cycles at the target clock, so
//! callers simply add the returned latency to their current cycle.
//!
//! # Event-queue vs per-deadline reference
//!
//! Refresh is the only periodic behaviour in the model, and it admits two
//! implementations that must agree bit-for-bit (DESIGN §18):
//!
//! * the **reference model** ([`DramConfig::reference_model`]` = true`)
//!   eagerly walks every elapsed refresh deadline and applies it to every
//!   bank — O(deadlines × banks) per time advance, trivially correct;
//! * the **event-queue model** (the default) treats refresh deadlines as
//!   lazily-materialised events: [`Dram::advance_to`] only moves a
//!   horizon counter in O(1), and a bank's missed refreshes are collapsed
//!   into a closed form the next time that bank is touched. Idle banks
//!   are never visited at all.
//!
//! Both serialise the *materialised* state, so snapshots are identical
//! regardless of model (and cross-restorable); `tests/dram_equiv.rs`
//! differential-tests the pair the same way `TimingConfig::
//! reference_timing` is tested.

/// DDR3-like timing parameters (in CPU cycles at the target clock).
///
/// Defaults approximate DDR3-1600 behind a 3.2 GHz core: the memory
/// controller runs at 800 MHz, so one memory-controller cycle is 4 CPU
/// cycles; tCL/tRCD/tRP of 11 controller cycles become 44 CPU cycles each.
/// Refresh defaults follow the DDR3 datasheet: one all-bank auto-refresh
/// every tREFI = 7.8 µs (24 960 CPU cycles), each taking tRFC = 260 ns
/// (832 CPU cycles) during which the banks are busy and all rows close.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of banks.
    pub banks: usize,
    /// Bytes per row (per bank).
    pub row_bytes: u64,
    /// CAS latency: activate-to-data when the row is already open.
    pub t_cas: u64,
    /// RAS-to-CAS delay: row activation cost.
    pub t_rcd: u64,
    /// Row precharge cost (closing the old row on a conflict).
    pub t_rp: u64,
    /// Data burst transfer time for one cache line.
    pub t_burst: u64,
    /// Fixed controller/queueing overhead per request.
    pub t_controller: u64,
    /// Refresh interval: one all-bank refresh is due every `t_refi`
    /// cycles. `0` disables refresh entirely.
    pub t_refi: u64,
    /// Refresh cycle time: how long each refresh keeps the banks busy.
    pub t_rfc: u64,
    /// Use the retained per-deadline-scan reference implementation
    /// instead of the event-queue one. Bit-identical by construction;
    /// kept for differential testing (like `TimingConfig::
    /// reference_timing`).
    pub reference_model: bool,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            banks: 8,
            row_bytes: 8 * 1024,
            t_cas: 44,
            t_rcd: 44,
            t_rp: 44,
            t_burst: 16,
            t_controller: 20,
            t_refi: 24_960,
            t_rfc: 832,
            reference_model: false,
        }
    }
}

impl DramConfig {
    /// The default configuration with refresh disabled — handy for tests
    /// that pin exact latency formulas.
    pub fn no_refresh() -> Self {
        DramConfig {
            t_refi: 0,
            ..DramConfig::default()
        }
    }
}

/// Per-request classification, for statistics and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// The addressed row was already open (page hit).
    Hit,
    /// The bank had no open row (page empty).
    Empty,
    /// Another row was open and had to be precharged (page conflict).
    Conflict,
}

/// DRAM access statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Requests that hit an open row.
    pub row_hits: u64,
    /// Requests to an idle bank.
    pub row_empty: u64,
    /// Requests that forced a precharge.
    pub row_conflicts: u64,
    /// Total cycles of service latency charged.
    pub total_latency: u64,
    /// All-bank refresh operations performed (one per elapsed tREFI).
    pub refreshes: u64,
    /// Cycles requests spent waiting specifically for a refresh to
    /// finish (the portion of each request's queueing delay attributable
    /// to tRFC busy windows, not to earlier requests).
    pub refresh_stall_cycles: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    /// Cycle at which the bank can next start a request.
    ready_at: u64,
    /// `ready_at` as assigned by the most recent refresh applied to this
    /// bank (0 if none). Monotone, and always ≤ `ready_at`; used to
    /// attribute request stall cycles to refresh.
    refresh_ready: u64,
    /// Number of refresh deadlines already applied to this bank. The
    /// reference model keeps every bank in lockstep with the horizon;
    /// the event-queue model lets banks lag and catches them up lazily.
    refreshed_through: u64,
}

impl Bank {
    /// The bank's state after catching up to `due` refresh deadlines
    /// (deadline *k* falls at `k * t_refi`). Pure: this is the
    /// closed-form collapse of the reference model's one-deadline-at-a-
    /// time recurrence `r_k = max(r_{k-1}, d_k) + t_rfc`, whose maximum
    /// over the elapsed deadlines is reached at one of the endpoints
    /// because the deadlines are linear in `k`.
    fn refreshed(&self, due: u64, t_refi: u64, t_rfc: u64) -> Bank {
        let missed = due - self.refreshed_through;
        if missed == 0 {
            return *self;
        }
        let first = (self.refreshed_through + 1) * t_refi;
        let last = due * t_refi;
        let ready = (self.ready_at + missed * t_rfc)
            .max(first + missed * t_rfc)
            .max(last + t_rfc);
        Bank {
            open_row: None,
            ready_at: ready,
            refresh_ready: ready,
            refreshed_through: due,
        }
    }
}

/// The DRAM timing model.
///
/// # Examples
///
/// ```
/// use firesim_uarch::{Dram, DramConfig};
///
/// let mut dram = Dram::new(DramConfig::default());
/// let first = dram.latency(0, 0x0000);            // row empty: activate
/// let hit = dram.latency(10_000, 8 * 64);         // same bank, open row
/// assert!(hit < first);
/// ```
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    banks: Vec<Bank>,
    stats: DramStats,
    /// Highest cycle the model has observed (via `access` or
    /// `advance_to`): the refresh horizon. Deadlines at or below it are
    /// committed — eagerly in the reference model, lazily per bank in
    /// the event-queue model.
    horizon: u64,
}

impl Dram {
    /// Creates an idle DRAM with all banks precharged.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is not a nonzero power of two or `row_bytes` is
    /// not a nonzero power of two.
    pub fn new(config: DramConfig) -> Self {
        assert!(
            config.banks.is_power_of_two() && config.banks > 0,
            "bank count must be a power of two"
        );
        assert!(
            config.row_bytes.is_power_of_two() && config.row_bytes > 0,
            "row size must be a power of two"
        );
        Dram {
            banks: vec![Bank::default(); config.banks],
            config,
            stats: DramStats::default(),
            horizon: 0,
        }
    }

    /// The configured timing parameters.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Number of refresh deadlines at or below `cycle`.
    #[inline]
    fn due(&self, cycle: u64) -> u64 {
        cycle.checked_div(self.config.t_refi).unwrap_or(0)
    }

    /// Moves the refresh horizon forward to `cycle` (never backwards).
    ///
    /// Event-queue model: O(1) — banks are caught up lazily when next
    /// touched. Reference model: walks every newly elapsed deadline and
    /// applies it to every bank.
    #[inline]
    fn note_time(&mut self, cycle: u64) {
        if cycle <= self.horizon {
            return;
        }
        self.horizon = cycle;
        if self.config.t_refi == 0 {
            return;
        }
        let due = self.due(cycle);
        self.stats.refreshes = due;
        if self.config.reference_model {
            // One deadline at a time, every bank: the retained reference.
            let (t_refi, t_rfc) = (self.config.t_refi, self.config.t_rfc);
            let applied = self.banks[0].refreshed_through;
            for k in applied..due {
                let deadline = (k + 1) * t_refi;
                for bank in &mut self.banks {
                    bank.ready_at = bank.ready_at.max(deadline) + t_rfc;
                    bank.refresh_ready = bank.ready_at;
                    bank.open_row = None;
                    bank.refreshed_through = k + 1;
                }
            }
        }
    }

    /// Advances the model's notion of time without issuing a request, so
    /// refresh bookkeeping stays current across idle spans. O(1) in the
    /// event-queue model no matter how far `cycle` jumps.
    pub fn advance_to(&mut self, cycle: u64) {
        self.note_time(cycle);
    }

    #[inline]
    fn map(&self, addr: u64) -> (usize, u64) {
        // Line-interleaved bank mapping: consecutive 64 B lines hit
        // consecutive banks; the row is the address within a bank.
        let line = addr >> 6;
        let bank = (line as usize) & (self.config.banks - 1);
        let bank_local = line >> self.config.banks.trailing_zeros();
        let row = (bank_local << 6) / self.config.row_bytes;
        (bank, row)
    }

    /// Issues a read or write beginning no earlier than cycle `now`;
    /// returns the cycle at which the data transfer completes.
    ///
    /// The model serialises requests per bank (a busy bank delays the
    /// request start) and applies open-page row policy. Refresh
    /// deadlines up to the horizon are committed first, so a request
    /// landing inside a tRFC busy window waits it out (counted in
    /// [`DramStats::refresh_stall_cycles`]).
    pub fn access(&mut self, now: u64, addr: u64) -> u64 {
        self.note_time(now);
        let (bank_idx, row) = self.map(addr);
        let c = self.config;
        if c.t_refi != 0 && !c.reference_model {
            let due = self.horizon / c.t_refi;
            let bank = &mut self.banks[bank_idx];
            if bank.refreshed_through < due {
                *bank = bank.refreshed(due, c.t_refi, c.t_rfc);
            }
        }
        let bank = &mut self.banks[bank_idx];
        self.stats.refresh_stall_cycles += bank.refresh_ready.saturating_sub(now);
        let start = now.max(bank.ready_at);
        let (outcome, array_latency) = match bank.open_row {
            Some(open) if open == row => (RowOutcome::Hit, c.t_cas),
            Some(_) => (RowOutcome::Conflict, c.t_rp + c.t_rcd + c.t_cas),
            None => (RowOutcome::Empty, c.t_rcd + c.t_cas),
        };
        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Empty => self.stats.row_empty += 1,
            RowOutcome::Conflict => self.stats.row_conflicts += 1,
        }
        bank.open_row = Some(row);
        let done = start + c.t_controller + array_latency + c.t_burst;
        bank.ready_at = done;
        self.stats.total_latency += done - now;
        done
    }

    /// Convenience: the latency (cycles from `now`) of an access.
    pub fn latency(&mut self, now: u64, addr: u64) -> u64 {
        self.access(now, addr) - now
    }
}

impl firesim_core::snapshot::Snapshot for DramStats {
    fn save(&self, w: &mut firesim_core::snapshot::SnapshotWriter) {
        w.put_u64(self.row_hits);
        w.put_u64(self.row_empty);
        w.put_u64(self.row_conflicts);
        w.put_u64(self.total_latency);
        w.put_u64(self.refreshes);
        w.put_u64(self.refresh_stall_cycles);
    }
    fn load(r: &mut firesim_core::snapshot::SnapshotReader<'_>) -> firesim_core::SimResult<Self> {
        Ok(DramStats {
            row_hits: r.get_u64()?,
            row_empty: r.get_u64()?,
            row_conflicts: r.get_u64()?,
            total_latency: r.get_u64()?,
            refreshes: r.get_u64()?,
            refresh_stall_cycles: r.get_u64()?,
        })
    }
}

impl firesim_core::snapshot::Checkpoint for Dram {
    /// Serialises the *materialised* state — every bank caught up to the
    /// refresh horizon — so the bytes are independent of which model
    /// produced them. Event-queue and reference snapshots are
    /// interchangeable.
    fn save_state(
        &self,
        w: &mut firesim_core::snapshot::SnapshotWriter,
    ) -> firesim_core::SimResult<()> {
        let due = self.due(self.horizon);
        w.put_usize(self.banks.len());
        for bank in &self.banks {
            let eff = if bank.refreshed_through < due {
                bank.refreshed(due, self.config.t_refi, self.config.t_rfc)
            } else {
                *bank
            };
            w.put(&eff.open_row);
            w.put_u64(eff.ready_at);
            w.put_u64(eff.refresh_ready);
        }
        w.put_u64(self.horizon);
        w.put(&self.stats);
        Ok(())
    }

    fn restore_state(
        &mut self,
        r: &mut firesim_core::snapshot::SnapshotReader<'_>,
    ) -> firesim_core::SimResult<()> {
        let n = r.get_usize()?;
        if n != self.banks.len() {
            return Err(firesim_core::SimError::checkpoint(format!(
                "DRAM snapshot has {n} banks, config expects {}",
                self.banks.len()
            )));
        }
        for bank in &mut self.banks {
            bank.open_row = r.get()?;
            bank.ready_at = r.get_u64()?;
            bank.refresh_ready = r.get_u64()?;
        }
        self.horizon = r.get_u64()?;
        self.stats = r.get()?;
        // Snapshots carry materialised banks: mark them caught up.
        let due = self.due(self.horizon);
        for bank in &mut self.banks {
            bank.refreshed_through = due;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use firesim_core::snapshot::{Checkpoint, SnapshotReader, SnapshotWriter};

    fn cfg() -> DramConfig {
        DramConfig::no_refresh()
    }

    fn snap(d: &Dram) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        d.save_state(&mut w).unwrap();
        w.into_bytes()
    }

    #[test]
    fn row_hit_is_faster_than_empty_and_conflict() {
        let mut d = Dram::new(cfg());
        let c = cfg();
        // Empty bank: tRCD + tCAS.
        let lat_empty = d.latency(0, 0);
        assert_eq!(lat_empty, c.t_controller + c.t_rcd + c.t_cas + c.t_burst);
        // Same row: the next line within bank 0 is `banks * 64` bytes away.
        let stride = (c.banks as u64) * 64;
        let lat_hit = d.latency(20_000, stride);
        assert_eq!(lat_hit, c.t_controller + c.t_cas + c.t_burst);
        // Conflict: same bank, different row.
        let far = c.row_bytes * (c.banks as u64) * 4;
        let lat_conflict = d.latency(40_000, far);
        assert_eq!(
            lat_conflict,
            c.t_controller + c.t_rp + c.t_rcd + c.t_cas + c.t_burst
        );
        assert!(lat_hit < lat_empty && lat_empty < lat_conflict);
        let s = d.stats();
        assert_eq!(s.row_hits, 1);
        assert!(s.row_empty >= 1);
        assert_eq!(s.row_conflicts, 1);
    }

    #[test]
    fn busy_bank_serialises() {
        let mut d = Dram::new(cfg());
        let done1 = d.access(0, 0);
        // Immediately hit the same bank: must start after done1.
        let done2 = d.access(1, 0);
        assert!(done2 > done1);
        let gap = done2 - done1;
        let c = cfg();
        assert_eq!(gap, c.t_controller + c.t_cas + c.t_burst); // row hit after wait
    }

    #[test]
    fn different_banks_overlap() {
        let mut d = Dram::new(cfg());
        let done1 = d.access(0, 0);
        let done2 = d.access(0, 64); // next line -> next bank
                                     // Both start at 0; same latency; so they finish together.
        assert_eq!(done1, done2);
    }

    #[test]
    fn idle_gap_allows_immediate_start() {
        let mut d = Dram::new(cfg());
        let done1 = d.access(0, 0);
        let done2 = d.access(done1 + 1000, 0);
        assert_eq!(done2 - (done1 + 1000), d.latency(done2 + 5000, 0));
    }

    #[test]
    fn refresh_closes_the_open_row() {
        let c = DramConfig::default();
        let mut d = Dram::new(c);
        let lat_first = d.latency(0, 0);
        // Past two tREFI deadlines (and clear of the second tRFC busy
        // window): the row the first access opened has been closed by
        // refresh, so this is Empty again, not Hit.
        let lat_after = d.latency(2 * c.t_refi + c.t_rfc, 0);
        assert_eq!(lat_after, lat_first);
        assert_eq!(d.stats().row_hits, 0);
        assert_eq!(d.stats().row_empty, 2);
        assert_eq!(d.stats().refreshes, 2);
    }

    #[test]
    fn request_near_deadline_waits_out_the_refresh() {
        let c = DramConfig::default();
        let mut d = Dram::new(c);
        // Idle bank, request lands 10 cycles after the first deadline:
        // the refresh occupies [t_refi, t_refi + t_rfc), so the request
        // stalls until the busy window ends.
        let now = c.t_refi + 10;
        let lat = d.latency(now, 0);
        let stall = (c.t_refi + c.t_rfc) - now;
        assert_eq!(lat, stall + c.t_controller + c.t_rcd + c.t_cas + c.t_burst);
        assert_eq!(d.stats().refresh_stall_cycles, stall);
    }

    #[test]
    fn advance_to_commits_refreshes_without_requests() {
        let c = DramConfig::default();
        for reference in [false, true] {
            let mut d = Dram::new(DramConfig {
                reference_model: reference,
                ..c
            });
            d.advance_to(10 * c.t_refi + 5);
            assert_eq!(d.stats().refreshes, 10);
            // Moving backwards is a no-op.
            d.advance_to(c.t_refi);
            assert_eq!(d.stats().refreshes, 10);
        }
    }

    #[test]
    fn event_and_reference_snapshots_are_identical() {
        let mut ev = Dram::new(DramConfig::default());
        let mut rf = Dram::new(DramConfig {
            reference_model: true,
            ..DramConfig::default()
        });
        let c = DramConfig::default();
        // Interleave accesses, long idle jumps, and time-only advances.
        let nows = [0, 100, c.t_refi + 3, 4 * c.t_refi, 4 * c.t_refi + 77];
        for (i, &now) in nows.iter().enumerate() {
            let addr = (i as u64) * 8 * 64 + 64;
            assert_eq!(ev.access(now, addr), rf.access(now, addr), "access {i}");
        }
        ev.advance_to(9 * c.t_refi + 1);
        rf.advance_to(9 * c.t_refi + 1);
        assert_eq!(ev.stats(), rf.stats());
        assert_eq!(snap(&ev), snap(&rf));
    }

    #[test]
    fn snapshots_cross_restore_between_models() {
        let c = DramConfig::default();
        let mut ev = Dram::new(c);
        ev.access(0, 0);
        ev.access(c.t_refi * 3 + 9, 128);
        ev.advance_to(c.t_refi * 5);
        let bytes = snap(&ev);
        let mut rf = Dram::new(DramConfig {
            reference_model: true,
            ..c
        });
        rf.restore_state(&mut SnapshotReader::new(&bytes)).unwrap();
        // Continue both identically.
        let now = c.t_refi * 6 + 13;
        assert_eq!(ev.access(now, 64), rf.access(now, 64));
        assert_eq!(snap(&ev), snap(&rf));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_bank_count_panics() {
        let _ = Dram::new(DramConfig {
            banks: 3,
            ..DramConfig::default()
        });
    }
}
