//! A blocking, set-associative, write-allocate cache timing model.
//!
//! Only *timing* state lives here (tags and LRU order); data always comes
//! from the functional memory. This mirrors how FPGA-hosted simulators
//! split functional state from timing state.

use core::fmt;

/// Geometry of a cache.
///
/// # Examples
///
/// ```
/// use firesim_uarch::CacheConfig;
///
/// let l1 = CacheConfig::rocket_l1();
/// assert_eq!(l1.size_bytes, 16 * 1024);
/// assert_eq!(l1.sets(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// The paper's L1 configuration: 16 KiB, 4-way, 64 B lines (Table I).
    pub fn rocket_l1() -> Self {
        CacheConfig {
            size_bytes: 16 * 1024,
            ways: 4,
            line_bytes: 64,
        }
    }

    /// The paper's shared L2: 256 KiB, 8-way, 64 B lines (Table I).
    pub fn rocket_l2() -> Self {
        CacheConfig {
            size_bytes: 256 * 1024,
            ways: 8,
            line_bytes: 64,
        }
    }

    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (size not divisible by
    /// `ways * line_bytes`, or any field zero).
    pub fn sets(&self) -> usize {
        assert!(
            self.size_bytes > 0 && self.ways > 0 && self.line_bytes > 0,
            "cache geometry fields must be nonzero"
        );
        let denom = self.ways * self.line_bytes;
        assert!(
            self.size_bytes.is_multiple_of(denom),
            "cache size must be a multiple of ways * line_bytes"
        );
        let sets = self.size_bytes / denom;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        sets
    }
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]`; 0 when never accessed.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU stamp; larger = more recently used.
    lru: u64,
}

/// The result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// True when the line was present.
    pub hit: bool,
    /// Base address of a dirty line evicted to make room, if any.
    pub writeback: Option<u64>,
}

/// A set-associative cache (timing state only).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: usize,
    /// `log2(line_bytes)`; both factors are asserted powers of two, so
    /// `index` runs on shifts instead of 64-bit divides.
    line_shift: u32,
    /// `log2(sets)`.
    set_shift: u32,
    lines: Vec<Line>,
    stamp: u64,
    stats: CacheStats,
    /// Host-only lookup shortcut: per-set way index of the most recent
    /// hit. Not checkpointed; a stale hint is harmless because the hit
    /// path re-validates `valid` and `tag` before using it.
    mru: Vec<u8>,
    /// Host-only shortcut: the line index (`addr >> line_shift`) of the
    /// most recent access, or `u64::MAX` when unusable. Two consecutive
    /// accesses to one line are always a hit on the same slot — nothing
    /// can evict a line without itself being an access — so the repeat
    /// path skips the set search entirely. Any `invalidate` resets it.
    last_line: u64,
    /// Slot in `lines` that `last_line` resides in.
    last_slot: usize,
    /// Host-only: repeat hits on `last_line` accumulated by
    /// [`access_fetch`](Self::access_fetch) but not yet applied to
    /// `stamp`/`lru`/`stats`. Flushed (in bulk, exactly equivalent to
    /// the same number of sequential repeat-path accesses) before any
    /// other mutation; folded in pure-functionally by `save_state` and
    /// `stats`, so it is never observable.
    repeat_pending: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (see [`CacheConfig::sets`]).
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Cache {
            config,
            sets,
            line_shift: config.line_bytes.trailing_zeros(),
            set_shift: sets.trailing_zeros(),
            lines: vec![Line::default(); sets * config.ways],
            stamp: 0,
            stats: CacheStats::default(),
            mru: vec![0; sets],
            last_line: u64::MAX,
            last_slot: 0,
            repeat_pending: 0,
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        let mut s = self.stats;
        s.hits += self.repeat_pending;
        s
    }

    /// Applies deferred repeat hits: `n` sequential repeat-path accesses
    /// advance `stamp` by `n`, leave the line's `lru` at the final stamp
    /// and add `n` hits — so one bulk update is bit-equivalent.
    #[inline]
    fn flush_repeat(&mut self) {
        let n = core::mem::take(&mut self.repeat_pending);
        self.stamp += n;
        self.lines[self.last_slot].lru = self.stamp;
        self.stats.hits += n;
    }

    /// Instruction-fetch lookup: like [`access`](Self::access) with
    /// `is_store = false`, but consecutive fetches from one line — the
    /// overwhelmingly common case inside superblocks — take a two-
    /// instruction fast path that defers the LRU/statistics bookkeeping
    /// (see `repeat_pending`). Returns whether the fetch hit.
    #[inline]
    pub fn access_fetch(&mut self, addr: u64) -> bool {
        if (addr >> self.line_shift) == self.last_line {
            self.repeat_pending += 1;
            return true;
        }
        self.access(addr, false).hit
    }

    #[inline]
    fn index(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        let set = (line as usize) & (self.sets - 1);
        let tag = line >> self.set_shift;
        (set, tag)
    }

    /// Looks up `addr`, allocating on miss (write-allocate for stores).
    /// Marks the line dirty on stores.
    #[inline]
    pub fn access(&mut self, addr: u64, is_store: bool) -> AccessResult {
        if self.repeat_pending != 0 {
            self.flush_repeat();
        }
        self.stamp += 1;
        let line_idx = addr >> self.line_shift;

        // Repeat path: same line as the previous access. Guaranteed
        // resident (see `last_line`), so only the bookkeeping runs.
        if line_idx == self.last_line {
            let line = &mut self.lines[self.last_slot];
            line.lru = self.stamp;
            line.dirty |= is_store;
            self.stats.hits += 1;
            return AccessResult {
                hit: true,
                writeback: None,
            };
        }
        self.last_line = line_idx;

        let set = (line_idx as usize) & (self.sets - 1);
        let tag = line_idx >> self.set_shift;
        let ways = self.config.ways;
        let base = set * ways;

        // Fast path: the way that hit last time in this set usually hits
        // again (tight loops touch the same lines over and over).
        let hint = usize::from(self.mru[set]);
        if hint < ways {
            let line = &mut self.lines[base + hint];
            if line.valid && line.tag == tag {
                line.lru = self.stamp;
                line.dirty |= is_store;
                self.stats.hits += 1;
                self.last_slot = base + hint;
                return AccessResult {
                    hit: true,
                    writeback: None,
                };
            }
        }

        let set_lines = &mut self.lines[base..base + ways];
        if let Some((way, line)) = set_lines
            .iter_mut()
            .enumerate()
            .find(|(_, l)| l.valid && l.tag == tag)
        {
            line.lru = self.stamp;
            line.dirty |= is_store;
            self.stats.hits += 1;
            self.mru[set] = way as u8;
            self.last_slot = base + way;
            return AccessResult {
                hit: true,
                writeback: None,
            };
        }

        self.stats.misses += 1;
        // Victim: invalid line if any, else LRU.
        let (victim_way, victim) = set_lines
            .iter_mut()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru + 1 } else { 0 })
            .expect("ways >= 1");
        let mut writeback = None;
        if victim.valid && victim.dirty {
            let victim_line = victim.tag * self.sets as u64 + set as u64;
            writeback = Some(victim_line * self.config.line_bytes as u64);
            self.stats.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: is_store,
            lru: self.stamp,
        };
        self.mru[set] = victim_way as u8;
        self.last_slot = base + victim_way;
        AccessResult {
            hit: false,
            writeback,
        }
    }

    /// Invalidates the line containing `addr` (coherence shoot-down).
    /// Returns true when a valid line was present.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        // The removed line may be the repeat shortcut's target; settle
        // deferred bookkeeping against it first.
        if self.repeat_pending != 0 {
            self.flush_repeat();
        }
        self.last_line = u64::MAX;
        let (set, tag) = self.index(addr);
        let ways = self.config.ways;
        let base = set * ways;
        for l in &mut self.lines[base..base + ways] {
            if l.valid && l.tag == tag {
                l.valid = false;
                l.dirty = false;
                return true;
            }
        }
        false
    }

    /// True when the line containing `addr` is resident.
    pub fn contains(&self, addr: u64) -> bool {
        let (set, tag) = self.index(addr);
        let base = set * self.config.ways;
        self.lines[base..base + self.config.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }
}

impl firesim_core::snapshot::Snapshot for CacheStats {
    fn save(&self, w: &mut firesim_core::snapshot::SnapshotWriter) {
        w.put_u64(self.hits);
        w.put_u64(self.misses);
        w.put_u64(self.writebacks);
    }
    fn load(r: &mut firesim_core::snapshot::SnapshotReader<'_>) -> firesim_core::SimResult<Self> {
        Ok(CacheStats {
            hits: r.get_u64()?,
            misses: r.get_u64()?,
            writebacks: r.get_u64()?,
        })
    }
}

impl firesim_core::snapshot::Checkpoint for Cache {
    fn save_state(
        &self,
        w: &mut firesim_core::snapshot::SnapshotWriter,
    ) -> firesim_core::SimResult<()> {
        // Serialise as if `repeat_pending` deferred hits had been applied,
        // so the bytes never depend on the host-only memo state.
        let stamp = self.stamp + self.repeat_pending;
        w.put_usize(self.lines.len());
        for (i, line) in self.lines.iter().enumerate() {
            w.put_u64(line.tag);
            w.put_bool(line.valid);
            w.put_bool(line.dirty);
            if self.repeat_pending != 0 && i == self.last_slot {
                w.put_u64(stamp);
            } else {
                w.put_u64(line.lru);
            }
        }
        w.put_u64(stamp);
        w.put(&self.stats());
        Ok(())
    }

    fn restore_state(
        &mut self,
        r: &mut firesim_core::snapshot::SnapshotReader<'_>,
    ) -> firesim_core::SimResult<()> {
        let n = r.get_usize()?;
        if n != self.lines.len() {
            return Err(firesim_core::SimError::checkpoint(format!(
                "cache snapshot has {n} lines, geometry expects {}",
                self.lines.len()
            )));
        }
        for line in &mut self.lines {
            line.tag = r.get_u64()?;
            line.valid = r.get_bool()?;
            line.dirty = r.get_bool()?;
            line.lru = r.get_u64()?;
        }
        self.stamp = r.get_u64()?;
        self.stats = r.get()?;
        // Restored contents invalidate the host-only repeat shortcut;
        // the snapshot already folded any deferred hits in.
        self.last_line = u64::MAX;
        self.repeat_pending = 0;
        Ok(())
    }
}

impl fmt::Display for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        write!(
            f,
            "{} KiB {}-way cache: {} hits, {} misses ({:.1}% miss)",
            self.config.size_bytes / 1024,
            self.config.ways,
            stats.hits,
            stats.misses,
            stats.miss_ratio() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64 B lines = 256 B.
        Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x1000, false).hit);
        assert!(c.access(0x1038, false).hit); // same line
        assert!(!c.access(0x1040, false).hit); // next line, other set
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Set 0 holds lines with (line_index % 2 == 0): 0x000, 0x080, 0x100.
        c.access(0x000, false);
        c.access(0x080, false);
        c.access(0x000, false); // refresh 0x000
        c.access(0x100, false); // evicts 0x080 (LRU)
        assert!(c.contains(0x000));
        assert!(!c.contains(0x080));
        assert!(c.contains(0x100));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0x000, true); // dirty
        c.access(0x080, false);
        let r = c.access(0x100, false); // evicts dirty 0x000
        assert_eq!(r.writeback, Some(0x000));
        assert_eq!(c.stats().writebacks, 1);
        // Clean eviction: no writeback.
        let r = c.access(0x180, false); // evicts clean 0x080
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn store_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0x000, false); // clean
        c.access(0x000, true); // now dirty
        c.access(0x080, false);
        let r = c.access(0x100, false);
        assert_eq!(r.writeback, Some(0x000));
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.access(0x000, true);
        assert!(c.invalidate(0x000));
        assert!(!c.contains(0x000));
        assert!(!c.invalidate(0x000));
        // Re-access misses but must not write back (invalidated dirty data
        // is the coherence protocol's job to have flushed).
        assert!(!c.access(0x000, false).hit);
    }

    #[test]
    fn rocket_geometries() {
        assert_eq!(CacheConfig::rocket_l1().sets(), 64);
        assert_eq!(CacheConfig::rocket_l2().sets(), 512);
        let _ = Cache::new(CacheConfig::rocket_l1());
        let _ = Cache::new(CacheConfig::rocket_l2());
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 100,
            ways: 3,
            line_bytes: 64,
        });
    }

    #[test]
    fn fetch_memo_is_bit_equivalent_to_plain_accesses() {
        use firesim_core::snapshot::Checkpoint;
        let snap = |c: &Cache| {
            let mut w = firesim_core::snapshot::SnapshotWriter::new();
            c.save_state(&mut w).unwrap();
            w.into_bytes()
        };
        // Same address stream through access_fetch vs plain access:
        // repeated lines, a line change, an invalidate, and an interleaved
        // store through the ordinary path (which must flush the memo).
        let stream: &[u64] = &[0x1000, 0x1004, 0x1008, 0x1040, 0x1044, 0x1000, 0x1004];
        let mut memo = tiny();
        let mut plain = tiny();
        for &a in stream {
            assert_eq!(memo.access_fetch(a), plain.access(a, false).hit);
        }
        assert_eq!(memo.stats(), plain.stats());
        assert_eq!(snap(&memo), snap(&plain));
        // Mid-memo snapshot folds pending hits in (take one with pending
        // nonzero) and an ordinary access flushes deterministically.
        memo.access_fetch(0x1004);
        plain.access(0x1004, false);
        assert_eq!(snap(&memo), snap(&plain));
        memo.access(0x1040, true);
        plain.access(0x1040, true);
        assert_eq!(snap(&memo), snap(&plain));
        memo.invalidate(0x1000);
        plain.invalidate(0x1000);
        assert_eq!(snap(&memo), snap(&plain));
        assert_eq!(memo.stats(), plain.stats());
    }

    #[test]
    fn miss_ratio() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_ratio(), 0.0);
        c.access(0, false);
        c.access(0, false);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
    }
}
