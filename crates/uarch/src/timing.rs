//! Rocket-class in-order pipeline timing around the functional core.
//!
//! [`TimingCore::tick`] advances exactly one target cycle. Internally it
//! executes the functional core one instruction at a time and converts each
//! instruction into a cycle cost: single-issue in-order base of 1 IPC,
//! multi-cycle multiply/divide, taken-branch and jump redirect bubbles,
//! cache/DRAM latency from [`MemSystem`], and a fixed cost for uncached
//! MMIO. The result is a deterministic cycle-by-cycle model in the spirit
//! of the paper's FAME-1-transformed Rocket core (§III-A4): the functional
//! effect of an instruction is applied on the cycle it *begins* and the
//! core then stalls for the remaining cost.

use firesim_riscv::exec::{Cpu, MemAccess, StepOutcome, TimedStep, TimedStop};
use firesim_riscv::icache::{DecodeCache, DecodeCacheStats};
use firesim_riscv::inst::{Inst, MulDivOp};
use firesim_riscv::mem::Bus;

use crate::memsys::{AccessKind, MemSystem};

/// Pipeline timing parameters (cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingConfig {
    /// Instructions issued per cycle while none needs extra resources
    /// (1 = Rocket-class in-order; 2 = BOOM-class superscalar, §VIII).
    pub issue_width: u32,
    /// Total latency of a multiply.
    pub mul_cycles: u64,
    /// Total latency of a divide/remainder.
    pub div_cycles: u64,
    /// Extra cycles after a taken conditional branch (redirect bubble).
    pub branch_taken_penalty: u64,
    /// Extra cycles after `jal`/`jalr`.
    pub jump_penalty: u64,
    /// Cycles for an uncached MMIO load/store.
    pub mmio_cycles: u64,
    /// Extra cycles consumed by trap entry (pipeline flush).
    pub trap_cycles: u64,
    /// Extra read-modify-write cycles for AMOs beyond the memory latency.
    pub amo_extra_cycles: u64,
    /// Base of the cacheable DRAM region (accesses outside are MMIO).
    pub cacheable_base: u64,
    /// Size of the cacheable DRAM region in bytes.
    pub cacheable_size: u64,
    /// Serve fetch/decode from a host-side [`DecodeCache`] (default on).
    /// Purely a host-speed knob: simulation results, timing, and
    /// `FSCKPT01` snapshots are bit-identical either way (the timing
    /// model charges the modeled L1I per retired instruction no matter
    /// how the functional fetch was served).
    pub decode_cache: bool,
    /// Force the SoC scheduler onto the per-cycle reference loop instead
    /// of event-driven skip-ahead batching (default off). Like
    /// `decode_cache` this is a host-speed knob only: cycle counts,
    /// digests, and snapshots are bit-identical either way, and the
    /// differential tests run both modes against each other.
    pub reference_timing: bool,
    /// Sampled timing mode (default off = fully detailed). When set, the
    /// SoC alternates `detailed_window`-cycle spans of full timing
    /// modeling with `fastforward`-cycle spans of functional-only
    /// execution paced by a CPI estimate fitted from the completed
    /// detailed windows. **Not** timing-exact — results are statistical
    /// estimates with confidence intervals — but still deterministic,
    /// checkpointable, and partition-invariant (the phase is a pure
    /// function of the absolute target cycle).
    pub sampling: Option<SamplingConfig>,
}

/// Parameters of the sampled timing mode (see
/// [`TimingConfig::sampling`] and DESIGN §18).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Cycles of full detailed timing per period.
    pub detailed_window: u64,
    /// Cycles of CPI-estimated fast-forward per period.
    pub fastforward: u64,
}

impl SamplingConfig {
    /// Total period length.
    pub fn period(&self) -> u64 {
        self.detailed_window + self.fastforward
    }

    /// Panics unless both spans are nonzero (a zero span is either
    /// "fully detailed" — turn sampling off — or "never measured").
    pub fn validate(&self) {
        assert!(
            self.detailed_window > 0 && self.fastforward > 0,
            "sampling spans must both be nonzero"
        );
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        TimingConfig {
            issue_width: 1,
            mul_cycles: 4,
            div_cycles: 32,
            branch_taken_penalty: 1,
            jump_penalty: 2,
            mmio_cycles: 10,
            trap_cycles: 3,
            amo_extra_cycles: 3,
            cacheable_base: firesim_riscv::DRAM_BASE,
            cacheable_size: 16 << 30,
            decode_cache: true,
            reference_timing: false,
            sampling: None,
        }
    }
}

impl TimingConfig {
    /// The Rocket-class in-order single-issue model (Table I's cores).
    pub fn rocket() -> Self {
        Self::default()
    }

    /// A BOOM-class superscalar model (§VIII): dual issue, shorter
    /// multiply, faster divider, but a deeper-pipeline redirect penalty.
    /// Per the paper, "one BOOM core consumes roughly the same \[FPGA\]
    /// resources as a quad-core Rocket".
    pub fn boom() -> Self {
        TimingConfig {
            issue_width: 2,
            mul_cycles: 3,
            div_cycles: 20,
            branch_taken_penalty: 3,
            jump_penalty: 1,
            ..Self::default()
        }
    }
}

impl TimingConfig {
    /// True when `addr` is cacheable DRAM (not MMIO).
    pub fn is_cacheable(&self, addr: u64) -> bool {
        addr >= self.cacheable_base && addr - self.cacheable_base < self.cacheable_size
    }
}

/// What one [`TimingCore::tick`] produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TickEvent {
    /// The core is stalled mid-instruction.
    Busy,
    /// An instruction began this cycle (its functional effect is applied);
    /// the outcome is attached for the SoC to observe.
    Issued(StepOutcome),
    /// The core is parked in WFI.
    Idle,
}

/// One retired-instruction trace record (TracerV-style).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Cycle at which the instruction issued.
    pub cycle: u64,
    /// Its program counter.
    pub pc: u64,
}

/// One core with Rocket-like timing.
#[derive(Debug)]
pub struct TimingCore {
    cpu: Cpu,
    config: TimingConfig,
    stall: u64,
    parked: bool,
    retired: u64,
    idle_cycles: u64,
    trace: Option<(usize, std::collections::VecDeque<TraceEntry>)>,
    /// Host-side decoded-instruction cache; `None` when
    /// [`TimingConfig::decode_cache`] is off. Deliberately excluded from
    /// checkpoint state (see the `firesim_riscv::icache` module docs) —
    /// a restore rebuilds it cold.
    icache: Option<DecodeCache>,
}

impl TimingCore {
    /// Wraps a functional core.
    pub fn new(cpu: Cpu, config: TimingConfig) -> Self {
        TimingCore {
            cpu,
            config,
            stall: 0,
            parked: false,
            retired: 0,
            idle_cycles: 0,
            trace: None,
            icache: config.decode_cache.then(DecodeCache::new),
        }
    }

    /// Enables TracerV-style instruction tracing, keeping the last
    /// `depth` retired-instruction records (cycle, pc). FireSim's real
    /// deployment streams these out over DMA; here the harness reads them
    /// from the blade probe.
    pub fn enable_trace(&mut self, depth: usize) {
        self.trace = Some((depth.max(1), std::collections::VecDeque::new()));
    }

    /// The trace ring buffer (oldest first); empty when tracing is off.
    pub fn trace(&self) -> impl Iterator<Item = &TraceEntry> {
        self.trace.iter().flat_map(|(_, t)| t.iter())
    }

    /// The functional core.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Mutable access to the functional core (interrupt lines, timers).
    pub fn cpu_mut(&mut self) -> &mut Cpu {
        &mut self.cpu
    }

    /// Instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Cycles spent parked in WFI.
    pub fn idle_cycles(&self) -> u64 {
        self.idle_cycles
    }

    /// True when parked in WFI.
    pub fn is_parked(&self) -> bool {
        self.parked
    }

    /// Decoded-instruction cache counters; `None` when the cache is off.
    pub fn icache_stats(&self) -> Option<DecodeCacheStats> {
        self.icache.as_ref().map(|c| c.stats())
    }

    /// Remaining stall cycles of the instruction in flight.
    pub fn stall(&self) -> u64 {
        self.stall
    }

    /// Cycles from now until this core next does observable work: 0 when
    /// it will issue on the next tick, the remaining stall while
    /// mid-instruction, and for a WFI-parked core either `timer_expiry`
    /// (pass `Clint::next_timer_expiry(hart)`) when the timer interrupt
    /// is enabled in `mie`, or `u64::MAX` when only a wiring change
    /// (external/software edge) could wake it.
    ///
    /// Callers must wire the interrupt lines for the current cycle first
    /// and guarantee that no wiring input other than the timer changes in
    /// any span they skip on the strength of this answer.
    pub fn next_event(&self, timer_expiry: u64) -> u64 {
        if self.stall > 0 {
            return self.stall;
        }
        if self.parked {
            if self.cpu.csrs.wfi_wakeup() || self.cpu.csrs.pending_interrupt().is_some() {
                return 0;
            }
            let timer_enabled =
                self.cpu.csrs.mie & (1 << firesim_riscv::Interrupt::Timer.bit()) != 0;
            return if timer_enabled {
                timer_expiry
            } else {
                u64::MAX
            };
        }
        0
    }

    /// Bulk-advances an inactive core by `cycles` target cycles in O(1):
    /// a stalled core burns stall budget, a parked core accumulates idle
    /// time. Bit-identical to `cycles` calls of [`TimingCore::tick`]
    /// under the caller's guarantee that nothing in the span would wake
    /// or unstall the core early (`cycles <= next_event(..)`).
    pub fn skip(&mut self, cycles: u64) {
        self.cpu.csrs.mcycle = self.cpu.csrs.mcycle.wrapping_add(cycles);
        if self.stall > 0 {
            debug_assert!(cycles <= self.stall, "skip across stall expiry");
            self.stall -= cycles;
        } else if cycles > 0 {
            debug_assert!(
                self.parked
                    && !self.cpu.csrs.wfi_wakeup()
                    && self.cpu.csrs.pending_interrupt().is_none(),
                "skip on a core that would have issued"
            );
            self.idle_cycles += cycles;
        }
    }

    /// Sampled-mode fast-forward: executes up to `max_insts` instructions
    /// *functionally only* — no memory-system timing, no per-instruction
    /// cost model — via the superblock dispatcher when the decode cache
    /// is on. Returns the number of instructions retired (counted into
    /// [`retired`](Self::retired) as usual). Traps are taken and the run
    /// continues; WFI parks the core and ends the run early. A parked
    /// core with a pending enabled interrupt (wire interrupts first!) is
    /// woken, exactly like the detailed paths.
    ///
    /// Cycle accounting is the caller's job: follow up with
    /// [`ff_charge`](Self::ff_charge) for the span's cycle count.
    pub fn fast_forward<B: Bus>(&mut self, bus: &mut B, max_insts: u64) -> u64 {
        if self.parked {
            if self.cpu.csrs.wfi_wakeup() || self.cpu.csrs.pending_interrupt().is_some() {
                self.parked = false;
            } else {
                return 0;
            }
        }
        let mut executed = 0u64;
        let TimingCore {
            cpu,
            icache,
            retired,
            parked,
            ..
        } = self;
        while executed < max_insts {
            match icache {
                Some(cache) => {
                    let summary = cpu.run_cached(bus, cache, max_insts - executed);
                    executed += summary.retired;
                    match summary.stopped {
                        firesim_riscv::exec::BlockStop::Budget
                        | firesim_riscv::exec::BlockStop::Trapped => {}
                        firesim_riscv::exec::BlockStop::Wfi => {
                            *parked = true;
                            break;
                        }
                    }
                }
                None => {
                    let outcome = cpu
                        .step(bus)
                        .expect("functional core does not fail at host level");
                    match outcome {
                        StepOutcome::Retired { .. } => executed += 1,
                        StepOutcome::Trapped { .. } => {}
                        StepOutcome::Wfi => {
                            *parked = true;
                            break;
                        }
                    }
                }
            }
        }
        *retired += executed;
        executed
    }

    /// Charges a fast-forwarded span's cycles to the core: `mcycle`
    /// advances by the full span, any residual detailed-mode stall is
    /// burned first, and a parked core accumulates idle time. This is the
    /// sampled mode's *approximate* replacement for per-cycle cost
    /// accounting — deterministic, but not timing-exact by design.
    pub fn ff_charge(&mut self, cycles: u64) {
        self.cpu.csrs.mcycle = self.cpu.csrs.mcycle.wrapping_add(cycles);
        let burned = self.stall.min(cycles);
        self.stall -= burned;
        if self.parked {
            self.idle_cycles += cycles - burned;
        }
    }

    /// Batched issue: advances up to `budget` target cycles without
    /// returning to the caller between cycles, bit-identical to `budget`
    /// calls of [`TimingCore::tick`] with `now = base + cycles_so_far`,
    /// provided the caller guarantees the bus/device environment is
    /// frozen for the whole span (quiescent devices, stable interrupt
    /// wiring, stable `csrs.time`).
    ///
    /// Returns the cycles actually consumed. The batch ends early (right
    /// *after* the offending cycle, exactly like the per-cycle loop
    /// would) whenever an issued instruction touches anything outside
    /// that frozen environment: an MMIO fetch, a non-cacheable data
    /// access, or a CSR write to `mip` (whose software-writable bit the
    /// per-cycle wiring would overwrite on the next cycle). Stores to
    /// ordinary memory accumulate on the bus for the caller to process —
    /// reservation clobbers and L1 shoot-downs of *other* cores commute
    /// with the skipped cycles because those cores never run in-batch.
    pub fn advance<B: Bus>(
        &mut self,
        bus: &mut B,
        mem: &mut MemSystem,
        core_idx: usize,
        base: u64,
        budget: u64,
    ) -> u64 {
        let mut used = 0u64;
        while used < budget {
            if self.stall > 0 {
                let n = self.stall.min(budget - used);
                self.cpu.csrs.mcycle = self.cpu.csrs.mcycle.wrapping_add(n);
                self.stall -= n;
                used += n;
                bus.elapse_timing_cycles(n);
                continue;
            }
            if self.parked {
                if !(self.cpu.csrs.wfi_wakeup() || self.cpu.csrs.pending_interrupt().is_some()) {
                    // Frozen wiring cannot wake it later in the span.
                    let n = budget - used;
                    self.cpu.csrs.mcycle = self.cpu.csrs.mcycle.wrapping_add(n);
                    self.idle_cycles += n;
                    used += n;
                    bus.elapse_timing_cycles(n);
                    break;
                }
                self.parked = false;
            }
            // Superblock fast path: single-issue with the decode cache
            // on and tracing off dispatches the whole remaining budget
            // through the functional core's superblock loop, with the
            // cost model inlined per retire. Bit-identical to the
            // per-cycle body below (see `Cpu::run_timed`); trace mode
            // and superscalar issue keep the general loop.
            if self.config.issue_width <= 1 && self.trace.is_none() && self.icache.is_some() {
                let span_base = base + used;
                let span_budget = budget - used;
                let TimingCore {
                    cpu,
                    icache,
                    config,
                    retired,
                    ..
                } = self;
                let cache = icache.as_mut().expect("icache presence checked above");
                let summary = cpu.run_timed(
                    bus,
                    cache,
                    span_budget,
                    config.trap_cycles,
                    |pc, inst, annot, taken_branch, acc, span_cycles| {
                        *retired += 1;
                        let now = span_base + span_cycles;
                        let mut cost = 1u64;
                        // Fetch path: charge everything beyond a
                        // pipelined L1I hit.
                        if config.is_cacheable(pc) {
                            let lat = mem.access(core_idx, AccessKind::Fetch, pc, now);
                            cost += lat - mem.config().l1_hit_cycles;
                        }
                        // Execute path: the static extra rides along as
                        // the decode-cache annotation (`extra + 1`;
                        // 0 = not yet computed).
                        let mut memo = 0u16;
                        if annot != 0 {
                            cost += u64::from(annot - 1);
                        } else {
                            let extra = match inst {
                                Inst::MulDiv { op, .. } => {
                                    let is_div = matches!(
                                        op,
                                        MulDivOp::Div
                                            | MulDivOp::Divu
                                            | MulDivOp::Rem
                                            | MulDivOp::Remu
                                    );
                                    if is_div {
                                        config.div_cycles - 1
                                    } else {
                                        config.mul_cycles - 1
                                    }
                                }
                                Inst::Jal { .. } | Inst::Jalr { .. } => config.jump_penalty,
                                _ => 0,
                            };
                            cost += extra;
                            memo = u16::try_from(extra + 1).unwrap_or(0);
                        }
                        if taken_branch {
                            cost += config.branch_taken_penalty;
                        }
                        // Memory path; anything uncacheable (MMIO fetch
                        // or data) ends the batch after this cycle.
                        let mut stop = !config.is_cacheable(pc);
                        if let Some(a) = acc {
                            if config.is_cacheable(a.addr) {
                                let kind = if a.is_amo {
                                    AccessKind::Amo
                                } else if a.is_store {
                                    AccessKind::Store
                                } else {
                                    AccessKind::Load
                                };
                                let lat = mem.access(core_idx, kind, a.addr, now);
                                cost += match kind {
                                    AccessKind::Store if lat == mem.config().l1_hit_cycles => 0,
                                    AccessKind::Amo => lat + config.amo_extra_cycles,
                                    _ => lat,
                                };
                            } else {
                                cost += config.mmio_cycles;
                                stop = true;
                            }
                        }
                        // A software MIP write would be overwritten by
                        // the next wiring; hand control back first.
                        if matches!(inst, Inst::Csr { csr, .. }
                            if *csr == firesim_riscv::csr::addr::MIP)
                        {
                            stop = true;
                        }
                        TimedStep {
                            extra: cost - 1,
                            stop,
                            annot: memo,
                        }
                    },
                );
                used += summary.cycles;
                self.stall = summary.stall;
                match summary.stopped {
                    TimedStop::Wfi => {
                        self.parked = true;
                        self.idle_cycles += 1;
                    }
                    TimedStop::Device => break,
                    TimedStop::Budget => {}
                }
                continue;
            }

            self.cpu.csrs.mcycle = self.cpu.csrs.mcycle.wrapping_add(1);
            let now = base + used;
            used += 1;
            let width = self.config.issue_width.max(1);
            let mut device_access = false;
            for slot in 0..width {
                let outcome = match &mut self.icache {
                    Some(cache) => self.cpu.step_cached(bus, cache),
                    None => self.cpu.step(bus),
                }
                .expect("functional core does not fail at host level");
                match outcome {
                    StepOutcome::Retired {
                        pc,
                        inst,
                        taken_branch,
                        mem: acc,
                        ..
                    } => {
                        let cost = self.retired_cost(
                            pc,
                            &inst,
                            taken_branch,
                            acc.as_ref(),
                            mem,
                            core_idx,
                            now,
                        );
                        if let Some((depth, trace)) = &mut self.trace {
                            if trace.len() == *depth {
                                trace.pop_front();
                            }
                            trace.push_back(TraceEntry {
                                cycle: self.cpu.csrs.mcycle,
                                pc,
                            });
                        }
                        if !self.config.is_cacheable(pc)
                            || acc
                                .as_ref()
                                .is_some_and(|a| !self.config.is_cacheable(a.addr))
                            || matches!(inst, Inst::Csr { csr, .. }
                                if csr == firesim_riscv::csr::addr::MIP)
                        {
                            device_access = true;
                        }
                        if cost > 1 {
                            self.stall = cost - 1;
                            break;
                        }
                    }
                    StepOutcome::Wfi => {
                        self.parked = true;
                        if slot == 0 {
                            self.idle_cycles += 1;
                        }
                        break;
                    }
                    StepOutcome::Trapped { .. } => {
                        let cost = 1 + self.config.trap_cycles;
                        if cost > 1 {
                            self.stall = cost - 1;
                            break;
                        }
                    }
                }
            }
            bus.elapse_timing_cycles(1);
            if device_access {
                break;
            }
        }
        used
    }

    /// Advances one target cycle.
    ///
    /// `core_idx` selects this core's L1s in `mem`; `now` is the absolute
    /// target cycle (used for DRAM bank timing).
    pub fn tick<B: Bus>(
        &mut self,
        bus: &mut B,
        mem: &mut MemSystem,
        core_idx: usize,
        now: u64,
    ) -> TickEvent {
        self.cpu.csrs.mcycle = self.cpu.csrs.mcycle.wrapping_add(1);

        if self.stall > 0 {
            self.stall -= 1;
            return TickEvent::Busy;
        }

        if self.parked {
            if self.cpu.csrs.wfi_wakeup() || self.cpu.csrs.pending_interrupt().is_some() {
                self.parked = false;
                // Fall through and execute this cycle.
            } else {
                self.idle_cycles += 1;
                return TickEvent::Idle;
            }
        }

        // Issue up to `issue_width` instructions this cycle; issuing
        // stops early at any instruction that needs extra resources
        // (memory, multi-cycle units, control flow, traps).
        let width = self.config.issue_width.max(1);
        let mut first_event: Option<TickEvent> = None;
        for slot in 0..width {
            let outcome = match &mut self.icache {
                Some(cache) => self.cpu.step_cached(bus, cache),
                None => self.cpu.step(bus),
            }
            .expect("functional core does not fail at host level");
            let cost = self.cost_of(&outcome, mem, core_idx, now);
            let Some(cost) = cost else {
                // Parked in WFI.
                if slot == 0 {
                    self.idle_cycles += 1;
                    return TickEvent::Idle;
                }
                break;
            };
            if let (Some((depth, trace)), StepOutcome::Retired { pc, .. }) =
                (&mut self.trace, &outcome)
            {
                if trace.len() == *depth {
                    trace.pop_front();
                }
                trace.push_back(TraceEntry {
                    cycle: self.cpu.csrs.mcycle,
                    pc: *pc,
                });
            }
            if first_event.is_none() {
                first_event = Some(TickEvent::Issued(outcome.clone()));
            }
            if cost > 1 {
                self.stall = cost - 1;
                break;
            }
        }
        first_event.expect("at least one issue slot ran")
    }

    /// Cycle cost of one executed instruction; `None` when the core
    /// parked in WFI instead of executing.
    fn cost_of(
        &mut self,
        outcome: &StepOutcome,
        mem: &mut MemSystem,
        core_idx: usize,
        now: u64,
    ) -> Option<u64> {
        let cost = match outcome {
            StepOutcome::Wfi => {
                self.parked = true;
                return None;
            }
            StepOutcome::Trapped { .. } => 1 + self.config.trap_cycles,
            StepOutcome::Retired {
                pc,
                inst,
                taken_branch,
                mem: mem_access,
                ..
            } => self.retired_cost(
                *pc,
                inst,
                *taken_branch,
                mem_access.as_ref(),
                mem,
                core_idx,
                now,
            ),
        };
        Some(cost)
    }

    /// Cost of one retired instruction. Kept scalar-argument so the hot
    /// batched loop never has to materialize a full [`StepOutcome`].
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn retired_cost(
        &mut self,
        pc: u64,
        inst: &Inst,
        taken_branch: bool,
        mem_access: Option<&MemAccess>,
        mem: &mut MemSystem,
        core_idx: usize,
        now: u64,
    ) -> u64 {
        self.retired += 1;
        let mut cost = 1u64;
        // Fetch path: charge everything beyond a pipelined L1I hit.
        if self.config.is_cacheable(pc) {
            let lat = mem.access(core_idx, AccessKind::Fetch, pc, now);
            cost += lat - mem.config().l1_hit_cycles;
        }
        // Execute path: the static extra is a pure function of
        // the decoded instruction, so it is memoized in the
        // decode-cache slot that served the fetch (stored as
        // `extra + 1`; 0 = not yet computed). The slot guard
        // (`tag == pc`, annotation reset on fill) makes a nonzero
        // annotation always describe this exact instruction: a
        // retired instruction at an aligned cacheable PC was
        // necessarily served by the cache when it is enabled, and
        // MMIO/misaligned PCs never match a filled tag.
        let memoized = self.icache.as_ref().map_or(0, |cache| cache.annotation(pc));
        if memoized != 0 {
            cost += u64::from(memoized - 1);
        } else {
            let extra = match inst {
                Inst::MulDiv { op, .. } => {
                    let is_div = matches!(
                        op,
                        MulDivOp::Div | MulDivOp::Divu | MulDivOp::Rem | MulDivOp::Remu
                    );
                    if is_div {
                        self.config.div_cycles - 1
                    } else {
                        self.config.mul_cycles - 1
                    }
                }
                Inst::Jal { .. } | Inst::Jalr { .. } => self.config.jump_penalty,
                _ => 0,
            };
            cost += extra;
            if let (Some(cache), Ok(a)) = (&mut self.icache, u16::try_from(extra + 1)) {
                cache.set_annotation(pc, a);
            }
        }
        // The taken-branch penalty is dynamic (only `Branch` sets
        // the flag), so it stays outside the memoized extra.
        if taken_branch {
            cost += self.config.branch_taken_penalty;
        }
        // Memory path.
        if let Some(acc) = mem_access {
            if self.config.is_cacheable(acc.addr) {
                let kind = if acc.is_amo {
                    AccessKind::Amo
                } else if acc.is_store {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                };
                let lat = mem.access(core_idx, kind, acc.addr, now);
                cost += match kind {
                    // Store hits retire through the store buffer.
                    AccessKind::Store if lat == mem.config().l1_hit_cycles => 0,
                    AccessKind::Amo => lat + self.config.amo_extra_cycles,
                    _ => lat,
                };
            } else {
                cost += self.config.mmio_cycles;
            }
        }
        cost
    }
}

impl firesim_core::snapshot::Snapshot for TraceEntry {
    fn save(&self, w: &mut firesim_core::snapshot::SnapshotWriter) {
        w.put_u64(self.cycle);
        w.put_u64(self.pc);
    }
    fn load(r: &mut firesim_core::snapshot::SnapshotReader<'_>) -> firesim_core::SimResult<Self> {
        Ok(TraceEntry {
            cycle: r.get_u64()?,
            pc: r.get_u64()?,
        })
    }
}

impl firesim_core::snapshot::Checkpoint for TimingCore {
    fn save_state(
        &self,
        w: &mut firesim_core::snapshot::SnapshotWriter,
    ) -> firesim_core::SimResult<()> {
        self.cpu.save_state(w)?;
        w.put_u64(self.stall);
        w.put_bool(self.parked);
        w.put_u64(self.retired);
        w.put_u64(self.idle_cycles);
        w.put(&self.trace);
        Ok(())
    }

    fn restore_state(
        &mut self,
        r: &mut firesim_core::snapshot::SnapshotReader<'_>,
    ) -> firesim_core::SimResult<()> {
        self.cpu.restore_state(r)?;
        self.stall = r.get_u64()?;
        self.parked = r.get_bool()?;
        self.retired = r.get_u64()?;
        self.idle_cycles = r.get_u64()?;
        self.trace = r.get()?;
        // The decode cache is not in the snapshot; memory was just
        // rewritten, so drop every cached decode and refill cold.
        if let Some(cache) = &mut self.icache {
            cache.invalidate_all();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memsys::MemSystemConfig;
    use firesim_riscv::asm::Assembler;
    use firesim_riscv::mem::Memory;
    use firesim_riscv::DRAM_BASE;

    /// Runs a program until the core parks, returning (cycles, core).
    fn run(build: impl FnOnce(&mut Assembler), max_cycles: u64) -> (u64, TimingCore) {
        let mut a = Assembler::new(DRAM_BASE);
        build(&mut a);
        let image = a.assemble().unwrap();
        let mut mem = Memory::new(DRAM_BASE, 1 << 20);
        mem.write_bytes(DRAM_BASE, &image).unwrap();
        let mut memsys = MemSystem::new(1, MemSystemConfig::default());
        let mut core = TimingCore::new(Cpu::new(0, DRAM_BASE), TimingConfig::default());
        for cycle in 0..max_cycles {
            if let TickEvent::Idle = core.tick(&mut mem, &mut memsys, 0, cycle) {
                return (cycle, core);
            }
        }
        panic!("did not park within {max_cycles} cycles");
    }

    #[test]
    fn straight_line_code_approaches_one_ipc() {
        // 64 nops: after the cold fetch miss, same-line fetches hit.
        let (cycles, core) = run(
            |a| {
                for _ in 0..64 {
                    a.nop();
                }
                a.wfi();
            },
            10_000,
        );
        assert_eq!(core.retired(), 64);
        // 64 instructions + a handful of line misses (64 insts = 4 lines)
        // at ~150 cycles each.
        assert!(cycles > 64, "cycles {cycles}");
        assert!(cycles < 64 + 5 * 300, "cycles {cycles}");
    }

    #[test]
    fn division_costs_more_than_addition() {
        let (add_cycles, _) = run(
            |a| {
                a.li(1, 100);
                a.li(2, 7);
                for _ in 0..16 {
                    a.add(3, 1, 2);
                }
                a.wfi();
            },
            100_000,
        );
        let (div_cycles, _) = run(
            |a| {
                a.li(1, 100);
                a.li(2, 7);
                for _ in 0..16 {
                    a.div(3, 1, 2);
                }
                a.wfi();
            },
            100_000,
        );
        let delta = div_cycles - add_cycles;
        assert_eq!(delta, 16 * (TimingConfig::default().div_cycles - 1));
    }

    #[test]
    fn warm_loads_hit_and_cold_loads_miss() {
        let (cycles_warm, _) = run(
            |a| {
                a.li(1, DRAM_BASE as i64 + 0x1000);
                for _ in 0..8 {
                    a.ld(2, 1, 0); // same line every time
                }
                a.wfi();
            },
            100_000,
        );
        let (cycles_cold, _) = run(
            |a| {
                a.li(1, DRAM_BASE as i64 + 0x1000);
                a.li(3, 64 * 1024); // stride: new line, set, and DRAM row
                for _ in 0..8 {
                    a.ld(2, 1, 0);
                    a.add(1, 1, 3);
                }
                a.wfi();
            },
            100_000,
        );
        assert!(
            cycles_cold > cycles_warm + 500,
            "cold {cycles_cold} vs warm {cycles_warm}"
        );
    }

    #[test]
    fn parked_core_counts_idle_cycles() {
        let mut a = Assembler::new(DRAM_BASE);
        a.wfi();
        let image = a.assemble().unwrap();
        let mut mem = Memory::new(DRAM_BASE, 4096);
        mem.write_bytes(DRAM_BASE, &image).unwrap();
        let mut memsys = MemSystem::new(1, MemSystemConfig::default());
        let mut core = TimingCore::new(Cpu::new(0, DRAM_BASE), TimingConfig::default());
        for cycle in 0..1000 {
            core.tick(&mut mem, &mut memsys, 0, cycle);
        }
        assert!(core.is_parked());
        assert!(core.idle_cycles() > 900);
        assert_eq!(core.cpu().csrs.mcycle, 1000);
    }

    /// SecVIII: the BOOM-class dual-issue model runs ALU-dense code nearly
    /// twice as fast as Rocket, with identical architectural results.
    #[test]
    fn boom_dual_issue_beats_rocket_on_alu_code() {
        let run_with = |config: TimingConfig| {
            // A loop so the I-cache warms up: 64 ALU ops per iteration,
            // 100 iterations.
            let mut a = Assembler::new(DRAM_BASE);
            a.li(1, 3);
            a.li(2, 5);
            a.li(9, 100);
            a.label("outer");
            for _ in 0..16 {
                a.add(3, 1, 2);
                a.xor(4, 3, 1);
                a.or(5, 4, 2);
                a.and(6, 5, 3);
            }
            a.addi(9, 9, -1);
            a.bnez(9, "outer");
            a.wfi();
            let image = a.assemble().unwrap();
            let mut mem = Memory::new(DRAM_BASE, 1 << 20);
            mem.write_bytes(DRAM_BASE, &image).unwrap();
            let mut memsys = MemSystem::new(1, MemSystemConfig::default());
            let mut core = TimingCore::new(Cpu::new(0, DRAM_BASE), config);
            for cycle in 0..100_000u64 {
                if let TickEvent::Idle = core.tick(&mut mem, &mut memsys, 0, cycle) {
                    return (cycle, core.retired(), core.cpu().read_reg(6));
                }
            }
            panic!("did not park");
        };
        let (rocket_cycles, rocket_retired, rocket_r6) = run_with(TimingConfig::rocket());
        let (boom_cycles, boom_retired, boom_r6) = run_with(TimingConfig::boom());
        // Same architectural execution.
        assert_eq!(rocket_retired, boom_retired);
        assert_eq!(rocket_r6, boom_r6);
        // Dual issue: at least 1.6x faster on this straight-line block.
        assert!(
            (boom_cycles as f64) < rocket_cycles as f64 / 1.6,
            "rocket {rocket_cycles} vs boom {boom_cycles}"
        );
    }

    /// Branch-heavy code narrows BOOM's advantage (deeper redirect).
    #[test]
    fn boom_advantage_shrinks_on_branchy_code() {
        let run_with = |config: TimingConfig| {
            let mut a = Assembler::new(DRAM_BASE);
            a.li(1, 0);
            a.li(2, 400);
            a.label("l");
            a.addi(1, 1, 1);
            a.blt(1, 2, "l");
            a.wfi();
            let image = a.assemble().unwrap();
            let mut mem = Memory::new(DRAM_BASE, 1 << 20);
            mem.write_bytes(DRAM_BASE, &image).unwrap();
            let mut memsys = MemSystem::new(1, MemSystemConfig::default());
            let mut core = TimingCore::new(Cpu::new(0, DRAM_BASE), config);
            for cycle in 0..100_000u64 {
                if let TickEvent::Idle = core.tick(&mut mem, &mut memsys, 0, cycle) {
                    return cycle;
                }
            }
            panic!("did not park");
        };
        let rocket = run_with(TimingConfig::rocket()) as f64;
        let boom = run_with(TimingConfig::boom()) as f64;
        // BOOM pays 3-cycle redirects: on a 2-instruction loop body it is
        // no better than (and close to) Rocket.
        assert!(boom > rocket * 0.8, "rocket {rocket} vs boom {boom}");
    }

    /// The decoded-instruction cache is a host-speed knob only: cycle
    /// counts, retired counts, and architectural state are bit-identical
    /// with it on or off, and the hot loop actually hits in it.
    #[test]
    fn decode_cache_is_architecturally_invisible() {
        let run_with = |decode_cache: bool| {
            let mut a = Assembler::new(DRAM_BASE);
            a.li(1, 3);
            a.li(2, 5);
            a.li(9, 50);
            a.label("outer");
            for _ in 0..8 {
                a.add(3, 1, 2);
                a.xor(4, 3, 1);
                a.mul(5, 4, 2);
            }
            a.addi(9, 9, -1);
            a.bnez(9, "outer");
            a.wfi();
            let image = a.assemble().unwrap();
            let mut mem = Memory::new(DRAM_BASE, 1 << 20);
            mem.write_bytes(DRAM_BASE, &image).unwrap();
            let mut memsys = MemSystem::new(1, MemSystemConfig::default());
            let config = TimingConfig {
                decode_cache,
                ..TimingConfig::default()
            };
            let mut core = TimingCore::new(Cpu::new(0, DRAM_BASE), config);
            for cycle in 0..1_000_000u64 {
                if let TickEvent::Idle = core.tick(&mut mem, &mut memsys, 0, cycle) {
                    return (cycle, core);
                }
            }
            panic!("did not park");
        };
        let (cycles_on, core_on) = run_with(true);
        let (cycles_off, core_off) = run_with(false);
        assert_eq!(cycles_on, cycles_off);
        assert_eq!(core_on.retired(), core_off.retired());
        assert_eq!(core_on.cpu().csrs.minstret, core_off.cpu().csrs.minstret);
        for r in 0..32 {
            assert_eq!(core_on.cpu().read_reg(r), core_off.cpu().read_reg(r));
        }
        assert_eq!(core_off.icache_stats(), None);
        let stats = core_on.icache_stats().expect("cache enabled");
        assert!(
            stats.hits > 10 * stats.misses,
            "hot loop should hit: {stats:?}"
        );
    }

    #[test]
    fn taken_branch_costs_extra() {
        // A loop of 100 iterations with a taken branch each time vs
        // straight-line equivalent instruction count.
        let (loop_cycles, core) = run(
            |a| {
                a.li(1, 0);
                a.li(2, 100);
                a.label("l");
                a.addi(1, 1, 1);
                a.blt(1, 2, "l");
                a.wfi();
            },
            100_000,
        );
        // ~200 executed instructions; 99 taken branches add 99 penalties.
        assert!(core.retired() >= 200);
        assert!(loop_cycles >= 200 + 99);
    }
}
