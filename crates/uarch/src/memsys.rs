//! The blade memory hierarchy: per-core L1I/L1D, shared L2, DRAM.
//!
//! [`MemSystem`] is a pure *timing* component: callers ask "how many cycles
//! does this access cost starting at cycle `now`?" and separately perform
//! the functional access against the functional memory. This is the same
//! timing/functional split the FPGA flow uses.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::dram::{Dram, DramConfig, DramStats};

/// What kind of access is being timed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Instruction fetch (L1I).
    Fetch,
    /// Data load (L1D).
    Load,
    /// Data store (L1D, write-allocate).
    Store,
    /// Atomic read-modify-write (L1D, treated as a store for tags).
    Amo,
    /// Direct memory access from a device (bypasses L1s, goes through L2).
    Dma,
}

/// Configuration of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemSystemConfig {
    /// L1 instruction cache geometry (per core).
    pub l1i: CacheConfig,
    /// L1 data cache geometry (per core).
    pub l1d: CacheConfig,
    /// Shared L2 geometry.
    pub l2: CacheConfig,
    /// DRAM timing parameters.
    pub dram: DramConfig,
    /// L1 hit latency in cycles (load-use, beyond the base pipeline cycle).
    pub l1_hit_cycles: u64,
    /// L2 hit latency in cycles.
    pub l2_hit_cycles: u64,
}

impl Default for MemSystemConfig {
    fn default() -> Self {
        MemSystemConfig {
            l1i: CacheConfig::rocket_l1(),
            l1d: CacheConfig::rocket_l1(),
            l2: CacheConfig::rocket_l2(),
            dram: DramConfig::default(),
            l1_hit_cycles: 1,
            l2_hit_cycles: 20,
        }
    }
}

/// Aggregated statistics across the hierarchy.
#[derive(Debug, Clone, Copy, Default)]
pub struct MemSystemStats {
    /// Combined L1I statistics over all cores.
    pub l1i: CacheStats,
    /// Combined L1D statistics over all cores.
    pub l1d: CacheStats,
    /// Shared L2 statistics.
    pub l2: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
}

/// The memory hierarchy timing model for one blade.
#[derive(Debug)]
pub struct MemSystem {
    config: MemSystemConfig,
    l1i: Vec<Cache>,
    l1d: Vec<Cache>,
    l2: Cache,
    dram: Dram,
}

impl MemSystem {
    /// Builds the hierarchy for `cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero or any cache geometry is inconsistent.
    pub fn new(cores: usize, config: MemSystemConfig) -> Self {
        assert!(cores > 0, "a blade needs at least one core");
        MemSystem {
            l1i: (0..cores).map(|_| Cache::new(config.l1i)).collect(),
            l1d: (0..cores).map(|_| Cache::new(config.l1d)).collect(),
            l2: Cache::new(config.l2),
            dram: Dram::new(config.dram),
            config,
        }
    }

    /// Number of cores this hierarchy serves.
    pub fn cores(&self) -> usize {
        self.l1i.len()
    }

    /// The configuration.
    pub fn config(&self) -> &MemSystemConfig {
        &self.config
    }

    /// Returns the latency, in cycles, of an access starting at `now`.
    ///
    /// `core` selects the L1s; it is ignored for [`AccessKind::Dma`].
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range for a core-side access.
    #[inline]
    pub fn access(&mut self, core: usize, kind: AccessKind, addr: u64, now: u64) -> u64 {
        let (hit, is_store) = match kind {
            // Fetches take the L1I's deferred-repeat fast path: straight-
            // line code fetches the same line many times in a row.
            AccessKind::Fetch => (self.l1i[core].access_fetch(addr), false),
            AccessKind::Load => (self.l1d[core].access(addr, false).hit, false),
            AccessKind::Store => (self.l1d[core].access(addr, true).hit, true),
            AccessKind::Amo => (self.l1d[core].access(addr, true).hit, true),
            AccessKind::Dma => return self.access_miss(false, false, addr, now),
        };
        if hit {
            self.config.l1_hit_cycles
        } else {
            self.access_miss(true, is_store, addr, now)
        }
    }

    /// L1 miss (or DMA) path: go to L2, then DRAM. Kept out of line so the
    /// L1-hit path above stays small enough to inline into callers.
    #[inline(never)]
    fn access_miss(&mut self, from_l1: bool, is_store: bool, addr: u64, now: u64) -> u64 {
        let c = &self.config;
        let mut latency = if from_l1 { c.l1_hit_cycles } else { 0 };
        let l2r = self.l2.access(addr, is_store || !from_l1);
        latency += c.l2_hit_cycles;
        if !l2r.hit {
            latency += self.dram.latency(now + latency, addr);
            if let Some(wb) = l2r.writeback {
                // Dirty victim: the writeback occupies the bank but
                // does not block the demand fill's critical path.
                let _ = self.dram.access(now + latency, wb);
            }
        }
        latency
    }

    /// Advances the DRAM's notion of time to `cycle` without issuing a
    /// request, keeping refresh bookkeeping current across idle spans.
    /// O(1) under the event-queue DRAM model.
    pub fn advance_to(&mut self, cycle: u64) {
        self.dram.advance_to(cycle);
    }

    /// Invalidates `addr` in every L1 data cache except `except_core`
    /// (simple coherence shoot-down when another agent writes).
    pub fn shootdown(&mut self, addr: u64, except_core: Option<usize>) {
        for (i, l1) in self.l1d.iter_mut().enumerate() {
            if Some(i) != except_core {
                l1.invalidate(addr);
            }
        }
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> MemSystemStats {
        let mut s = MemSystemStats {
            l2: self.l2.stats(),
            dram: self.dram.stats(),
            ..Default::default()
        };
        for c in &self.l1i {
            let cs = c.stats();
            s.l1i.hits += cs.hits;
            s.l1i.misses += cs.misses;
            s.l1i.writebacks += cs.writebacks;
        }
        for c in &self.l1d {
            let cs = c.stats();
            s.l1d.hits += cs.hits;
            s.l1d.misses += cs.misses;
            s.l1d.writebacks += cs.writebacks;
        }
        s
    }
}

impl firesim_core::snapshot::Checkpoint for MemSystem {
    fn save_state(
        &self,
        w: &mut firesim_core::snapshot::SnapshotWriter,
    ) -> firesim_core::SimResult<()> {
        w.put_usize(self.l1i.len());
        for cache in self.l1i.iter().chain(&self.l1d) {
            cache.save_state(w)?;
        }
        self.l2.save_state(w)?;
        self.dram.save_state(w)
    }

    fn restore_state(
        &mut self,
        r: &mut firesim_core::snapshot::SnapshotReader<'_>,
    ) -> firesim_core::SimResult<()> {
        let cores = r.get_usize()?;
        if cores != self.l1i.len() {
            return Err(firesim_core::SimError::checkpoint(format!(
                "memory-system snapshot has {cores} cores, target has {}",
                self.l1i.len()
            )));
        }
        for cache in self.l1i.iter_mut().chain(&mut self.l1d) {
            cache.restore_state(r)?;
        }
        self.l2.restore_state(r)?;
        self.dram.restore_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(cores: usize) -> MemSystem {
        MemSystem::new(cores, MemSystemConfig::default())
    }

    #[test]
    fn l1_hit_is_cheap() {
        let mut m = sys(1);
        let cold = m.access(0, AccessKind::Load, 0x8000_0000, 0);
        let warm = m.access(0, AccessKind::Load, 0x8000_0000, cold);
        assert_eq!(warm, m.config().l1_hit_cycles);
        assert!(cold > warm);
    }

    #[test]
    fn l2_hit_is_between_l1_and_dram() {
        let mut m = sys(2);
        // Core 0 warms the L2.
        let cold = m.access(0, AccessKind::Load, 0x8000_0000, 0);
        // Core 1 misses L1 but hits L2.
        let l2hit = m.access(1, AccessKind::Load, 0x8000_0000, cold);
        assert_eq!(l2hit, m.config().l1_hit_cycles + m.config().l2_hit_cycles);
        assert!(l2hit < cold);
        assert!(l2hit > m.config().l1_hit_cycles);
    }

    #[test]
    fn fetch_uses_l1i_independently() {
        let mut m = sys(1);
        let _ = m.access(0, AccessKind::Load, 0x8000_0000, 0);
        // Same address as a fetch still cold in L1I (but L2-hot).
        let f = m.access(0, AccessKind::Fetch, 0x8000_0000, 100);
        assert_eq!(f, m.config().l1_hit_cycles + m.config().l2_hit_cycles);
        let s = m.stats();
        assert_eq!(s.l1i.misses, 1);
        assert_eq!(s.l1d.misses, 1);
    }

    #[test]
    fn dma_bypasses_l1() {
        let mut m = sys(1);
        let _ = m.access(0, AccessKind::Dma, 0x8000_0000, 0);
        let s = m.stats();
        assert_eq!(s.l1d.accesses(), 0);
        assert_eq!(s.l1i.accesses(), 0);
        assert_eq!(s.l2.accesses(), 1);
    }

    #[test]
    fn shootdown_invalidates_other_cores() {
        let mut m = sys(2);
        let _ = m.access(0, AccessKind::Load, 0x8000_0000, 0);
        let _ = m.access(1, AccessKind::Load, 0x8000_0000, 50);
        m.shootdown(0x8000_0000, Some(0));
        // Core 0 still hits; core 1 misses again (L2 hit).
        assert_eq!(
            m.access(0, AccessKind::Load, 0x8000_0000, 100),
            m.config().l1_hit_cycles
        );
        assert_eq!(
            m.access(1, AccessKind::Load, 0x8000_0000, 100),
            m.config().l1_hit_cycles + m.config().l2_hit_cycles
        );
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = sys(0);
    }
}
