//! Run it sampled: the same blade, detailed vs sampled timing.
//!
//! ```text
//! cargo run --release --example sampled_rate
//! cargo run --release --example sampled_rate -- --windows 4096
//! ```
//!
//! Sampled mode (`TimingConfig::sampling` on a blade, or
//! `SimConfig::sampling` for a whole topology) alternates
//! detailed-timing windows with CPI-estimated fast-forward spans:
//! within each `detailed_window + fastforward` period the first part
//! runs the full timing model and the rest retires instructions at the
//! measured IPC without touching the pipeline, cache, or DRAM timing
//! state. The NIC stays cycle-exact, so network experiments keep their
//! latency semantics.
//!
//! This example runs one compute-bound blade both ways and prints the
//! host wall-clock, the simulated-cycle rate, and the sampled run's
//! IPC estimate with its 95% confidence interval next to the detailed
//! run's ground truth. See DESIGN.md §18 for the error model and
//! EXPERIMENTS.md ("Host performance — sampled timing") for committed
//! numbers.

use std::time::Instant;

use firesim_blade::{programs, BladeConfig, RtlBlade, SamplingConfig};
use firesim_core::{AgentCtx, Cycle, SimAgent, TokenWindow};
use firesim_net::MacAddr;
use firesim_riscv::asm::Assembler;
use firesim_riscv::DRAM_BASE;

const WINDOW: u32 = 3_200;

/// Compute-bound workload: an xorshift generator steering a branchy
/// detour with an L1-resident load — window-to-window IPC variance
/// without memory-warming bias (DESIGN §18).
fn compute_program() -> programs::Program {
    let mut a = Assembler::new(DRAM_BASE);
    a.li(5, 0x243F_6A88_85A3_08D3u64 as i64); // xorshift state
    a.li(6, DRAM_BASE as i64 + 0x4_0000); // 2 KiB scratch, L1-resident
    a.li(8, 0); // accumulator
    a.label("loop");
    a.slli(7, 5, 13);
    a.xor(5, 5, 7);
    a.srli(7, 5, 7);
    a.xor(5, 5, 7);
    a.slli(7, 5, 17);
    a.xor(5, 5, 7);
    a.add(8, 8, 5);
    a.andi(7, 5, 8);
    a.beq(7, 0, "skip");
    a.mul(9, 5, 8);
    a.xor(8, 8, 9);
    a.andi(29, 5, 0x7f8);
    a.add(29, 29, 6);
    a.ld(30, 29, 0);
    a.add(8, 8, 30);
    a.label("skip");
    a.andi(29, 5, 0x3f8);
    a.add(29, 29, 6);
    a.sd(8, 29, 0);
    a.j("loop");
    programs::Program {
        image: a.assemble().expect("compute program assembles"),
        dram_init: Vec::new(),
        mailbox: (programs::MAILBOX, 8),
    }
}

fn blade(sampling: Option<SamplingConfig>) -> RtlBlade {
    let mut config = BladeConfig::single_core().with_dram_bytes(1 << 20);
    config.timing.sampling = sampling;
    let mut blade = RtlBlade::new("compute", MacAddr::from_node_index(0), config);
    compute_program().install(&mut blade);
    blade
}

struct Run {
    secs: f64,
    counters: Vec<(String, u64)>,
}

fn run(mut blade: RtlBlade, windows: u64) -> Run {
    let t0 = Instant::now();
    let mut now = 0u64;
    for _ in 0..windows {
        let mut ctx =
            AgentCtx::standalone(Cycle::new(now), WINDOW, vec![TokenWindow::new(WINDOW)], 1);
        SimAgent::advance(&mut blade, &mut ctx);
        now += u64::from(WINDOW);
    }
    let secs = t0.elapsed().as_secs_f64();
    let mut counters = Vec::new();
    SimAgent::app_counters(&blade, &mut counters);
    Run { secs, counters }
}

fn counter(run: &Run, name: &str) -> u64 {
    run.counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|&(_, v)| v)
        .unwrap_or(0)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let windows: u64 = args
        .iter()
        .position(|a| a == "--windows")
        .and_then(|i| args.get(i + 1))
        .map(|w| w.parse().expect("--windows takes a number"))
        .unwrap_or(2_048);

    let sampling = SamplingConfig {
        detailed_window: 2_000,
        fastforward: 6_000,
    };

    // Warm-up pass so first-touch allocation doesn't tilt the comparison.
    run(blade(None), windows.min(128));

    let detailed = run(blade(None), windows);
    let sampled = run(blade(Some(sampling)), windows);

    let cycles = counter(&detailed, "cycles");
    assert_eq!(cycles, counter(&sampled, "cycles"), "target cycles differ");
    let detailed_ipc = counter(&detailed, "retired") * 1_000 / cycles.max(1);

    println!(
        "target cycles: {cycles} ({windows} windows of {WINDOW}); \
         sampling {}+{} (detailed quarter)",
        sampling.detailed_window, sampling.fastforward
    );
    println!(
        "detailed: {:6.2} ms  {:6.2} Mcyc/s  IPC {detailed_ipc}\u{2030}",
        detailed.secs * 1e3,
        cycles as f64 / detailed.secs / 1e6,
    );
    println!(
        "sampled:  {:6.2} ms  {:6.2} Mcyc/s  IPC est {}\u{2030} \
         (95% CI [{}\u{2030}, {}\u{2030}], {} windows)  speedup {:.2}x",
        sampled.secs * 1e3,
        cycles as f64 / sampled.secs / 1e6,
        counter(&sampled, "sampling_ipc_est_permille"),
        counter(&sampled, "sampling_ci_lo_permille"),
        counter(&sampled, "sampling_ci_hi_permille"),
        counter(&sampled, "sampling_windows"),
        detailed.secs / sampled.secs,
    );
}
