//! The page-fault accelerator case study (paper §VI, Fig 11).
//!
//! A compute node with a small fast local memory pages to a remote
//! memory blade over the simulated network. Two mechanisms are compared
//! on identical access streams: kernel-only software paging vs the
//! hardware page-fault accelerator (PFA), which handles the
//! latency-critical fetch in hardware and defers metadata management to
//! batched asynchronous processing.
//!
//! ```text
//! cargo run --release --example page_fault_accel
//! ```

use std::sync::Arc;

use parking_lot::Mutex;

use firesim_blade::model::OsConfig;
use firesim_blade::paging::{
    AccessStream, MemBlade, MemBladeConfig, PagedWorkload, PagingCosts, PagingMode, PagingStats,
};
use firesim_core::{Cycle, Frequency};
use firesim_manager::{BladeSpec, SimConfig, Topology};
use firesim_net::MacAddr;

fn run(mode: PagingMode, workload: &str, pages: u64, local: u64) -> Arc<Mutex<PagingStats>> {
    let stream = match workload {
        "genome" => AccessStream::genome(pages, 8 * pages, 7),
        _ => AccessStream::qsort(pages),
    };
    let stats_cell: Arc<Mutex<Option<Arc<Mutex<PagingStats>>>>> = Arc::new(Mutex::new(None));
    let stats_out = Arc::clone(&stats_cell);
    let stream_cell = Mutex::new(Some(stream));

    let mut topo = Topology::new();
    let tor = topo.add_switch("tor0");
    let os = OsConfig {
        cores: 1,
        ctx_switch_cycles: 0,
        misplace_prob: 0.0,
        ..OsConfig::default()
    };
    let mb_mac = MacAddr::from_node_index(1);
    let wl = topo.add_server(
        "compute",
        BladeSpec::model(os, 1, true, move |mac, _| {
            let wl = PagedWorkload::new(
                mac,
                mb_mac,
                mode,
                PagingCosts::default(),
                stream_cell.lock().take().expect("one instantiation"),
                local,
            );
            *stats_out.lock() = Some(wl.stats());
            Box::new(wl)
        }),
    );
    let mb = topo.add_server(
        "memblade",
        BladeSpec::model(os, 1, true, |mac, _| {
            Box::new(MemBlade::new(mac, MemBladeConfig::default()))
        }),
    );
    topo.add_downlinks(tor, [wl, mb]).unwrap();

    let mut sim = topo.build(SimConfig::default()).expect("valid topology");
    sim.run_until_done(Cycle::new(200_000_000_000))
        .expect("runs");
    let s = stats_cell.lock().take().expect("factory ran");
    s
}

fn main() {
    let clock = Frequency::GHZ_3_2;
    let pages = 1_024; // 4 MiB working set (the paper uses 64 MiB)
    println!("remote-memory paging: working set {pages} pages, memory blade 2us away\n");
    println!(
        "{:>8} {:>8} {:>10} {:>12} {:>8} {:>12} {:>9}",
        "workload", "local", "mode", "runtime(ms)", "faults", "metadata(ms)", "speedup"
    );
    for workload in ["genome", "qsort"] {
        for frac in [8, 4, 2] {
            let local = pages / frac;
            let sw = run(PagingMode::Software, workload, pages, local);
            let pfa = run(PagingMode::Pfa, workload, pages, local);
            let sw = sw.lock();
            let pfa = pfa.lock();
            let rt_sw = sw.runtime().unwrap();
            let rt_pfa = pfa.runtime().unwrap();
            let ms = |c: u64| clock.seconds_from_cycles(Cycle::new(c)) * 1e3;
            println!(
                "{:>8} {:>7}p {:>10} {:>12.2} {:>8} {:>12.2} {:>9}",
                workload,
                local,
                "software",
                ms(rt_sw),
                sw.faults,
                ms(sw.metadata_cycles),
                ""
            );
            println!(
                "{:>8} {:>7}p {:>10} {:>12.2} {:>8} {:>12.2} {:>8.2}x",
                workload,
                local,
                "pfa",
                ms(rt_pfa),
                pfa.faults,
                ms(pfa.metadata_cycles),
                rt_sw as f64 / rt_pfa as f64
            );
        }
        println!();
    }
    println!("expected shape (paper Fig 11): PFA up to ~1.4x faster end-to-end with");
    println!("~2.5x less metadata-management time; genome (random probes) degrades");
    println!("sharply at small local memory while qsort barely notices.");
}
