//! Quickstart: simulate a small cluster and ping across it.
//!
//! This is the FireSim "hello world": two cycle-exact RISC-V server
//! blades under a top-of-rack switch, running bare-metal programs — one
//! pings, one echoes — over a 2 microsecond, 200 Gbit/s network. The
//! measured RTTs come straight out of the simulated machine's cycle
//! counter.
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- --checkpoint-every 100000
//! cargo run --release --example quickstart -- \
//!     --checkpoint-every 100000 --inject-fault panic:pinger@250000
//! cargo run --release --example quickstart -- \
//!     --metrics-out report.json --trace-out trace.json
//! cargo run --release --example quickstart -- --workers 2 --transport shm
//! cargo run --release --example quickstart -- --stream-out - | firesim-top --once
//! ```
//!
//! `--workers N` partitions the same four-server rack across N worker
//! *processes* connected by real token transports (`--transport
//! shm|tcp|unix`): each worker simulates its shard cycle-exactly and the
//! parent merges the results — the per-agent checkpoint digests printed
//! at the end are bit-identical for any N (§III-B2's determinism claim,
//! which `tests/distributed.rs` asserts).
//!
//! With `--checkpoint-every N` the run goes through the supervisor
//! ([`firesim_manager::SupervisorConfig`]): a snapshot of every blade,
//! switch, and in-flight link token is taken each N target cycles, and a
//! host-side failure rolls back to the last snapshot instead of killing
//! the run. `--inject-fault SPEC` installs a deterministic
//! [`firesim_core::FaultPlan`]; specs:
//!
//! ```text
//! panic:AGENT@CYCLE           one-shot worker panic
//! drop:AGENT:PORT@CYCLE       one-shot input-channel drop
//! stall:AGENT@CYCLE:MILLIS    one-shot worker stall (watchdog fodder)
//! linkdown:AGENT:PORT@FROM..UNTIL          input link dead in [FROM,UNTIL)
//! flaky:AGENT:PORT@FROM..UNTIL:PERCENT     input link drops PERCENT of windows
//! ```
//!
//! `--scenario PATH` loads a declarative chaos script ([`firesim_core::Scenario`],
//! TOML or JSON) and compiles it against this topology: timed partitions,
//! per-link flakiness/degradation windows, and switch buffer-pressure
//! events, all at deterministic cycle boundaries. Committed scripts live
//! under `examples/scenarios/`; the run prints the recovery timeline the
//! scenario's link watches recorded.
//!
//! `--stream-out SPEC` publishes the live NDJSON run feed (DESIGN §17) —
//! per-interval sim-rate, per-agent activity, link occupancy, switch
//! counters, and fault/scenario events — to stdout (`-`), a file, or a
//! `tcp:`/`unix:` socket such as the `simd` daemon's ingest endpoint;
//! `firesim-top` renders it live. `--stream-interval N` sets the
//! sampling period in target cycles.
//!
//! `--metrics-out PATH` enables the engine's sharded metrics and writes a
//! machine-readable [`firesim_manager::RunReport`] (per-agent profiles,
//! per-link token occupancies, aggregated counters) as JSON, plus a human
//! summary on stdout. `--trace-out PATH` enables span tracing and writes
//! a Chrome `trace_event` JSON loadable in Perfetto or `chrome://tracing`.

use firesim_blade::programs;
use firesim_core::{Cycle, FaultPlan, Frequency, SimResult};
use firesim_manager::{
    run_partitioned, BladeSpec, PartitionConfig, SimConfig, SupervisorConfig, Topology,
    TransportChoice,
};
use firesim_net::MacAddr;

/// With `--stream-out -` the NDJSON feed owns stdout, so every
/// human-readable line must move to stderr or it would corrupt the wire
/// for piped consumers (`quickstart --stream-out - | firesim-top`).
static CHAT_TO_STDERR: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// `println!` for run chatter: stdout normally, stderr when the
/// telemetry stream has claimed stdout.
macro_rules! chat {
    ($($arg:tt)*) => {
        if CHAT_TO_STDERR.load(std::sync::atomic::Ordering::Relaxed) {
            eprintln!($($arg)*);
        } else {
            println!($($arg)*);
        }
    };
}

/// `print!`-style sibling of [`chat!`] for pre-newlined blocks.
fn chat_str(s: &str) {
    use std::io::Write;
    if CHAT_TO_STDERR.load(std::sync::atomic::Ordering::Relaxed) {
        let _ = write!(std::io::stderr(), "{s}");
    } else {
        let _ = write!(std::io::stdout(), "{s}");
    }
}

/// Target clock for every blade in the rack.
const CLOCK: Frequency = Frequency::GHZ_3_2;
/// How many pings the pinger program sends before powering off.
const PINGS: usize = 10;

/// Builds the quickstart rack: one ToR switch, a pinger, an echo server,
/// and two idle nodes — the Rust analogue of the paper's Fig 4 config.
///
/// This is the [`firesim_manager::BuildFn`] shared by the in-process run
/// and every partitioned worker process, so all of them deploy exactly
/// the same target. The `spec` string is unused here (the topology is
/// fixed) but the signature matches what `run_partitioned` forwards to
/// workers.
fn build_cluster(_spec: &str) -> SimResult<(Topology, SimConfig)> {
    let link_latency = CLOCK.cycles_from_micros(2); // the paper's default

    let mut topo = Topology::new();
    let tor = topo.add_switch("tor0");
    let pinger = topo.add_server(
        "pinger",
        BladeSpec::rtl_single_core(programs::ping_sender(
            MacAddr::from_node_index(0),
            MacAddr::from_node_index(1),
            PINGS,
            56,
            CLOCK.cycles_from_micros(20).as_u64(),
        )),
    );
    let echo = topo.add_server(
        "echo",
        BladeSpec::rtl_single_core(programs::echo_responder(PINGS)),
    );
    topo.add_downlinks(tor, [pinger, echo])
        .expect("fresh switch has free ports");
    for i in 0..2 {
        let idle = topo.add_server(
            format!("idle{i}"),
            BladeSpec::rtl_single_core(programs::boot_poweroff(100)),
        );
        topo.add_downlink(tor, idle)
            .expect("fresh switch has free ports");
    }
    let config = SimConfig {
        link_latency,
        ..SimConfig::default()
    };
    Ok((topo, config))
}

struct Options {
    checkpoint_every: Option<u64>,
    faults: Vec<String>,
    scenario: Option<String>,
    metrics_out: Option<std::path::PathBuf>,
    trace_out: Option<std::path::PathBuf>,
    workers: Option<usize>,
    transport: TransportChoice,
    cycles: u64,
    stream_out: Option<String>,
    stream_interval: u64,
}

fn parse_args() -> Options {
    let mut opts = Options {
        checkpoint_every: None,
        faults: Vec::new(),
        scenario: None,
        metrics_out: None,
        trace_out: None,
        workers: None,
        transport: TransportChoice::Shm,
        cycles: 2_000_000,
        stream_out: None,
        stream_interval: firesim_manager::stream::DEFAULT_STREAM_INTERVAL,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--workers" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => opts.workers = Some(n),
                    _ => die(&format!("--workers needs a positive count, got {v:?}")),
                }
            }
            "--transport" => {
                let v = args.next().unwrap_or_default();
                match TransportChoice::parse(&v) {
                    Ok(t) => opts.transport = t,
                    Err(_) => die(&format!("--transport must be shm|tcp|unix, got {v:?}")),
                }
            }
            "--cycles" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => opts.cycles = n,
                    _ => die(&format!("--cycles needs a positive cycle count, got {v:?}")),
                }
            }
            "--checkpoint-every" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => opts.checkpoint_every = Some(n),
                    _ => die(&format!(
                        "--checkpoint-every needs a positive cycle count, got {v:?}"
                    )),
                }
            }
            "--inject-fault" => match args.next() {
                Some(spec) => opts.faults.push(spec),
                None => die("--inject-fault needs a spec (e.g. panic:pinger@250000)"),
            },
            "--scenario" => match args.next() {
                Some(path) => opts.scenario = Some(path),
                None => die(
                    "--scenario needs a script path (e.g. examples/scenarios/partition_heal.toml)",
                ),
            },
            "--metrics-out" => match args.next() {
                Some(path) => opts.metrics_out = Some(path.into()),
                None => die("--metrics-out needs a file path (e.g. report.json)"),
            },
            "--trace-out" => match args.next() {
                Some(path) => opts.trace_out = Some(path.into()),
                None => die("--trace-out needs a file path (e.g. trace.json)"),
            },
            "--stream-out" => match args.next() {
                Some(spec) => opts.stream_out = Some(spec),
                None => die(
                    "--stream-out needs a sink spec: '-' for stdout, a file path, \
                     tcp:HOST:PORT, or unix:PATH",
                ),
            },
            "--stream-interval" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => opts.stream_interval = n,
                    _ => die(&format!(
                        "--stream-interval needs a positive cycle count, got {v:?}"
                    )),
                }
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    opts
}

const USAGE: &str = "\
usage: quickstart [OPTIONS]

  --checkpoint-every N     supervised run: snapshot every N target cycles
  --inject-fault SPEC      install a deterministic fault (repeatable);
                           e.g. panic:pinger@250000
  --scenario PATH          load a chaos scenario script (TOML or JSON);
                           see examples/scenarios/
  --metrics-out PATH       enable metrics; write the RunReport JSON to PATH
  --trace-out PATH         enable span tracing; write Chrome trace JSON to PATH
  --workers N              partition the rack across N worker processes
  --transport shm|tcp|unix token transport between workers (default shm)
  --cycles N               target cycles to simulate (default 2000000)
  --stream-out SPEC        stream live NDJSON telemetry (DESIGN §17) to
                           '-' (stdout), a file path, tcp:HOST:PORT, or
                           unix:PATH (e.g. the simd daemon); view with
                           firesim-top
  --stream-interval N      telemetry sampling interval in target cycles
                           (default 100000)
  --help                   print this help";

fn die(msg: &str) -> ! {
    eprintln!("quickstart: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Parses `panic:AGENT@CYCLE`-style fault specs into a [`FaultPlan`].
fn parse_faults(specs: &[String]) -> FaultPlan {
    let mut plan = FaultPlan::new(0xF1BE);
    for spec in specs {
        let (kind, rest) = spec
            .split_once(':')
            .unwrap_or_else(|| die(&format!("bad fault spec {spec:?} (missing ':')")));
        let bad = || -> ! { die(&format!("bad fault spec {spec:?}")) };
        let num = |s: &str| s.parse::<u64>().unwrap_or_else(|_| bad());
        match kind {
            "panic" => {
                let (agent, at) = rest.split_once('@').unwrap_or_else(|| bad());
                plan.panic_at(agent, num(at));
            }
            "drop" => {
                let (agent, rest) = rest.split_once(':').unwrap_or_else(|| bad());
                let (port, at) = rest.split_once('@').unwrap_or_else(|| bad());
                plan.drop_channel(agent, num(port) as usize, num(at));
            }
            "stall" => {
                let (agent, rest) = rest.split_once('@').unwrap_or_else(|| bad());
                let (at, millis) = rest.split_once(':').unwrap_or_else(|| bad());
                plan.stall_worker(agent, num(at), num(millis));
            }
            "linkdown" => {
                let (agent, rest) = rest.split_once(':').unwrap_or_else(|| bad());
                let (port, span) = rest.split_once('@').unwrap_or_else(|| bad());
                let (from, until) = span.split_once("..").unwrap_or_else(|| bad());
                plan.link_down(agent, num(port) as usize, num(from), num(until));
            }
            "flaky" => {
                let (agent, rest) = rest.split_once(':').unwrap_or_else(|| bad());
                let (port, rest) = rest.split_once('@').unwrap_or_else(|| bad());
                let (span, pct) = rest.rsplit_once(':').unwrap_or_else(|| bad());
                let (from, until) = span.split_once("..").unwrap_or_else(|| bad());
                plan.link_flaky(
                    agent,
                    num(port) as usize,
                    num(from),
                    num(until),
                    num(pct) as u8,
                );
            }
            _ => bad(),
        }
    }
    plan
}

/// Runs the rack partitioned across `workers` processes and prints the
/// per-agent checkpoint digests the parent merged back together.
fn run_distributed(opts: &Options) -> ! {
    let mut cfg = PartitionConfig::new(
        opts.workers.unwrap_or(1),
        Cycle::new(opts.cycles),
        String::new(),
    );
    cfg.transport = opts.transport;
    cfg.scenario = opts.scenario.clone();
    cfg.stream = opts.stream_out.clone();
    cfg.stream_interval = Some(opts.stream_interval);
    chat!(
        "partitioning across {} worker(s) over {} transport",
        cfg.workers,
        cfg.transport.as_str()
    );
    match run_partitioned(build_cluster, &cfg) {
        Ok(run) => {
            chat!(
                "simulated {} target cycles in {:?} across {} process(es)",
                run.cycles.as_u64(),
                run.wall,
                run.workers
            );
            for (name, digest) in &run.digests {
                chat!("  digest {name:<8} {digest:016x}");
            }
            chat!("combined digest: {:016x}", run.combined_digest);
            chat_str(&run.report.human_summary());
            std::process::exit(0);
        }
        Err(report) => {
            eprintln!("{report}");
            std::process::exit(1);
        }
    }
}

fn main() {
    // Worker processes re-exec this binary; hand them their shard first.
    if firesim_manager::maybe_worker(build_cluster) {
        return;
    }
    let opts = parse_args();
    if opts.stream_out.as_deref() == Some("-") {
        CHAT_TO_STDERR.store(true, std::sync::atomic::Ordering::Relaxed);
    }
    if opts.workers.is_some() {
        run_distributed(&opts);
    }
    let clock = CLOCK;
    let pings = PINGS;

    // Build ("deploy") and run.
    let (topo, config) = build_cluster("").expect("topology is valid");
    let link_latency = config.link_latency;
    // Compile the scenario against the topology's neutral view before
    // `build` consumes it; apply after build.
    let scenario = opts.scenario.as_ref().map(|path| {
        firesim_core::Scenario::load(path)
            .and_then(|s| s.compile(&topo.scenario_topology()))
            .unwrap_or_else(|e| die(&format!("--scenario {path}: {e}")))
    });
    let mut sim = topo.build(config).expect("topology is valid");
    chat!("deployed: {} servers — {}", sim.servers().len(), sim.plan());
    if let Some(sc) = &scenario {
        sim.apply_scenario(sc)
            .unwrap_or_else(|e| die(&e.to_string()));
        chat!(
            "scenario applied: {} link-effect window(s), {} pressured switch(es)",
            sc.link_effects().len(),
            sc.pressured_switches().len()
        );
    }

    if opts.metrics_out.is_some() {
        sim.enable_metrics();
    }
    let tracer = opts.trace_out.as_ref().map(|_| sim.enable_tracing());

    if !opts.faults.is_empty() {
        let plan = parse_faults(&opts.faults);
        chat!(
            "fault plan installed: {} fault(s), seed {:#x}",
            plan.len(),
            plan.seed()
        );
        sim.set_fault_plan(plan);
    }

    // A clean run powers off well under 1M cycles; the cap only matters
    // when an injected target fault eats frames the bare-metal ping
    // program would otherwise spin on forever.
    let max = Cycle::new(opts.cycles);
    if opts.stream_out.is_some() && (opts.checkpoint_every.is_some() || !opts.faults.is_empty()) {
        die("--stream-out rides the plain and --workers paths; it does not combine with the supervised (--checkpoint-every / --inject-fault) path");
    }
    let (cycles, wall) = if opts.checkpoint_every.is_some() || !opts.faults.is_empty() {
        // Supervised path: periodic snapshots, retry-from-checkpoint on
        // injected (or real) host-side failures.
        let cfg = SupervisorConfig {
            checkpoint_every: Cycle::new(opts.checkpoint_every.unwrap_or(1_000_000)),
            ..SupervisorConfig::default()
        };
        match sim.run_supervised(max, &cfg) {
            Ok(run) => {
                chat!(
                    "supervised run: {} checkpoint(s), {} retry(ies), {} injected fault(s)",
                    run.checkpoints,
                    run.retries,
                    run.injected_faults.len()
                );
                for f in &run.injected_faults {
                    chat!(
                        "  injected: {} at cycle {}: {}",
                        f.agent,
                        f.cycle,
                        f.description
                    );
                }
                (run.cycles, run.wall)
            }
            Err(report) => {
                eprintln!("{report}");
                std::process::exit(1);
            }
        }
    } else if let Some(spec) = &opts.stream_out {
        // Streamed path: advance in interval-sized legs, sampling the
        // run feed (DESIGN §17) at each quiescent boundary. Stops at
        // the first interval boundary where every agent is done — the
        // streamed analogue of `run_until_done`.
        sim.enable_metrics();
        let writer = firesim_manager::StreamWriter::open(spec)
            .unwrap_or_else(|e| die(&format!("--stream-out {spec}: {e}")));
        let meta = firesim_manager::StreamMeta {
            run_id: None,
            spec: "quickstart".to_owned(),
            workers: 1,
            transport: None,
        };
        let streamed =
            firesim_manager::run_streamed(&mut sim, writer, &meta, max, opts.stream_interval, true)
                .expect("simulation runs");
        chat!(
            "streamed {} interval record(s) to {spec}",
            streamed.intervals
        );
        (streamed.cycles, streamed.wall)
    } else {
        let summary = sim.run_until_done(max).expect("simulation runs");
        (summary.cycles, summary.wall)
    };
    chat!(
        "simulated {} target cycles in {:?} ({:.2} MHz)",
        cycles.as_u64(),
        wall,
        cycles.as_u64() as f64 / 1e6 / wall.as_secs_f64().max(1e-9)
    );

    if scenario.is_some() {
        if let Some(tl) = sim.fault_timeline() {
            chat!(
                "\nrecovery timeline ({}-cycle buckets on watched links):",
                tl.interval
            );
            for p in &tl.points {
                chat!(
                    "  [{:>8}] delivered={:<6} dropped={:<5} masked={}",
                    p.start,
                    p.delivered,
                    p.dropped,
                    p.masked
                );
            }
            for (cycle, label) in &tl.events {
                chat!("  @{cycle}: {label}");
            }
        }
    }

    // Write observability artifacts before inspecting results, so they
    // exist even when a fault run exits nonzero below.
    if let Some(path) = &opts.metrics_out {
        let report = sim.run_report(wall);
        std::fs::write(path, report.to_json()).expect("write run report");
        chat!("\nrun report written to {}", path.display());
        chat_str(&report.human_summary());
    }
    if let (Some(path), Some(tracer)) = (&opts.trace_out, &tracer) {
        tracer.write_chrome_trace(path).expect("write trace");
        chat!(
            "trace written to {} ({} spans) — load in Perfetto or chrome://tracing",
            path.display(),
            tracer.len()
        );
    }

    // Read the RTTs out of the pinger's mailbox.
    let probe = sim.servers()[0].probe.as_ref().expect("rtl blade");
    let p = probe.lock();
    if p.exit_code != Some(0) {
        // A target-side fault (linkdown/flaky) genuinely loses frames in
        // the simulated network; the bare-metal pinger has no retransmit,
        // so it spins until the cycle cap. The mailbox is only captured
        // at power-off, so report the NIC's view of what got through.
        chat!(
            "\npinger never powered off — an injected target fault lost \
             frames it was waiting on (NIC: {} pings sent, {} replies \
             received); exit={:?}",
            p.nic.tx_packets,
            p.nic.rx_packets,
            p.exit_code
        );
        std::process::exit(1);
    }
    chat!("\nping 10.0.0.1 -> 10.0.0.2 ({} pings):", pings);
    for i in 0..pings {
        let rtt = u64::from_le_bytes(p.mailbox[i * 8..i * 8 + 8].try_into().unwrap());
        chat!(
            "  seq={}  rtt={:.3} us ({} cycles)",
            i,
            clock.micros_from_cycles(Cycle::new(rtt)),
            rtt
        );
    }
    let ideal = 4 * link_latency.as_u64() + 2 * 10;
    chat!(
        "\nideal RTT (4 links + 2 switch traversals): {:.3} us",
        clock.micros_from_cycles(Cycle::new(ideal))
    );
    for (name, stats) in sim.switch_stats() {
        let s = stats.lock();
        chat!(
            "switch {name}: {} frames forwarded, {} bytes",
            s.frames_forwarded,
            s.ingress_bytes
        );
    }
}
