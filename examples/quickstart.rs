//! Quickstart: simulate a small cluster and ping across it.
//!
//! This is the FireSim "hello world": two cycle-exact RISC-V server
//! blades under a top-of-rack switch, running bare-metal programs — one
//! pings, one echoes — over a 2 microsecond, 200 Gbit/s network. The
//! measured RTTs come straight out of the simulated machine's cycle
//! counter.
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- --checkpoint-every 100000
//! cargo run --release --example quickstart -- \
//!     --checkpoint-every 100000 --inject-fault panic:pinger@250000
//! cargo run --release --example quickstart -- \
//!     --metrics-out report.json --trace-out trace.json
//! cargo run --release --example quickstart -- --workers 2 --transport shm
//! ```
//!
//! `--workers N` partitions the same four-server rack across N worker
//! *processes* connected by real token transports (`--transport
//! shm|tcp|unix`): each worker simulates its shard cycle-exactly and the
//! parent merges the results — the per-agent checkpoint digests printed
//! at the end are bit-identical for any N (§III-B2's determinism claim,
//! which `tests/distributed.rs` asserts).
//!
//! With `--checkpoint-every N` the run goes through the supervisor
//! ([`firesim_manager::SupervisorConfig`]): a snapshot of every blade,
//! switch, and in-flight link token is taken each N target cycles, and a
//! host-side failure rolls back to the last snapshot instead of killing
//! the run. `--inject-fault SPEC` installs a deterministic
//! [`firesim_core::FaultPlan`]; specs:
//!
//! ```text
//! panic:AGENT@CYCLE           one-shot worker panic
//! drop:AGENT:PORT@CYCLE       one-shot input-channel drop
//! stall:AGENT@CYCLE:MILLIS    one-shot worker stall (watchdog fodder)
//! linkdown:AGENT:PORT@FROM..UNTIL          input link dead in [FROM,UNTIL)
//! flaky:AGENT:PORT@FROM..UNTIL:PERCENT     input link drops PERCENT of windows
//! ```
//!
//! `--scenario PATH` loads a declarative chaos script ([`firesim_core::Scenario`],
//! TOML or JSON) and compiles it against this topology: timed partitions,
//! per-link flakiness/degradation windows, and switch buffer-pressure
//! events, all at deterministic cycle boundaries. Committed scripts live
//! under `examples/scenarios/`; the run prints the recovery timeline the
//! scenario's link watches recorded.
//!
//! `--metrics-out PATH` enables the engine's sharded metrics and writes a
//! machine-readable [`firesim_manager::RunReport`] (per-agent profiles,
//! per-link token occupancies, aggregated counters) as JSON, plus a human
//! summary on stdout. `--trace-out PATH` enables span tracing and writes
//! a Chrome `trace_event` JSON loadable in Perfetto or `chrome://tracing`.

use firesim_blade::programs;
use firesim_core::{Cycle, FaultPlan, Frequency, SimResult};
use firesim_manager::{
    run_partitioned, BladeSpec, PartitionConfig, SimConfig, SupervisorConfig, Topology,
    TransportChoice,
};
use firesim_net::MacAddr;

/// Target clock for every blade in the rack.
const CLOCK: Frequency = Frequency::GHZ_3_2;
/// How many pings the pinger program sends before powering off.
const PINGS: usize = 10;

/// Builds the quickstart rack: one ToR switch, a pinger, an echo server,
/// and two idle nodes — the Rust analogue of the paper's Fig 4 config.
///
/// This is the [`firesim_manager::BuildFn`] shared by the in-process run
/// and every partitioned worker process, so all of them deploy exactly
/// the same target. The `spec` string is unused here (the topology is
/// fixed) but the signature matches what `run_partitioned` forwards to
/// workers.
fn build_cluster(_spec: &str) -> SimResult<(Topology, SimConfig)> {
    let link_latency = CLOCK.cycles_from_micros(2); // the paper's default

    let mut topo = Topology::new();
    let tor = topo.add_switch("tor0");
    let pinger = topo.add_server(
        "pinger",
        BladeSpec::rtl_single_core(programs::ping_sender(
            MacAddr::from_node_index(0),
            MacAddr::from_node_index(1),
            PINGS,
            56,
            CLOCK.cycles_from_micros(20).as_u64(),
        )),
    );
    let echo = topo.add_server(
        "echo",
        BladeSpec::rtl_single_core(programs::echo_responder(PINGS)),
    );
    topo.add_downlinks(tor, [pinger, echo])
        .expect("fresh switch has free ports");
    for i in 0..2 {
        let idle = topo.add_server(
            format!("idle{i}"),
            BladeSpec::rtl_single_core(programs::boot_poweroff(100)),
        );
        topo.add_downlink(tor, idle)
            .expect("fresh switch has free ports");
    }
    let config = SimConfig {
        link_latency,
        ..SimConfig::default()
    };
    Ok((topo, config))
}

struct Options {
    checkpoint_every: Option<u64>,
    faults: Vec<String>,
    scenario: Option<String>,
    metrics_out: Option<std::path::PathBuf>,
    trace_out: Option<std::path::PathBuf>,
    workers: Option<usize>,
    transport: TransportChoice,
    cycles: u64,
}

fn parse_args() -> Options {
    let mut opts = Options {
        checkpoint_every: None,
        faults: Vec::new(),
        scenario: None,
        metrics_out: None,
        trace_out: None,
        workers: None,
        transport: TransportChoice::Shm,
        cycles: 2_000_000,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--workers" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => opts.workers = Some(n),
                    _ => die(&format!("--workers needs a positive count, got {v:?}")),
                }
            }
            "--transport" => {
                let v = args.next().unwrap_or_default();
                match TransportChoice::parse(&v) {
                    Ok(t) => opts.transport = t,
                    Err(_) => die(&format!("--transport must be shm|tcp|unix, got {v:?}")),
                }
            }
            "--cycles" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => opts.cycles = n,
                    _ => die(&format!("--cycles needs a positive cycle count, got {v:?}")),
                }
            }
            "--checkpoint-every" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => opts.checkpoint_every = Some(n),
                    _ => die(&format!(
                        "--checkpoint-every needs a positive cycle count, got {v:?}"
                    )),
                }
            }
            "--inject-fault" => match args.next() {
                Some(spec) => opts.faults.push(spec),
                None => die("--inject-fault needs a spec (e.g. panic:pinger@250000)"),
            },
            "--scenario" => match args.next() {
                Some(path) => opts.scenario = Some(path),
                None => die(
                    "--scenario needs a script path (e.g. examples/scenarios/partition_heal.toml)",
                ),
            },
            "--metrics-out" => match args.next() {
                Some(path) => opts.metrics_out = Some(path.into()),
                None => die("--metrics-out needs a file path (e.g. report.json)"),
            },
            "--trace-out" => match args.next() {
                Some(path) => opts.trace_out = Some(path.into()),
                None => die("--trace-out needs a file path (e.g. trace.json)"),
            },
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    opts
}

const USAGE: &str = "\
usage: quickstart [OPTIONS]

  --checkpoint-every N     supervised run: snapshot every N target cycles
  --inject-fault SPEC      install a deterministic fault (repeatable);
                           e.g. panic:pinger@250000
  --scenario PATH          load a chaos scenario script (TOML or JSON);
                           see examples/scenarios/
  --metrics-out PATH       enable metrics; write the RunReport JSON to PATH
  --trace-out PATH         enable span tracing; write Chrome trace JSON to PATH
  --workers N              partition the rack across N worker processes
  --transport shm|tcp|unix token transport between workers (default shm)
  --cycles N               target cycles to simulate (default 2000000)
  --help                   print this help";

fn die(msg: &str) -> ! {
    eprintln!("quickstart: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

/// Parses `panic:AGENT@CYCLE`-style fault specs into a [`FaultPlan`].
fn parse_faults(specs: &[String]) -> FaultPlan {
    let mut plan = FaultPlan::new(0xF1BE);
    for spec in specs {
        let (kind, rest) = spec
            .split_once(':')
            .unwrap_or_else(|| die(&format!("bad fault spec {spec:?} (missing ':')")));
        let bad = || -> ! { die(&format!("bad fault spec {spec:?}")) };
        let num = |s: &str| s.parse::<u64>().unwrap_or_else(|_| bad());
        match kind {
            "panic" => {
                let (agent, at) = rest.split_once('@').unwrap_or_else(|| bad());
                plan.panic_at(agent, num(at));
            }
            "drop" => {
                let (agent, rest) = rest.split_once(':').unwrap_or_else(|| bad());
                let (port, at) = rest.split_once('@').unwrap_or_else(|| bad());
                plan.drop_channel(agent, num(port) as usize, num(at));
            }
            "stall" => {
                let (agent, rest) = rest.split_once('@').unwrap_or_else(|| bad());
                let (at, millis) = rest.split_once(':').unwrap_or_else(|| bad());
                plan.stall_worker(agent, num(at), num(millis));
            }
            "linkdown" => {
                let (agent, rest) = rest.split_once(':').unwrap_or_else(|| bad());
                let (port, span) = rest.split_once('@').unwrap_or_else(|| bad());
                let (from, until) = span.split_once("..").unwrap_or_else(|| bad());
                plan.link_down(agent, num(port) as usize, num(from), num(until));
            }
            "flaky" => {
                let (agent, rest) = rest.split_once(':').unwrap_or_else(|| bad());
                let (port, rest) = rest.split_once('@').unwrap_or_else(|| bad());
                let (span, pct) = rest.rsplit_once(':').unwrap_or_else(|| bad());
                let (from, until) = span.split_once("..").unwrap_or_else(|| bad());
                plan.link_flaky(
                    agent,
                    num(port) as usize,
                    num(from),
                    num(until),
                    num(pct) as u8,
                );
            }
            _ => bad(),
        }
    }
    plan
}

/// Runs the rack partitioned across `workers` processes and prints the
/// per-agent checkpoint digests the parent merged back together.
fn run_distributed(opts: &Options) -> ! {
    let mut cfg = PartitionConfig::new(
        opts.workers.unwrap_or(1),
        Cycle::new(opts.cycles),
        String::new(),
    );
    cfg.transport = opts.transport;
    cfg.scenario = opts.scenario.clone();
    println!(
        "partitioning across {} worker(s) over {} transport",
        cfg.workers,
        cfg.transport.as_str()
    );
    match run_partitioned(build_cluster, &cfg) {
        Ok(run) => {
            println!(
                "simulated {} target cycles in {:?} across {} process(es)",
                run.cycles.as_u64(),
                run.wall,
                run.workers
            );
            for (name, digest) in &run.digests {
                println!("  digest {name:<8} {digest:016x}");
            }
            println!("combined digest: {:016x}", run.combined_digest);
            print!("{}", run.report.human_summary());
            std::process::exit(0);
        }
        Err(report) => {
            eprintln!("{report}");
            std::process::exit(1);
        }
    }
}

fn main() {
    // Worker processes re-exec this binary; hand them their shard first.
    if firesim_manager::maybe_worker(build_cluster) {
        return;
    }
    let opts = parse_args();
    if opts.workers.is_some() {
        run_distributed(&opts);
    }
    let clock = CLOCK;
    let pings = PINGS;

    // Build ("deploy") and run.
    let (topo, config) = build_cluster("").expect("topology is valid");
    let link_latency = config.link_latency;
    // Compile the scenario against the topology's neutral view before
    // `build` consumes it; apply after build.
    let scenario = opts.scenario.as_ref().map(|path| {
        firesim_core::Scenario::load(path)
            .and_then(|s| s.compile(&topo.scenario_topology()))
            .unwrap_or_else(|e| die(&format!("--scenario {path}: {e}")))
    });
    let mut sim = topo.build(config).expect("topology is valid");
    println!("deployed: {} servers — {}", sim.servers().len(), sim.plan());
    if let Some(sc) = &scenario {
        sim.apply_scenario(sc)
            .unwrap_or_else(|e| die(&e.to_string()));
        println!(
            "scenario applied: {} link-effect window(s), {} pressured switch(es)",
            sc.link_effects().len(),
            sc.pressured_switches().len()
        );
    }

    if opts.metrics_out.is_some() {
        sim.enable_metrics();
    }
    let tracer = opts.trace_out.as_ref().map(|_| sim.enable_tracing());

    if !opts.faults.is_empty() {
        let plan = parse_faults(&opts.faults);
        println!(
            "fault plan installed: {} fault(s), seed {:#x}",
            plan.len(),
            plan.seed()
        );
        sim.set_fault_plan(plan);
    }

    // A clean run powers off well under 1M cycles; the cap only matters
    // when an injected target fault eats frames the bare-metal ping
    // program would otherwise spin on forever.
    let max = Cycle::new(opts.cycles);
    let (cycles, wall) = if opts.checkpoint_every.is_some() || !opts.faults.is_empty() {
        // Supervised path: periodic snapshots, retry-from-checkpoint on
        // injected (or real) host-side failures.
        let cfg = SupervisorConfig {
            checkpoint_every: Cycle::new(opts.checkpoint_every.unwrap_or(1_000_000)),
            ..SupervisorConfig::default()
        };
        match sim.run_supervised(max, &cfg) {
            Ok(run) => {
                println!(
                    "supervised run: {} checkpoint(s), {} retry(ies), {} injected fault(s)",
                    run.checkpoints,
                    run.retries,
                    run.injected_faults.len()
                );
                for f in &run.injected_faults {
                    println!(
                        "  injected: {} at cycle {}: {}",
                        f.agent, f.cycle, f.description
                    );
                }
                (run.cycles, run.wall)
            }
            Err(report) => {
                eprintln!("{report}");
                std::process::exit(1);
            }
        }
    } else {
        let summary = sim.run_until_done(max).expect("simulation runs");
        (summary.cycles, summary.wall)
    };
    println!(
        "simulated {} target cycles in {:?} ({:.2} MHz)",
        cycles.as_u64(),
        wall,
        cycles.as_u64() as f64 / 1e6 / wall.as_secs_f64().max(1e-9)
    );

    if scenario.is_some() {
        if let Some(tl) = sim.fault_timeline() {
            println!(
                "\nrecovery timeline ({}-cycle buckets on watched links):",
                tl.interval
            );
            for p in &tl.points {
                println!(
                    "  [{:>8}] delivered={:<6} dropped={:<5} masked={}",
                    p.start, p.delivered, p.dropped, p.masked
                );
            }
            for (cycle, label) in &tl.events {
                println!("  @{cycle}: {label}");
            }
        }
    }

    // Write observability artifacts before inspecting results, so they
    // exist even when a fault run exits nonzero below.
    if let Some(path) = &opts.metrics_out {
        let report = sim.run_report(wall);
        std::fs::write(path, report.to_json()).expect("write run report");
        println!("\nrun report written to {}", path.display());
        print!("{}", report.human_summary());
    }
    if let (Some(path), Some(tracer)) = (&opts.trace_out, &tracer) {
        tracer.write_chrome_trace(path).expect("write trace");
        println!(
            "trace written to {} ({} spans) — load in Perfetto or chrome://tracing",
            path.display(),
            tracer.len()
        );
    }

    // Read the RTTs out of the pinger's mailbox.
    let probe = sim.servers()[0].probe.as_ref().expect("rtl blade");
    let p = probe.lock();
    if p.exit_code != Some(0) {
        // A target-side fault (linkdown/flaky) genuinely loses frames in
        // the simulated network; the bare-metal pinger has no retransmit,
        // so it spins until the cycle cap. The mailbox is only captured
        // at power-off, so report the NIC's view of what got through.
        println!(
            "\npinger never powered off — an injected target fault lost \
             frames it was waiting on (NIC: {} pings sent, {} replies \
             received); exit={:?}",
            p.nic.tx_packets, p.nic.rx_packets, p.exit_code
        );
        std::process::exit(1);
    }
    println!("\nping 10.0.0.1 -> 10.0.0.2 ({} pings):", pings);
    for i in 0..pings {
        let rtt = u64::from_le_bytes(p.mailbox[i * 8..i * 8 + 8].try_into().unwrap());
        println!(
            "  seq={}  rtt={:.3} us ({} cycles)",
            i,
            clock.micros_from_cycles(Cycle::new(rtt)),
            rtt
        );
    }
    let ideal = 4 * link_latency.as_u64() + 2 * 10;
    println!(
        "\nideal RTT (4 links + 2 switch traversals): {:.3} us",
        clock.micros_from_cycles(Cycle::new(ideal))
    );
    for (name, stats) in sim.switch_stats() {
        let s = stats.lock();
        println!(
            "switch {name}: {} frames forwarded, {} bytes",
            s.frames_forwarded, s.ingress_bytes
        );
    }
}
