//! Quickstart: simulate a small cluster and ping across it.
//!
//! This is the FireSim "hello world": two cycle-exact RISC-V server
//! blades under a top-of-rack switch, running bare-metal programs — one
//! pings, one echoes — over a 2 microsecond, 200 Gbit/s network. The
//! measured RTTs come straight out of the simulated machine's cycle
//! counter.
//!
//! ```text
//! cargo run --release --example quickstart
//! cargo run --release --example quickstart -- --checkpoint-every 100000
//! cargo run --release --example quickstart -- \
//!     --checkpoint-every 100000 --inject-fault panic:pinger@250000
//! cargo run --release --example quickstart -- \
//!     --metrics-out report.json --trace-out trace.json
//! ```
//!
//! With `--checkpoint-every N` the run goes through the supervisor
//! ([`firesim_manager::SupervisorConfig`]): a snapshot of every blade,
//! switch, and in-flight link token is taken each N target cycles, and a
//! host-side failure rolls back to the last snapshot instead of killing
//! the run. `--inject-fault SPEC` installs a deterministic
//! [`firesim_core::FaultPlan`]; specs:
//!
//! ```text
//! panic:AGENT@CYCLE           one-shot worker panic
//! drop:AGENT:PORT@CYCLE       one-shot input-channel drop
//! stall:AGENT@CYCLE:MILLIS    one-shot worker stall (watchdog fodder)
//! linkdown:AGENT:PORT@FROM..UNTIL          input link dead in [FROM,UNTIL)
//! flaky:AGENT:PORT@FROM..UNTIL:PERCENT     input link drops PERCENT of windows
//! ```
//!
//! `--metrics-out PATH` enables the engine's sharded metrics and writes a
//! machine-readable [`firesim_manager::RunReport`] (per-agent profiles,
//! per-link token occupancies, aggregated counters) as JSON, plus a human
//! summary on stdout. `--trace-out PATH` enables span tracing and writes
//! a Chrome `trace_event` JSON loadable in Perfetto or `chrome://tracing`.

use firesim_blade::programs;
use firesim_core::{Cycle, FaultPlan, Frequency};
use firesim_manager::{BladeSpec, SimConfig, SupervisorConfig, Topology};
use firesim_net::MacAddr;

struct Options {
    checkpoint_every: Option<u64>,
    faults: Vec<String>,
    metrics_out: Option<std::path::PathBuf>,
    trace_out: Option<std::path::PathBuf>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        checkpoint_every: None,
        faults: Vec::new(),
        metrics_out: None,
        trace_out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--checkpoint-every" => {
                let v = args.next().unwrap_or_default();
                match v.parse::<u64>() {
                    Ok(n) if n > 0 => opts.checkpoint_every = Some(n),
                    _ => die(&format!(
                        "--checkpoint-every needs a positive cycle count, got {v:?}"
                    )),
                }
            }
            "--inject-fault" => match args.next() {
                Some(spec) => opts.faults.push(spec),
                None => die("--inject-fault needs a spec (e.g. panic:pinger@250000)"),
            },
            "--metrics-out" => match args.next() {
                Some(path) => opts.metrics_out = Some(path.into()),
                None => die("--metrics-out needs a file path (e.g. report.json)"),
            },
            "--trace-out" => match args.next() {
                Some(path) => opts.trace_out = Some(path.into()),
                None => die("--trace-out needs a file path (e.g. trace.json)"),
            },
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    opts
}

fn die(msg: &str) -> ! {
    eprintln!("quickstart: {msg}");
    eprintln!(
        "usage: quickstart [--checkpoint-every N] [--inject-fault SPEC]... \
         [--metrics-out PATH] [--trace-out PATH]"
    );
    std::process::exit(2);
}

/// Parses `panic:AGENT@CYCLE`-style fault specs into a [`FaultPlan`].
fn parse_faults(specs: &[String]) -> FaultPlan {
    let mut plan = FaultPlan::new(0xF1BE);
    for spec in specs {
        let (kind, rest) = spec
            .split_once(':')
            .unwrap_or_else(|| die(&format!("bad fault spec {spec:?} (missing ':')")));
        let bad = || -> ! { die(&format!("bad fault spec {spec:?}")) };
        let num = |s: &str| s.parse::<u64>().unwrap_or_else(|_| bad());
        match kind {
            "panic" => {
                let (agent, at) = rest.split_once('@').unwrap_or_else(|| bad());
                plan.panic_at(agent, num(at));
            }
            "drop" => {
                let (agent, rest) = rest.split_once(':').unwrap_or_else(|| bad());
                let (port, at) = rest.split_once('@').unwrap_or_else(|| bad());
                plan.drop_channel(agent, num(port) as usize, num(at));
            }
            "stall" => {
                let (agent, rest) = rest.split_once('@').unwrap_or_else(|| bad());
                let (at, millis) = rest.split_once(':').unwrap_or_else(|| bad());
                plan.stall_worker(agent, num(at), num(millis));
            }
            "linkdown" => {
                let (agent, rest) = rest.split_once(':').unwrap_or_else(|| bad());
                let (port, span) = rest.split_once('@').unwrap_or_else(|| bad());
                let (from, until) = span.split_once("..").unwrap_or_else(|| bad());
                plan.link_down(agent, num(port) as usize, num(from), num(until));
            }
            "flaky" => {
                let (agent, rest) = rest.split_once(':').unwrap_or_else(|| bad());
                let (port, rest) = rest.split_once('@').unwrap_or_else(|| bad());
                let (span, pct) = rest.rsplit_once(':').unwrap_or_else(|| bad());
                let (from, until) = span.split_once("..").unwrap_or_else(|| bad());
                plan.link_flaky(
                    agent,
                    num(port) as usize,
                    num(from),
                    num(until),
                    num(pct) as u8,
                );
            }
            _ => bad(),
        }
    }
    plan
}

fn main() {
    let opts = parse_args();
    let clock = Frequency::GHZ_3_2;
    let pings = 10;
    let link_latency = clock.cycles_from_micros(2); // the paper's default

    // Describe the target: one ToR switch, a pinger, an echo server, and
    // two idle nodes — the Rust analogue of the paper's Fig 4 config.
    let mut topo = Topology::new();
    let tor = topo.add_switch("tor0");
    let pinger = topo.add_server(
        "pinger",
        BladeSpec::rtl_single_core(programs::ping_sender(
            MacAddr::from_node_index(0),
            MacAddr::from_node_index(1),
            pings,
            56,
            clock.cycles_from_micros(20).as_u64(),
        )),
    );
    let echo = topo.add_server(
        "echo",
        BladeSpec::rtl_single_core(programs::echo_responder(pings)),
    );
    topo.add_downlinks(tor, [pinger, echo]).unwrap();
    for i in 0..2 {
        let idle = topo.add_server(
            format!("idle{i}"),
            BladeSpec::rtl_single_core(programs::boot_poweroff(100)),
        );
        topo.add_downlink(tor, idle).unwrap();
    }

    // Build ("deploy") and run.
    let mut sim = topo
        .build(SimConfig {
            link_latency,
            ..SimConfig::default()
        })
        .expect("topology is valid");
    println!("deployed: {} servers — {}", sim.servers().len(), sim.plan());

    if opts.metrics_out.is_some() {
        sim.enable_metrics();
    }
    let tracer = opts.trace_out.as_ref().map(|_| sim.enable_tracing());

    if !opts.faults.is_empty() {
        let plan = parse_faults(&opts.faults);
        println!(
            "fault plan installed: {} fault(s), seed {:#x}",
            plan.len(),
            plan.seed()
        );
        sim.set_fault_plan(plan);
    }

    // A clean run powers off well under 1M cycles; the cap only matters
    // when an injected target fault eats frames the bare-metal ping
    // program would otherwise spin on forever.
    let max = Cycle::new(2_000_000);
    let (cycles, wall) = if opts.checkpoint_every.is_some() || !opts.faults.is_empty() {
        // Supervised path: periodic snapshots, retry-from-checkpoint on
        // injected (or real) host-side failures.
        let cfg = SupervisorConfig {
            checkpoint_every: Cycle::new(opts.checkpoint_every.unwrap_or(1_000_000)),
            ..SupervisorConfig::default()
        };
        match sim.run_supervised(max, &cfg) {
            Ok(run) => {
                println!(
                    "supervised run: {} checkpoint(s), {} retry(ies), {} injected fault(s)",
                    run.checkpoints,
                    run.retries,
                    run.injected_faults.len()
                );
                for f in &run.injected_faults {
                    println!(
                        "  injected: {} at cycle {}: {}",
                        f.agent, f.cycle, f.description
                    );
                }
                (run.cycles, run.wall)
            }
            Err(report) => {
                eprintln!("{report}");
                std::process::exit(1);
            }
        }
    } else {
        let summary = sim.run_until_done(max).expect("simulation runs");
        (summary.cycles, summary.wall)
    };
    println!(
        "simulated {} target cycles in {:?} ({:.2} MHz)",
        cycles.as_u64(),
        wall,
        cycles.as_u64() as f64 / 1e6 / wall.as_secs_f64().max(1e-9)
    );

    // Write observability artifacts before inspecting results, so they
    // exist even when a fault run exits nonzero below.
    if let Some(path) = &opts.metrics_out {
        let report = sim.run_report(wall);
        std::fs::write(path, report.to_json()).expect("write run report");
        println!("\nrun report written to {}", path.display());
        print!("{}", report.human_summary());
    }
    if let (Some(path), Some(tracer)) = (&opts.trace_out, &tracer) {
        tracer.write_chrome_trace(path).expect("write trace");
        println!(
            "trace written to {} ({} spans) — load in Perfetto or chrome://tracing",
            path.display(),
            tracer.len()
        );
    }

    // Read the RTTs out of the pinger's mailbox.
    let probe = sim.servers()[0].probe.as_ref().expect("rtl blade");
    let p = probe.lock();
    if p.exit_code != Some(0) {
        // A target-side fault (linkdown/flaky) genuinely loses frames in
        // the simulated network; the bare-metal pinger has no retransmit,
        // so it spins until the cycle cap. The mailbox is only captured
        // at power-off, so report the NIC's view of what got through.
        println!(
            "\npinger never powered off — an injected target fault lost \
             frames it was waiting on (NIC: {} pings sent, {} replies \
             received); exit={:?}",
            p.nic.tx_packets, p.nic.rx_packets, p.exit_code
        );
        std::process::exit(1);
    }
    println!("\nping 10.0.0.1 -> 10.0.0.2 ({} pings):", pings);
    for i in 0..pings {
        let rtt = u64::from_le_bytes(p.mailbox[i * 8..i * 8 + 8].try_into().unwrap());
        println!(
            "  seq={}  rtt={:.3} us ({} cycles)",
            i,
            clock.micros_from_cycles(Cycle::new(rtt)),
            rtt
        );
    }
    let ideal = 4 * link_latency.as_u64() + 2 * 10;
    println!(
        "\nideal RTT (4 links + 2 switch traversals): {:.3} us",
        clock.micros_from_cycles(Cycle::new(ideal))
    );
    for (name, stats) in sim.switch_stats() {
        let s = stats.lock();
        println!(
            "switch {name}: {} frames forwarded, {} bytes",
            s.frames_forwarded, s.ingress_bytes
        );
    }
}
