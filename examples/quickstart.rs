//! Quickstart: simulate a small cluster and ping across it.
//!
//! This is the FireSim "hello world": two cycle-exact RISC-V server
//! blades under a top-of-rack switch, running bare-metal programs — one
//! pings, one echoes — over a 2 microsecond, 200 Gbit/s network. The
//! measured RTTs come straight out of the simulated machine's cycle
//! counter.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use firesim_blade::programs;
use firesim_core::{Cycle, Frequency};
use firesim_manager::{BladeSpec, SimConfig, Topology};
use firesim_net::MacAddr;

fn main() {
    let clock = Frequency::GHZ_3_2;
    let pings = 10;
    let link_latency = clock.cycles_from_micros(2); // the paper's default

    // Describe the target: one ToR switch, a pinger, an echo server, and
    // two idle nodes — the Rust analogue of the paper's Fig 4 config.
    let mut topo = Topology::new();
    let tor = topo.add_switch("tor0");
    let pinger = topo.add_server(
        "pinger",
        BladeSpec::rtl_single_core(programs::ping_sender(
            MacAddr::from_node_index(0),
            MacAddr::from_node_index(1),
            pings,
            56,
            clock.cycles_from_micros(20).as_u64(),
        )),
    );
    let echo = topo.add_server(
        "echo",
        BladeSpec::rtl_single_core(programs::echo_responder(pings)),
    );
    topo.add_downlinks(tor, [pinger, echo]).unwrap();
    for i in 0..2 {
        let idle = topo.add_server(
            format!("idle{i}"),
            BladeSpec::rtl_single_core(programs::boot_poweroff(100)),
        );
        topo.add_downlink(tor, idle).unwrap();
    }

    // Build ("deploy") and run.
    let mut sim = topo
        .build(SimConfig {
            link_latency,
            ..SimConfig::default()
        })
        .expect("topology is valid");
    println!("deployed: {} servers — {}", sim.servers().len(), sim.plan());
    let summary = sim
        .run_until_done(Cycle::new(200_000_000))
        .expect("simulation runs");
    println!(
        "simulated {} target cycles in {:?} ({:.2} MHz)",
        summary.cycles.as_u64(),
        summary.wall,
        summary.sim_rate_mhz()
    );

    // Read the RTTs out of the pinger's mailbox.
    let probe = sim.servers()[0].probe.as_ref().expect("rtl blade");
    let p = probe.lock();
    assert_eq!(p.exit_code, Some(0), "pinger finished");
    println!("\nping 10.0.0.1 -> 10.0.0.2 ({} pings):", pings);
    for i in 0..pings {
        let rtt = u64::from_le_bytes(p.mailbox[i * 8..i * 8 + 8].try_into().unwrap());
        println!(
            "  seq={}  rtt={:.3} us ({} cycles)",
            i,
            clock.micros_from_cycles(Cycle::new(rtt)),
            rtt
        );
    }
    let ideal = 4 * link_latency.as_u64() + 2 * 10;
    println!(
        "\nideal RTT (4 links + 2 switch traversals): {:.3} us",
        clock.micros_from_cycles(Cycle::new(ideal))
    );
    for (name, stats) in sim.switch_stats() {
        let s = stats.lock();
        println!(
            "switch {name}: {} frames forwarded, {} bytes",
            s.frames_forwarded, s.ingress_bytes
        );
    }
}
