//! A memcached cluster under mutilate load (the paper's §IV-E setup).
//!
//! One 4-core server node runs a memcached-style KV service with either
//! 4 or 5 worker threads; seven load-generator nodes drive a Poisson
//! request stream through a ToR switch. With 5 threads on 4 cores, tail
//! latency inflates while the median barely moves — the thread-imbalance
//! phenomenon of Fig 7 (after Leverich & Kozyrakis).
//!
//! ```text
//! cargo run --release --example memcached_cluster
//! ```

use std::sync::Arc;

use parking_lot::Mutex;

use firesim_blade::model::OsConfig;
use firesim_blade::services::{KvServer, KvServerConfig, Mutilate, MutilateConfig, MutilateStats};
use firesim_core::stats::Histogram;
use firesim_core::{Cycle, Frequency};
use firesim_manager::{BladeSpec, SimConfig, Topology};
use firesim_net::MacAddr;

fn run_case(threads: usize, pinned: bool, qps: f64) -> (f64, f64) {
    let clock = Frequency::GHZ_3_2;
    let clients = 7;
    let requests = 400;

    let mut topo = Topology::new();
    let tor = topo.add_switch("tor0");
    let server_cfg = KvServerConfig {
        threads,
        ..KvServerConfig::default()
    };
    let server = topo.add_server(
        "memcached",
        BladeSpec::model(
            OsConfig {
                cores: 4,
                ..OsConfig::default()
            },
            threads,
            pinned,
            move |mac, _| Box::new(KvServer::new(mac, server_cfg)),
        ),
    );
    topo.add_downlink(tor, server).unwrap();

    let all_stats: Arc<Mutex<Vec<Arc<Mutex<MutilateStats>>>>> = Arc::new(Mutex::new(Vec::new()));
    for i in 0..clients {
        let sink = Arc::clone(&all_stats);
        let cfg = MutilateConfig {
            server: MacAddr::from_node_index(0),
            qps: qps / clients as f64,
            requests,
            seed: 100 + i,
            ..MutilateConfig::default()
        };
        let node = topo.add_server(
            format!("mutilate{i}"),
            BladeSpec::model(
                OsConfig {
                    cores: 4,
                    seed: i,
                    ..OsConfig::default()
                },
                1,
                true,
                move |mac, _| {
                    let m = Mutilate::new(mac, cfg);
                    sink.lock().push(m.stats());
                    Box::new(m)
                },
            ),
        );
        topo.add_downlink(tor, node).unwrap();
    }

    let mut sim = topo.build(SimConfig::default()).expect("valid topology");
    sim.run_until_done(Cycle::new(30_000_000_000))
        .expect("runs");

    let mut merged = Histogram::new("latency");
    for h in all_stats.lock().iter() {
        merged.merge(&h.lock().latency);
    }
    let p50 = clock.micros_from_cycles(Cycle::new(merged.percentile(50.0).unwrap_or(0)));
    let p95 = clock.micros_from_cycles(Cycle::new(merged.percentile(95.0).unwrap_or(0)));
    (p50, p95)
}

fn main() {
    println!("memcached on a 4-core node, 7 mutilate load generators, 2us network\n");
    println!(
        "{:>22} {:>12} {:>10} {:>10}",
        "configuration", "target QPS", "p50 (us)", "p95 (us)"
    );
    for qps in [150_000.0, 250_000.0, 350_000.0] {
        for (threads, pinned, label) in [
            (4, false, "4 threads"),
            (5, false, "5 threads"),
            (4, true, "4 threads pinned"),
        ] {
            let (p50, p95) = run_case(threads, pinned, qps);
            println!("{label:>22} {qps:>12.0} {p50:>10.1} {p95:>10.1}");
        }
        println!();
    }
    println!("expected shape (paper Fig 7): the 5-thread p95 exceeds the pinned");
    println!("4-thread p95 at every load while the medians stay together.");
}
