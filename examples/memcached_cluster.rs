//! A memcached cluster under mutilate load (the paper's §IV-E setup).
//!
//! One 4-core server node runs a memcached-style KV service with either
//! 4 or 5 worker threads; seven load-generator nodes drive a Poisson
//! request stream through a ToR switch. With 5 threads on 4 cores, tail
//! latency inflates while the median barely moves — the thread-imbalance
//! phenomenon of Fig 7 (after Leverich & Kozyrakis).
//!
//! ```text
//! cargo run --release --example memcached_cluster
//! cargo run --release --example memcached_cluster -- --partition-heal
//! cargo run --release --example memcached_cluster -- --scenario my_chaos.toml
//! ```
//!
//! `--partition-heal` runs the chaos experiment instead of the latency
//! sweep: the committed `examples/scenarios/memcached_partition.toml`
//! script cuts three of the seven load generators off the rack inside
//! [60M, 120M) cycles and heals them. The run prints the recovery curve
//! the scenario's link watches recorded — offered load on the cut links
//! drops to zero during the partition (the open-loop generators keep
//! sending; those frames count as `masked`) and returns to the pre-fault
//! rate after the heal. The example fails if the post-heal bucket
//! average is not within 5% of the pre-fault average. `--scenario PATH`
//! runs the same experiment with your own script. Add `--stream-out
//! SPEC` to watch the dip-and-recover curve live on the NDJSON
//! telemetry feed (DESIGN §17) with `firesim-top`.

use std::sync::Arc;

use parking_lot::Mutex;

use firesim_blade::model::OsConfig;
use firesim_blade::services::{KvServer, KvServerConfig, Mutilate, MutilateConfig, MutilateStats};
use firesim_core::stats::Histogram;
use firesim_core::{Cycle, Frequency, Scenario};
use firesim_manager::{BladeSpec, SimConfig, Topology};
use firesim_net::MacAddr;

/// The committed partition-and-heal script, compiled against this
/// example's topology by `--partition-heal`.
const PARTITION_SCRIPT: &str = include_str!("scenarios/memcached_partition.toml");

/// With `--stream-out -` the NDJSON feed owns stdout, so the chaos
/// run's human-readable lines move to stderr for piped consumers
/// (`memcached_cluster --partition-heal --stream-out - | firesim-top`).
static CHAT_TO_STDERR: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// `println!` for run chatter: stdout normally, stderr when the
/// telemetry stream has claimed stdout.
macro_rules! chat {
    ($($arg:tt)*) => {
        if CHAT_TO_STDERR.load(std::sync::atomic::Ordering::Relaxed) {
            eprintln!($($arg)*);
        } else {
            println!($($arg)*);
        }
    };
}

type SharedStats = Arc<Mutex<Vec<Arc<Mutex<MutilateStats>>>>>;

/// Builds the rack: one KV server blade and seven mutilate load
/// generators under a ToR switch. Returns the topology plus a handle to
/// every generator's stats.
fn build_cluster(threads: usize, pinned: bool, qps: f64, requests: u64) -> (Topology, SharedStats) {
    let clients = 7;

    let mut topo = Topology::new();
    let tor = topo.add_switch("tor0");
    let server_cfg = KvServerConfig {
        threads,
        ..KvServerConfig::default()
    };
    let server = topo.add_server(
        "memcached",
        BladeSpec::model(
            OsConfig {
                cores: 4,
                ..OsConfig::default()
            },
            threads,
            pinned,
            move |mac, _| Box::new(KvServer::new(mac, server_cfg)),
        ),
    );
    topo.add_downlink(tor, server).unwrap();

    let all_stats: SharedStats = Arc::new(Mutex::new(Vec::new()));
    for i in 0..clients {
        let sink = Arc::clone(&all_stats);
        let cfg = MutilateConfig {
            server: MacAddr::from_node_index(0),
            qps: qps / clients as f64,
            requests,
            seed: 100 + i,
            ..MutilateConfig::default()
        };
        let node = topo.add_server(
            format!("mutilate{i}"),
            BladeSpec::model(
                OsConfig {
                    cores: 4,
                    seed: i,
                    ..OsConfig::default()
                },
                1,
                true,
                move |mac, _| {
                    let m = Mutilate::new(mac, cfg);
                    sink.lock().push(m.stats());
                    Box::new(m)
                },
            ),
        );
        topo.add_downlink(tor, node).unwrap();
    }
    (topo, all_stats)
}

fn run_case(threads: usize, pinned: bool, qps: f64) -> (f64, f64) {
    let clock = Frequency::GHZ_3_2;
    let (topo, all_stats) = build_cluster(threads, pinned, qps, 400);
    let mut sim = topo.build(SimConfig::default()).expect("valid topology");
    sim.run_until_done(Cycle::new(30_000_000_000))
        .expect("runs");

    let mut merged = Histogram::new("latency");
    for h in all_stats.lock().iter() {
        merged.merge(&h.lock().latency);
    }
    let p50 = clock.micros_from_cycles(Cycle::new(merged.percentile(50.0).unwrap_or(0)));
    let p95 = clock.micros_from_cycles(Cycle::new(merged.percentile(95.0).unwrap_or(0)));
    (p50, p95)
}

fn die(msg: &str) -> ! {
    eprintln!("memcached_cluster: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

const USAGE: &str = "\
usage: memcached_cluster [OPTIONS]

  (no options)             run the Fig 7 thread-imbalance latency sweep
  --partition-heal         run the partition-and-heal chaos experiment with
                           the committed examples/scenarios/memcached_partition.toml
  --scenario PATH          run the chaos experiment with your own script
  --stream-out SPEC        stream the chaos run's live NDJSON telemetry
                           (DESIGN §17) to '-', a file, tcp:HOST:PORT, or
                           unix:PATH; the partition/heal annotations and
                           the throughput dip appear as they happen
  --help                   print this help";

/// Runs the partition-and-heal experiment: apply the scenario, run a
/// fixed horizon, and check the recovery curve — throughput on the cut
/// links must dip during the partition and return to within 5% of the
/// pre-fault average afterwards.
fn run_partition_heal(path: Option<&str>, stream_out: Option<&str>) -> ! {
    let horizon = 200_000_000u64;
    let qps = 350_000.0; // total across the seven generators
    let scenario = match path {
        Some(p) => Scenario::load(p).unwrap_or_else(|e| die(&format!("--scenario {p}: {e}"))),
        None => Scenario::parse(PARTITION_SCRIPT).expect("committed script parses"),
    };
    // The experiment spans 200M cycles; give each generator enough
    // requests that its Poisson stream never runs dry.
    let (topo, _stats) = build_cluster(4, true, qps, 4_000);
    let compiled = scenario
        .compile(&topo.scenario_topology())
        .unwrap_or_else(|e| die(&e.to_string()));
    let (from, until) = scenario
        .events
        .iter()
        .map(|e| (e.from, e.until))
        .reduce(|(f, u), (f2, u2)| (f.min(f2), u.max(u2)))
        .unwrap_or_else(|| die("scenario has no events — nothing to recover from"));
    let interval = compiled.interval().max(1);

    let mut sim = topo.build(SimConfig::default()).expect("valid topology");
    sim.apply_scenario(&compiled)
        .unwrap_or_else(|e| die(&e.to_string()));
    chat!(
        "scenario {:?}: {} link-effect window(s), fault window [{from}, {until})",
        scenario.name,
        compiled.link_effects().len()
    );
    chat!("running {horizon} target cycles at {qps:.0} total QPS...\n");
    match stream_out {
        // Streamed: the partition, the throughput dip, and the heal show
        // up live on the NDJSON feed (scenario annotations become
        // `event` records; switch/agent deltas trace the dip), while the
        // run itself advances in interval-sized legs that are
        // digest-identical to the single `run_for` below.
        Some(spec) => {
            sim.enable_metrics();
            let writer = firesim_manager::StreamWriter::open(spec)
                .unwrap_or_else(|e| die(&format!("--stream-out {spec}: {e}")));
            let meta = firesim_manager::StreamMeta {
                run_id: None,
                spec: "memcached_cluster --partition-heal".to_owned(),
                workers: 1,
                transport: None,
            };
            let streamed = firesim_manager::run_streamed(
                &mut sim,
                writer,
                &meta,
                Cycle::new(horizon),
                interval,
                false,
            )
            .expect("runs");
            chat!(
                "streamed {} interval record(s) to {spec}",
                streamed.intervals
            );
        }
        None => {
            sim.run_for(Cycle::new(horizon)).expect("runs");
        }
    }

    let tl = sim
        .fault_timeline()
        .unwrap_or_else(|| die("scenario watches no links (set a nonzero `interval`)"));
    let peak = tl
        .points
        .iter()
        .map(|p| p.delivered)
        .max()
        .unwrap_or(1)
        .max(1);
    chat!("frames on the cut links per {interval}-cycle bucket:");
    for p in &tl.points {
        let bar = "#".repeat((p.delivered * 40 / peak) as usize);
        chat!(
            "  [{:>11}] delivered={:<5} masked={:<5} {bar}",
            p.start,
            p.delivered,
            p.masked
        );
    }
    for (cycle, label) in &tl.events {
        chat!("  @{cycle}: {label}");
    }

    // Pre-fault buckets fully before the partition (skip the warm-up
    // bucket at 0); post-heal buckets fully after it.
    let avg = |points: Vec<u64>| points.iter().sum::<u64>() as f64 / points.len().max(1) as f64;
    let pre = avg(tl
        .points
        .iter()
        .filter(|p| p.start > 0 && p.start + interval <= from)
        .map(|p| p.delivered)
        .collect());
    let during = avg(tl
        .points
        .iter()
        .filter(|p| p.start >= from && p.start + interval <= until)
        .map(|p| p.delivered)
        .collect());
    let post = avg(tl
        .points
        .iter()
        .filter(|p| p.start >= until && p.start + interval <= horizon)
        .map(|p| p.delivered)
        .collect());
    let recovery = (post - pre).abs() / pre.max(1.0);
    chat!(
        "\npre-fault avg {pre:.0} frames/bucket, during partition {during:.0}, \
         post-heal {post:.0} ({:+.1}% vs pre-fault)",
        (post - pre) / pre.max(1.0) * 100.0
    );
    if during > pre * 0.5 {
        eprintln!("FAIL: no throughput dip during the partition window");
        std::process::exit(1);
    }
    if recovery > 0.05 {
        eprintln!("FAIL: post-heal throughput did not return to within 5% of pre-fault");
        std::process::exit(1);
    }
    chat!("recovered: post-heal throughput within 5% of pre-fault");
    std::process::exit(0);
}

fn main() {
    let mut scenario_path: Option<String> = None;
    let mut partition_heal = false;
    let mut stream_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            "--partition-heal" => partition_heal = true,
            "--scenario" => match args.next() {
                Some(path) => scenario_path = Some(path),
                None => die("--scenario needs a script path"),
            },
            "--stream-out" => match args.next() {
                Some(spec) => stream_out = Some(spec),
                None => die("--stream-out needs a sink spec: '-', a file path, \
                     tcp:HOST:PORT, or unix:PATH"),
            },
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    if stream_out.as_deref() == Some("-") {
        CHAT_TO_STDERR.store(true, std::sync::atomic::Ordering::Relaxed);
    }
    if partition_heal || scenario_path.is_some() {
        run_partition_heal(scenario_path.as_deref(), stream_out.as_deref());
    }
    if stream_out.is_some() {
        die("--stream-out rides the chaos experiment; combine it with --partition-heal or --scenario");
    }

    println!("memcached on a 4-core node, 7 mutilate load generators, 2us network\n");
    println!(
        "{:>22} {:>12} {:>10} {:>10}",
        "configuration", "target QPS", "p50 (us)", "p95 (us)"
    );
    for qps in [150_000.0, 250_000.0, 350_000.0] {
        for (threads, pinned, label) in [
            (4, false, "4 threads"),
            (5, false, "5 threads"),
            (4, true, "4 threads pinned"),
        ] {
            let (p50, p95) = run_case(threads, pinned, qps);
            println!("{label:>22} {qps:>12.0} {p50:>10.1} {p95:>10.1}");
        }
        println!();
    }
    println!("expected shape (paper Fig 7): the 5-thread p95 exceeds the pinned");
    println!("4-thread p95 at every load while the medians stay together.");
}
