//! The 1024-node datacenter simulation (paper §V-C, Fig 10).
//!
//! Builds the full tree — 32 nodes per ToR switch, 8 ToRs per
//! aggregation switch, 4 aggregation switches, one root — with ~10 lines
//! of topology code, prints the EC2 deployment plan and its cost, and
//! runs a short memcached burst across the root switch with 512 servers
//! and 512 load generators.
//!
//! ```text
//! cargo run --release --example datacenter_1024
//! ```

use std::sync::Arc;

use parking_lot::Mutex;

use firesim_blade::model::OsConfig;
use firesim_blade::services::{KvServer, KvServerConfig, Mutilate, MutilateConfig, MutilateStats};
use firesim_core::stats::Histogram;
use firesim_core::{Cycle, Frequency};
use firesim_manager::{BladeSpec, SimConfig, Topology};
use firesim_net::MacAddr;

fn main() {
    let clock = Frequency::GHZ_3_2;
    let requests = 40; // short burst; raise for longer runs

    // ~10 lines of topology code for 1024 nodes (Fig 10), half servers,
    // half load generators, paired across the root switch.
    let stats: Arc<Mutex<Vec<Arc<Mutex<MutilateStats>>>>> = Arc::new(Mutex::new(Vec::new()));
    let mut topo = Topology::new();
    let root = topo.add_switch("root");
    let mut tors = Vec::new();
    for a in 0..4 {
        let agg = topo.add_switch(format!("agg{a}"));
        topo.add_downlink(root, agg).unwrap();
        for t in 0..8 {
            let tor = topo.add_switch(format!("tor{a}_{t}"));
            topo.add_downlink(agg, tor).unwrap();
            tors.push(tor);
        }
    }
    // Servers on ToRs 0..16, clients on ToRs 16..32: requests cross the
    // root ("cross-datacenter" in Table III).
    let os = OsConfig {
        cores: 4,
        ..OsConfig::default()
    };
    let mut count = 0u64;
    for (ti, &tor) in tors.iter().enumerate().take(16) {
        for _ in 0..32 {
            let node = topo.add_server(
                format!("kv{count}"),
                BladeSpec::model(os, 4, true, move |mac, _| {
                    Box::new(KvServer::new(mac, KvServerConfig::default()))
                }),
            );
            topo.add_downlink(tor, node).unwrap();
            count += 1;
        }
        let _ = ti;
    }
    let servers = count;
    for (ci, &tor) in tors.iter().enumerate().skip(16) {
        for j in 0..32 {
            let pair = ((ci - 16) * 32 + j) as u64;
            let sink = Arc::clone(&stats);
            let cfg = MutilateConfig {
                server: MacAddr::from_node_index(pair),
                qps: 10_000.0,
                requests,
                seed: 7_000 + pair,
                max_outstanding: 4,
                ..MutilateConfig::default()
            };
            let node = topo.add_server(
                format!("gen{pair}"),
                BladeSpec::model(os, 1, true, move |mac, _| {
                    let m = Mutilate::new(mac, cfg);
                    sink.lock().push(m.stats());
                    Box::new(m)
                }),
            );
            topo.add_downlink(tor, node).unwrap();
        }
    }
    println!(
        "topology: {} servers + {} loadgens, {} switches",
        servers,
        topo.server_count() as u64 - servers,
        topo.switch_count()
    );

    let threads = std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(2).max(1))
        .unwrap_or(4);
    let mut sim = topo
        .build(SimConfig {
            supernode: true,
            host_threads: threads,
            ..SimConfig::default()
        })
        .expect("valid topology");
    println!("\n{}", sim.plan());

    let start = std::time::Instant::now();
    let summary = sim
        .run_until_done(Cycle::new(60_000_000_000))
        .expect("simulation runs");
    println!(
        "\nsimulated {:.2} ms of target time in {:.1?} ({:.3} MHz, {} host threads)",
        clock.seconds_from_cycles(summary.cycles) * 1e3,
        start.elapsed(),
        summary.sim_rate_mhz(),
        summary.host_threads
    );

    let mut merged = Histogram::new("latency");
    let mut received = 0u64;
    for h in stats.lock().iter() {
        let s = h.lock();
        merged.merge(&s.latency);
        received += s.received;
    }
    println!(
        "cross-datacenter memcached: {} responses, p50 {:.1} us, p95 {:.1} us",
        received,
        clock.micros_from_cycles(Cycle::new(merged.percentile(50.0).unwrap_or(0))),
        clock.micros_from_cycles(Cycle::new(merged.percentile(95.0).unwrap_or(0))),
    );
    let (_, root_stats) = &sim.switch_stats()[0];
    println!(
        "root switch: {} frames forwarded",
        root_stats.lock().frames_forwarded
    );
}
