//! The 1024-node datacenter simulation (paper §V-C, Fig 10), now driven
//! through the fleet controller.
//!
//! Builds the full tree — 32 nodes per ToR switch, 8 ToRs per
//! aggregation switch, 4 aggregation switches, one root — with ~10 lines
//! of topology code, asks [`firesim_manager::FleetSpec`] to place it on
//! the paper's EC2 fleet (32 f1.16xlarge + 5 m4.16xlarge), prints the
//! placement and its modeled $/simulated-hour, and runs a memcached
//! burst across the root switch.
//!
//! ```text
//! cargo run --release --example datacenter_1024
//! cargo run --release --example datacenter_1024 -- --placement-only
//! cargo run --release --example datacenter_1024 -- --placement-only --spot
//! cargo run --release --example datacenter_1024 -- \
//!     --workers 4 --cycles 200000 --qps 200000
//! cargo run --release --example datacenter_1024 -- \
//!     --repartition --cycles 200000 --qps 200000
//! ```
//!
//! `--workers N` folds the 37-host placement onto N worker *processes*
//! (host h -> worker h*N/37, preserving co-location) and executes it
//! with real token transports; the merged report carries the modeled
//! cost. `--repartition` is the CI smoke for checkpointed
//! repartitioning: a 4-way load-aware run checkpoints mid-way, the
//! merged `FSCKPT01` checkpoint restores into a 2-way deployment, and
//! both must land on the digests of an uninterrupted run.

use std::sync::Arc;

use parking_lot::Mutex;

use firesim_blade::model::OsConfig;
use firesim_blade::services::{KvServer, KvServerConfig, Mutilate, MutilateConfig, MutilateStats};
use firesim_core::stats::Histogram;
use firesim_core::{Cycle, Frequency, SimError, SimResult};
use firesim_manager::{
    run_partitioned, BladeSpec, FleetSpec, LoadProfile, PartitionConfig, PlacementPlan, SimConfig,
    Topology, TransportChoice,
};
use firesim_net::MacAddr;

type StatsSink = Arc<Mutex<Vec<Arc<Mutex<MutilateStats>>>>>;

#[derive(Clone, Copy)]
struct Dims {
    aggs: usize,
    tors_per_agg: usize,
    nodes_per_tor: usize,
    requests: usize,
    qps: f64,
}

impl Dims {
    fn spec(&self) -> String {
        format!(
            "dc={}x{}x{},requests={},qps={}",
            self.aggs, self.tors_per_agg, self.nodes_per_tor, self.requests, self.qps
        )
    }

    fn parse(spec: &str) -> SimResult<Dims> {
        let bad = || SimError::topology(format!("bad datacenter spec {spec:?}"));
        let mut dims = None;
        let mut requests = 40usize;
        let mut qps = 10_000.0f64;
        for part in spec.split(',') {
            let (key, value) = part.split_once('=').ok_or_else(bad)?;
            match key {
                "dc" => {
                    let mut it = value.split('x').map(str::parse::<usize>);
                    let mut next = || it.next().and_then(Result::ok).ok_or_else(bad);
                    dims = Some((next()?, next()?, next()?));
                }
                "requests" => requests = value.parse().map_err(|_| bad())?,
                "qps" => qps = value.parse().map_err(|_| bad())?,
                _ => return Err(bad()),
            }
        }
        let (aggs, tors_per_agg, nodes_per_tor) = dims.ok_or_else(bad)?;
        if aggs * tors_per_agg % 2 != 0 {
            return Err(SimError::topology(
                "datacenter needs an even ToR count to pair servers with loadgens",
            ));
        }
        Ok(Dims {
            aggs,
            tors_per_agg,
            nodes_per_tor,
            requests,
            qps,
        })
    }
}

/// Builds the datacenter tree: servers (memcached) on the first half of
/// the ToRs, load generators on the second half, paired across the root
/// switch ("cross-datacenter" in Table III). `stats` collects each
/// generator's latency histogram when the caller runs in-process; worker
/// processes pass `None` and read results from the merged report.
fn datacenter_topology(dims: Dims, stats: Option<&StatsSink>) -> Topology {
    let mut topo = Topology::new();
    let root = topo.add_switch("root");
    let mut tors = Vec::new();
    for a in 0..dims.aggs {
        let agg = topo.add_switch(format!("agg{a}"));
        topo.add_downlink(root, agg).unwrap();
        for t in 0..dims.tors_per_agg {
            let tor = topo.add_switch(format!("tor{a}_{t}"));
            topo.add_downlink(agg, tor).unwrap();
            tors.push(tor);
        }
    }
    let os = OsConfig {
        cores: 4,
        ..OsConfig::default()
    };
    let half = tors.len() / 2;
    let mut count = 0u64;
    for &tor in tors.iter().take(half) {
        for _ in 0..dims.nodes_per_tor {
            let node = topo.add_server(
                format!("kv{count}"),
                BladeSpec::model(os, 4, true, move |mac, _| {
                    Box::new(KvServer::new(mac, KvServerConfig::default()))
                }),
            );
            topo.add_downlink(tor, node).unwrap();
            count += 1;
        }
    }
    for (ci, &tor) in tors.iter().enumerate().skip(half) {
        for j in 0..dims.nodes_per_tor {
            let pair = ((ci - half) * dims.nodes_per_tor + j) as u64;
            let cfg = MutilateConfig {
                server: MacAddr::from_node_index(pair),
                qps: dims.qps,
                requests: dims.requests as u64,
                seed: 7_000 + pair,
                max_outstanding: 4,
                ..MutilateConfig::default()
            };
            let sink = stats.map(Arc::clone);
            let node = topo.add_server(
                format!("gen{pair}"),
                BladeSpec::model(os, 1, true, move |mac, _| {
                    let m = Mutilate::new(mac, cfg);
                    if let Some(sink) = &sink {
                        sink.lock().push(m.stats());
                    }
                    Box::new(m)
                }),
            );
            topo.add_downlink(tor, node).unwrap();
        }
    }
    topo
}

/// `BuildFn` for partitioned runs: no host-side stats sink, no supernode
/// packing (incompatible with multi-process sharding), a few compute
/// threads per worker.
fn build_datacenter(spec: &str) -> SimResult<(Topology, SimConfig)> {
    let dims = Dims::parse(spec)?;
    let topo = datacenter_topology(dims, None);
    let config = SimConfig {
        host_threads: 4,
        ..SimConfig::default()
    };
    Ok((topo, config))
}

/// Places the datacenter on the paper's EC2 fleet and prints the plan.
fn place(dims: Dims, spot: bool) -> PlacementPlan {
    let fleet = if spot {
        FleetSpec::ec2_spot()
    } else {
        FleetSpec::ec2_default()
    };
    let topo = datacenter_topology(dims, None);
    let placement = fleet
        .place(&topo, &LoadProfile::uniform(), Cycle::new(6_400))
        .unwrap_or_else(|e| die(&format!("placement failed: {e}")));
    print!("{}", placement.describe());
    placement
}

struct Options {
    dims: Dims,
    placement_only: bool,
    spot: bool,
    workers: Option<usize>,
    transport: TransportChoice,
    cycles: u64,
    repartition: bool,
}

const USAGE: &str = "\
usage: datacenter_1024 [OPTIONS]

  --placement-only         print the EC2 placement and cost model, then exit
  --spot                   price the fleet at spot instead of on-demand
  --workers N              execute the placement folded onto N worker
                           processes (N <= modeled host count)
  --transport shm|tcp|unix token transport between workers (default shm)
  --cycles N               target cycles for partitioned runs (default 200000)
  --repartition            smoke: 4-way run checkpoints mid-way, restores
                           into 2 workers, digests must match a straight run
  --aggs N                 aggregation switches (default 4)
  --tors N                 ToR switches per aggregation switch (default 8)
  --nodes N                nodes per ToR (default 32)
  --requests N             memcached requests per load generator (default 40)
  --qps Q                  offered load per generator (default 10000)
  --help                   print this help";

fn die(msg: &str) -> ! {
    eprintln!("datacenter_1024: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        dims: Dims {
            aggs: 4,
            tors_per_agg: 8,
            nodes_per_tor: 32,
            requests: 40,
            qps: 10_000.0,
        },
        placement_only: false,
        spot: false,
        workers: None,
        transport: TransportChoice::Shm,
        cycles: 200_000,
        repartition: false,
    };
    let mut args = std::env::args().skip(1);
    let num = |v: Option<String>, what: &str| -> u64 {
        let v = v.unwrap_or_default();
        v.parse()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or_else(|| die(&format!("{what} needs a positive number, got {v:?}")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            "--placement-only" => opts.placement_only = true,
            "--spot" => opts.spot = true,
            "--repartition" => opts.repartition = true,
            "--workers" => opts.workers = Some(num(args.next(), "--workers") as usize),
            "--cycles" => opts.cycles = num(args.next(), "--cycles"),
            "--aggs" => opts.dims.aggs = num(args.next(), "--aggs") as usize,
            "--tors" => opts.dims.tors_per_agg = num(args.next(), "--tors") as usize,
            "--nodes" => opts.dims.nodes_per_tor = num(args.next(), "--nodes") as usize,
            "--requests" => opts.dims.requests = num(args.next(), "--requests") as usize,
            "--qps" => opts.dims.qps = num(args.next(), "--qps") as f64,
            "--transport" => {
                let v = args.next().unwrap_or_default();
                opts.transport = TransportChoice::parse(&v).unwrap_or_else(|_| {
                    die(&format!("--transport must be shm|tcp|unix, got {v:?}"))
                });
            }
            other => die(&format!("unknown flag {other:?}")),
        }
    }
    opts
}

/// Executes the placement folded onto `workers` processes and prints the
/// merged report (with the modeled $/sim-hour) and digests.
fn run_placed(opts: &Options, placement: &PlacementPlan) -> ! {
    let workers = opts.workers.unwrap_or(4);
    let mut cfg = PartitionConfig::new(workers, Cycle::new(opts.cycles), opts.dims.spec());
    cfg.transport = opts.transport;
    cfg.plan = Some(
        placement
            .partition_for(workers)
            .unwrap_or_else(|e| die(&e.to_string())),
    );
    cfg.cost = Some(placement.cost().clone());
    println!(
        "\nexecuting the placement folded onto {workers} worker process(es) over {}",
        cfg.transport.as_str()
    );
    match run_partitioned(build_datacenter, &cfg) {
        Ok(run) => {
            println!(
                "simulated {} target cycles in {:?} across {} process(es), {} agents digested",
                run.cycles.as_u64(),
                run.wall,
                run.workers,
                run.digests.len()
            );
            println!("combined digest: {:016x}", run.combined_digest);
            print!("{}", run.report.human_summary());
            std::process::exit(0);
        }
        Err(report) => {
            eprintln!("{report}");
            std::process::exit(1);
        }
    }
}

/// The checkpointed-repartition smoke: straight run vs (4-way, checkpoint
/// mid-way) vs (restore into 2-way), all digest-identical.
fn run_repartition_smoke(opts: &Options, placement: &PlacementPlan) -> ! {
    let spec = opts.dims.spec();
    let ckpt =
        std::env::temp_dir().join(format!("firesim-dc-repart-{}.fsckpt", std::process::id()));
    let mid = opts.cycles / 2;

    println!("\nrepartition smoke: straight run, {} cycles", opts.cycles);
    let straight = run_partitioned(
        build_datacenter,
        &PartitionConfig::new(1, Cycle::new(opts.cycles), spec.clone()),
    )
    .unwrap_or_else(|report| {
        eprintln!("{report}");
        std::process::exit(1);
    });

    println!("repartition smoke: 4-way load-aware run, checkpoint at {mid}");
    let mut cfg = PartitionConfig::new(4, Cycle::new(opts.cycles), spec.clone());
    cfg.transport = opts.transport;
    cfg.plan = Some(
        placement
            .partition_for(4)
            .unwrap_or_else(|e| die(&e.to_string())),
    );
    cfg.checkpoint_at = Some(Cycle::new(mid));
    cfg.checkpoint_out = Some(ckpt.clone());
    let checkpointed = run_partitioned(build_datacenter, &cfg).unwrap_or_else(|report| {
        eprintln!("{report}");
        std::process::exit(1);
    });

    println!("repartition smoke: restoring the merged checkpoint into 2 workers");
    let mut cfg = PartitionConfig::new(2, Cycle::new(opts.cycles), spec);
    cfg.transport = opts.transport;
    cfg.plan = Some(
        placement
            .partition_for(2)
            .unwrap_or_else(|e| die(&e.to_string())),
    );
    cfg.restore_from = Some(ckpt.clone());
    let resumed = run_partitioned(build_datacenter, &cfg).unwrap_or_else(|report| {
        eprintln!("{report}");
        std::process::exit(1);
    });
    let _ = std::fs::remove_file(ckpt);

    for (tag, run) in [
        ("checkpointed 4-way", &checkpointed),
        ("resumed 2-way", &resumed),
    ] {
        if straight.digests != run.digests {
            eprintln!("FAIL: {tag} digests diverge from the straight run");
            std::process::exit(1);
        }
        println!(
            "{tag}: combined digest {:016x} matches straight run",
            run.combined_digest
        );
    }
    println!("repartition smoke passed");
    std::process::exit(0);
}

fn main() {
    // Worker processes re-exec this binary; hand them their shard first.
    if firesim_manager::maybe_worker(build_datacenter) {
        return;
    }
    let opts = parse_args();
    let clock = Frequency::GHZ_3_2;
    let dims = opts.dims;

    println!(
        "topology: {} servers + {} loadgens, {} switches",
        dims.aggs * dims.tors_per_agg * dims.nodes_per_tor / 2,
        dims.aggs * dims.tors_per_agg * dims.nodes_per_tor / 2,
        1 + dims.aggs + dims.aggs * dims.tors_per_agg,
    );
    // "Place it like the paper": the fleet controller maps the tree onto
    // EC2 and models what a simulated hour costs.
    let placement = place(dims, opts.spot);
    if opts.placement_only {
        return;
    }
    if opts.repartition {
        run_repartition_smoke(&opts, &placement);
    }
    if opts.workers.is_some() {
        run_placed(&opts, &placement);
    }

    // Monolithic in-process run with supernode packing and host-side
    // latency collection — the original §V-C measurement.
    let stats: StatsSink = Arc::new(Mutex::new(Vec::new()));
    let topo = datacenter_topology(dims, Some(&stats));
    let threads = std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(2).max(1))
        .unwrap_or(4);
    let mut sim = topo
        .build(SimConfig {
            supernode: true,
            host_threads: threads,
            ..SimConfig::default()
        })
        .expect("valid topology");
    println!("\n{}", sim.plan());

    let start = std::time::Instant::now();
    let summary = sim
        .run_until_done(Cycle::new(60_000_000_000))
        .expect("simulation runs");
    println!(
        "\nsimulated {:.2} ms of target time in {:.1?} ({:.3} MHz, {} host threads)",
        clock.seconds_from_cycles(summary.cycles) * 1e3,
        start.elapsed(),
        summary.sim_rate_mhz(),
        summary.host_threads
    );

    let mut merged = Histogram::new("latency");
    let mut received = 0u64;
    for h in stats.lock().iter() {
        let s = h.lock();
        merged.merge(&s.latency);
        received += s.received;
    }
    println!(
        "cross-datacenter memcached: {} responses, p50 {:.1} us, p95 {:.1} us",
        received,
        clock.micros_from_cycles(Cycle::new(merged.percentile(50.0).unwrap_or(0))),
        clock.micros_from_cycles(Cycle::new(merged.percentile(95.0).unwrap_or(0))),
    );
    let (_, root_stats) = &sim.switch_stats()[0];
    println!(
        "root switch: {} frames forwarded",
        root_stats.lock().frames_forwarded
    );
}
